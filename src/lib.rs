//! # nlrm — Network and Load-Aware Resource Manager for MPI Programs
//!
//! A from-scratch Rust reproduction of Kumar, Jain & Malakar,
//! *Network and Load-Aware Resource Manager for MPI Programs*
//! (ICPP Workshops 2020). This facade crate re-exports the full workspace:
//!
//! * [`sim`] — discrete-event simulation core (virtual time, RNG streams,
//!   stochastic processes, windowed statistics),
//! * [`topology`] — tree-of-switches cluster topologies and routing,
//! * [`cluster`] — the simulated shared cluster (the paper's IIT-K testbed),
//! * [`monitor`] — the distributed Resource Monitor (daemons, shared store,
//!   master/slave central monitor, snapshots),
//! * [`core`] — the Node Allocator: SAW attribute model, compute/network
//!   loads, Algorithms 1–2, baseline policies, wait advisor, and the
//!   switch-group scaling extension,
//! * [`mpi`] — the simulated MPI runtime (communicators, collectives,
//!   contention-aware BSP executor),
//! * [`obs`] — observability: virtual-time event journal, metrics registry,
//!   allocation-decision explain traces, and the scoped observer context,
//! * [`apps`] — miniMD/miniFE proxy applications and synthetic kernels,
//! * [`bench`](mod@bench) — the experiment harness regenerating every paper figure.
//!
//! ## Quickstart
//!
//! ```
//! use nlrm::prelude::*;
//!
//! // the paper's 60-node shared cluster, monitored for ten minutes
//! let mut cluster = iitk_cluster(42);
//! let mut monitor = MonitorRuntime::new(&cluster);
//! let snapshot = monitor
//!     .warm_snapshot(&mut cluster, Duration::from_secs(600))
//!     .unwrap();
//!
//! // ask for 32 MPI processes, 4 per node, communication-bound mix
//! let request = AllocationRequest::minimd(32);
//! let allocation = NetworkLoadAwarePolicy::new()
//!     .allocate(&snapshot, &request)
//!     .unwrap();
//! assert_eq!(allocation.total_procs(), 32);
//!
//! // run a miniMD proxy on the chosen nodes and measure it
//! let comm = Communicator::new(allocation.rank_map.clone());
//! let timing = execute(&mut cluster, &comm, &MiniMd::new(16).with_steps(10));
//! assert!(timing.total_s > 0.0);
//! ```

pub use nlrm_apps as apps;
pub use nlrm_bench as bench;
pub use nlrm_cluster as cluster;
pub use nlrm_core as core;
pub use nlrm_monitor as monitor;
pub use nlrm_mpi as mpi;
pub use nlrm_obs as obs;
pub use nlrm_sim_core as sim;
pub use nlrm_topology as topology;

/// The most common imports in one place.
pub mod prelude {
    pub use nlrm_apps::{MiniFe, MiniMd};
    pub use nlrm_cluster::iitk::{iitk30, iitk_cluster, small_cluster};
    pub use nlrm_cluster::{ClusterProfile, ClusterSim, NodeSpec, NodeState};
    pub use nlrm_core::advisor::{advise, Advice, AdvisorConfig};
    pub use nlrm_core::{
        AllocationRequest, ComputeWeights, LoadAwarePolicy, Loads, NetworkLoadAwarePolicy,
        NetworkWeights, Policy, RandomPolicy, SequentialPolicy, StalenessPolicy,
    };
    pub use nlrm_monitor::{
        ClusterSnapshot, DaemonKind, FaultTarget, MonitorFaultPlan, MonitorRuntime,
    };
    pub use nlrm_mpi::{execute, Communicator, JobTiming};
    pub use nlrm_obs::{ExplainTrace, Journal, Metrics, Obs, Severity};
    pub use nlrm_sim_core::fault::{FaultAction, FaultPlan};
    pub use nlrm_sim_core::time::{Duration, SimTime};
}
