//! `nlrm-ctl` — command-line front end to the resource manager.
//!
//! Drives the full pipeline against the reference cluster (the simulated
//! IIT-K testbed; a production deployment would point the same code at a
//! store populated by real daemons):
//!
//! ```text
//! nlrm-ctl status                          # node table + livehosts
//! nlrm-ctl allocate --procs 32 [--ppn 4] [--policy nla|random|seq|load]
//! nlrm-ctl advise   --procs 32             # §6 wait-or-run verdict
//! nlrm-ctl run      --app minimd --size 16 --procs 32
//! nlrm-ctl profile  --app minife --size 96 --procs 32
//! ```
//!
//! Global flags: `--seed <n>` (cluster seed), `--warmup <secs>` (monitoring
//! warm-up), `--campus` (use the two-cluster campus topology).

use nlrm::cluster::iitk::campus;
use nlrm::mpi::pattern::Workload;
use nlrm::mpi::profiler;
use nlrm::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    command: String,
    flags: HashMap<String, String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut flags = HashMap::new();
    while let Some(arg) = argv.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument '{arg}'\n{}", usage()));
        };
        // boolean flags
        if name == "campus" {
            flags.insert(name.to_string(), "true".into());
            continue;
        }
        let value = argv
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(Args { command, flags })
}

fn usage() -> String {
    "usage: nlrm-ctl <status|allocate|advise|run|profile> [flags]\n\
     flags: --procs N --ppn N --alpha X --policy nla|random|seq|load \
     --app minimd|minife --size N --seed N --warmup SECS --campus"
        .to_string()
}

impl Args {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{name}")),
        }
    }

    fn require_u32(&self, name: &str) -> Result<u32, String> {
        self.flags
            .get(name)
            .ok_or_else(|| format!("--{name} is required"))?
            .parse()
            .map_err(|_| format!("invalid value for --{name}"))
    }
}

fn build_env(args: &Args) -> Result<(ClusterSim, ClusterSnapshot), String> {
    let seed: u64 = args.get("seed", 2020)?;
    let warmup: u64 = args.get("warmup", 600)?;
    let mut cluster = if args.flags.contains_key("campus") {
        campus(2, 30, seed)
    } else {
        iitk_cluster(seed)
    };
    let mut monitor = MonitorRuntime::new(&cluster);
    let snap = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(warmup))
        .map_err(|e| format!("monitoring failed: {e}"))?;
    Ok((cluster, snap))
}

fn build_request(args: &Args) -> Result<AllocationRequest, String> {
    let procs = args.require_u32("procs")?;
    let ppn: u32 = args.get("ppn", 4)?;
    let alpha: f64 = args.get("alpha", 0.3)?;
    let req = AllocationRequest::new(procs, Some(ppn), alpha, 1.0 - alpha);
    req.validate().map_err(|e| e.to_string())?;
    Ok(req)
}

fn build_policy(args: &Args) -> Result<Box<dyn Policy>, String> {
    let seed: u64 = args.get("seed", 2020)?;
    let name = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("nla");
    match name {
        "nla" => Ok(Box::new(NetworkLoadAwarePolicy::new())),
        "random" => Ok(Box::new(RandomPolicy::new(seed))),
        "seq" | "sequential" => Ok(Box::new(SequentialPolicy::new(seed))),
        "load" | "load-aware" => Ok(Box::new(LoadAwarePolicy::new())),
        other => Err(format!("unknown policy '{other}'")),
    }
}

fn build_workload(args: &Args) -> Result<Box<dyn Workload>, String> {
    let app = args
        .flags
        .get("app")
        .map(String::as_str)
        .unwrap_or("minimd");
    let size = args.require_u32("size")?;
    match app {
        "minimd" => Ok(Box::new(MiniMd::new(size))),
        "minife" => Ok(Box::new(MiniFe::new(size))),
        other => Err(format!("unknown app '{other}' (minimd|minife)")),
    }
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let (cluster, snap) = build_env(args)?;
    println!(
        "cluster: {} nodes, {} switches; {} usable",
        cluster.num_nodes(),
        cluster.topology().num_switches(),
        snap.usable_nodes().len()
    );
    println!(
        "{:<10} {:>5} {:>6} {:>7} {:>7} {:>7} {:>9} {:>6}",
        "host", "cores", "GHz", "load1m", "util", "mem", "net Mb/s", "users"
    );
    for info in &snap.nodes {
        let s = &info.sample;
        println!(
            "{:<10} {:>5} {:>6.1} {:>7.2} {:>6.0}% {:>6.0}% {:>9.1} {:>6}{}",
            s.spec.hostname,
            s.spec.cores,
            s.spec.freq_ghz,
            s.cpu_load.m1,
            s.cpu_util.m1 * 100.0,
            s.mem_used_frac.m1 * 100.0,
            s.flow_rate_mbps.m1,
            s.users,
            if info.live { "" } else { "  DOWN" }
        );
    }
    Ok(())
}

fn cmd_allocate(args: &Args) -> Result<(), String> {
    let (cluster, snap) = build_env(args)?;
    let req = build_request(args)?;
    let mut policy = build_policy(args)?;
    let alloc = policy.allocate(&snap, &req).map_err(|e| e.to_string())?;
    println!("policy: {}", alloc.policy);
    println!("eq.4 cost: {:.4}", alloc.diagnostics.total_cost);
    println!(
        "group: mean CL {:.3}, mean NL {:.3}",
        alloc.diagnostics.mean_compute_load, alloc.diagnostics.mean_network_load
    );
    for &(node, procs) in &alloc.nodes {
        println!("  {:<10} x{procs}", cluster.spec(node).hostname);
    }
    Ok(())
}

fn cmd_advise(args: &Args) -> Result<(), String> {
    let (cluster, snap) = build_env(args)?;
    let req = build_request(args)?;
    let advice = advise(&snap, &req, &AdvisorConfig::default()).map_err(|e| e.to_string())?;
    match advice {
        Advice::Allocate(alloc) => {
            println!("RUN NOW — allocation ready:");
            for &(node, procs) in &alloc.nodes {
                println!("  {:<10} x{procs}", cluster.spec(node).hostname);
            }
        }
        Advice::Wait { reason, .. } => println!("WAIT — {reason}"),
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let (cluster, snap) = build_env(args)?;
    let req = build_request(args)?;
    let mut policy = build_policy(args)?;
    let workload = build_workload(args)?;
    let alloc = policy.allocate(&snap, &req).map_err(|e| e.to_string())?;
    let comm = Communicator::new(alloc.rank_map.clone());
    let mut sandbox = cluster.clone();
    let timing = execute(&mut sandbox, &comm, workload.as_ref());
    println!(
        "{} on {} nodes via {}:",
        workload.name(),
        alloc.node_list().len(),
        alloc.policy
    );
    println!(
        "  total {:.2} s | compute {:.2} s | comm {:.2} s ({:.0}%)",
        timing.total_s,
        timing.compute_s,
        timing.comm_s,
        timing.comm_fraction() * 100.0
    );
    println!(
        "  mean CPU load/core during run: {:.2}",
        timing.mean_load_per_core
    );
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let (cluster, snap) = build_env(args)?;
    let req = build_request(args)?;
    let workload = build_workload(args)?;
    // profile on the load-aware pick (a neutral reference placement)
    let alloc = LoadAwarePolicy::new()
        .allocate(&snap, &req)
        .map_err(|e| e.to_string())?;
    let comm = Communicator::new(alloc.rank_map.clone());
    let report = profiler::profile(&cluster, &comm, workload.as_ref(), 10);
    println!("profiled {} over {} steps:", report.workload, report.steps);
    println!(
        "  communication fraction: {:.0}%",
        report.comm_fraction * 100.0
    );
    println!(
        "  recommended mix: alpha = {:.2}, beta = {:.2}",
        report.alpha, report.beta
    );
    println!(
        "  (pass --alpha {:.2} to `nlrm-ctl allocate`)",
        report.alpha
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "status" => cmd_status(&args),
        "allocate" => cmd_allocate(&args),
        "advise" => cmd_advise(&args),
        "run" => cmd_run(&args),
        "profile" => cmd_profile(&args),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
