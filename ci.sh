#!/usr/bin/env bash
# Local CI: everything must pass before a commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

# observability smoke: the report must build, run bounded, and emit valid
# JSON with the expected top-level sections
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin obs_report
python3 - "$OBS_DIR/obs_report.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
expected = {"params", "summary", "decisions", "events", "metrics"}
missing = expected - report.keys()
assert not missing, f"obs_report.json missing sections: {missing}"
assert report["summary"]["failovers"] >= 1, "no failover captured"
assert report["summary"]["relaunches"] >= 1, "no relaunch captured"
assert report["summary"]["stale_node_exclusions"] >= 1, "no stale exclusions"
assert all(d["winner_matches_placement"] for d in report["decisions"])
PY
test -s "$OBS_DIR/obs_timeline.txt"

# rustdoc for the observability crate is part of its API contract
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p nlrm-obs

echo "ci: all green"
