#!/usr/bin/env bash
# Local CI: everything must pass before a commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check
echo "ci: all green"
