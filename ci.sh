#!/usr/bin/env bash
# Local CI: everything must pass before a commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

# build artifacts must never be tracked (they were once; .gitignore plus
# this guard keeps them out)
if [ -n "$(git ls-files target/ results/)" ]; then
    echo "ci: build artifacts are tracked in git (target/ or results/):" >&2
    git ls-files target/ results/ | head >&2
    exit 1
fi

# observability smoke: the report must build, run bounded, and emit valid
# JSON with the expected top-level sections
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin obs_report
python3 - "$OBS_DIR/obs_report.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
expected = {"params", "summary", "decisions", "events", "metrics"}
missing = expected - report.keys()
assert not missing, f"obs_report.json missing sections: {missing}"
assert report["summary"]["failovers"] >= 1, "no failover captured"
assert report["summary"]["relaunches"] >= 1, "no relaunch captured"
assert report["summary"]["stale_node_exclusions"] >= 1, "no stale exclusions"
assert all(d["winner_matches_placement"] for d in report["decisions"])
PY
test -s "$OBS_DIR/obs_timeline.txt"

# span-tracing smoke: both trace exports must parse as JSON, the Chrome
# file must be trace-event shaped, and at least one job's critical path
# must cross three span kinds (queue wait, execution, compute)
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin trace_report
python3 - "$OBS_DIR/trace_report.json" "$OBS_DIR/trace_report.chrome.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
with open(sys.argv[2]) as f:
    chrome = json.load(f)
assert report["jobs"], "trace_report.json has no jobs"
assert report["summary"]["spans_open"] == 0, "dangling open spans"
kinds = max(len(j["critical_path"]["by_kind"]) for j in report["jobs"])
assert kinds >= 3, f"critical paths too shallow: {kinds} span kinds"
events = chrome["traceEvents"]
assert events, "chrome export has no events"
assert all(e["ph"] in ("X", "M") for e in events), "unexpected phase"
assert any(e.get("name") == "queue_wait" for e in events)
PY
test -s "$OBS_DIR/trace_summary.txt"

# scaling smoke: the sweep must run its shrunken ladder, stay within the
# 2x-of-linear budget (asserted by the bin itself), and emit well-formed
# JSON (quick runs write into the results dir, not the committed
# repo-root BENCH_scale.json)
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin scale_sweep
python3 - "$OBS_DIR/BENCH_scale.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
assert bench["sizes"], "BENCH_scale.json has no sizes"
assert all(s["allocs_per_sec"] > 0 for s in bench["sizes"])
assert bench["within_2x_of_linear"], f"linear_factor {bench['linear_factor']}"
PY

# broker smoke: the scheduling-cycle sweep must run its shrunken streams,
# emit well-formed JSON (validated twice: by the bin via json::validate
# and here by Python), drain every admitted job, actually shed under the
# overload arm, and keep queue-wait p99 under a fixed bound at smoke scale
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin broker_sweep
python3 - "$OBS_DIR/BENCH_broker.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
arms = {a["arm"]: a for a in bench["arms"]}
assert "nla-batched" in arms and "overload-reject" in arms, arms.keys()
nla = arms["nla-batched"]
assert nla["started"] == nla["arrivals"], "batched arm left jobs stranded"
assert nla["sched_jobs_per_sec"] > 0
assert nla["utilization"] > 0.3, f"utilization {nla['utilization']}"
assert nla["wait_p99_s"] < 3600, f"queue-wait p99 {nla['wait_p99_s']}s over bound"
assert arms["overload-reject"]["rejected"] > 0, "overload arm shed nothing"
PY

# health smoke: the paired telemetry runs must detect the injected
# degradation (a staleness surge on the faulted arm), stay silent on the
# clean arm, and keep the telemetry loop's overhead within its 5% budget
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin health_report
python3 - "$OBS_DIR/health_report.json" "$OBS_DIR/BENCH_health.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
with open(sys.argv[2]) as f:
    bench = json.load(f)
arms = {a["name"]: a for a in report["arms"]}
faulted, clean = arms["faulted"], arms["clean"]
kinds = [a["kind"] for a in faulted["anomalies"]]
assert "staleness_surge" in kinds, f"faulted arm missed the surge: {kinds}"
assert not clean["anomalies"], f"clean arm fired: {clean['anomalies']}"
assert faulted["telemetry_ticks"] > 10, "telemetry loop barely ran"
assert faulted["health"]["stale_fraction"] >= 0.25, "stale nodes not in health"
assert report["sampler"]["within_budget"], f"overhead {report['sampler']}"
assert bench["faulted_overhead_frac"] <= 0.05, bench["faulted_overhead_frac"]
assert bench["clean_overhead_frac"] <= 0.05, bench["clean_overhead_frac"]
PY
test -s "$OBS_DIR/health_report.md"

# monitor smoke: the central-vs-sharded pricing sweep must run its
# shrunken ladder and hold the decentralization gates — sharded traffic
# ≥10x below central at the largest smoke size, and the sharded
# estimate's allocation epsilon ≤5% on every equivalence scenario (both
# also asserted by the bin itself)
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin monitor_sweep
python3 - "$OBS_DIR/BENCH_monitor.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
assert bench["sizes"], "BENCH_monitor.json has no sizes"
assert all(s["sharded_bytes"] < s["central_bytes"] for s in bench["sizes"])
assert bench["traffic_ratio_at_max"] >= 10, bench["traffic_ratio_at_max"]
assert bench["epsilon"], "no equivalence scenarios measured"
assert bench["worst_eps"] <= 0.05, f"epsilon gate: {bench['worst_eps']}"
assert bench["gates"]["ratio_ge_10"] and bench["gates"]["eps_le_0_05"]
PY

# incident smoke: every seeded storyline must replay bit-identically
# from its flight record, RCA must rank the injected cause first on at
# least the floor (4 of 5), and the recorder's always-on overhead must
# stay within its 5% budget (the bin computes the same gate in "pass")
NLRM_RESULTS_DIR="$OBS_DIR" NLRM_QUICK=1 NLRM_QUIET=1 \
    cargo run --release -q -p nlrm-bench --bin incident_report
python3 - "$OBS_DIR/incident_report.json" "$OBS_DIR/BENCH_incident.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
with open(sys.argv[2]) as f:
    bench = json.load(f)
stories = report["storylines"]
assert len(stories) == 5, f"expected 5 storylines, got {len(stories)}"
bad = [s["name"] for s in stories if not s["replay"]["identical"]]
assert not bad, f"replays diverged: {bad}"
hits = sum(s["cause_hit"] for s in stories)
assert hits >= 4, f"RCA ranked the injected cause first on only {hits}/5"
assert bench["all_replays_identical"], bench
assert bench["max_overhead_frac"] <= 0.05, bench["max_overhead_frac"]
assert bench["pass"], f"incident gate failed: {bench}"
PY
test -s "$OBS_DIR/incident_report.md"

# rustdoc for the observability and monitoring crates is part of their
# API contract
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p nlrm-obs -p nlrm-monitor

echo "ci: all green"
