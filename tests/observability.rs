//! Integration test: the observability stack captures the PR-1 fault
//! scenario (daemon kills plus master death) end to end — relaunch,
//! failover, and stale-exclusion events land in the journal with correct
//! virtual timestamps, and every granted allocation carries an explain
//! trace consistent with `select_best`'s ranking.

use nlrm::bench::obs_scenario::{run_faulted_broker_scenario, QUICK_CHECKPOINTS};
use nlrm::obs::Severity;
use nlrm_sim_core::time::SimTime;

#[test]
fn faulted_run_journals_supervision_and_explains_every_grant() {
    let r = run_faulted_broker_scenario(2025, QUICK_CHECKPOINTS);
    let journal = &r.obs.journal;
    let metrics = &r.obs.metrics;

    // --- supervision events with correct virtual timestamps ---
    let relaunches = journal.events_of("daemon_relaunched");
    assert_eq!(
        relaunches.len(),
        2,
        "bandwidth kill at t=400 and node-state kill at t=450 each relaunch once"
    );
    // the supervisor reacts within its staleness window, never before the kill
    assert!(relaunches[0].at >= SimTime::from_secs(400));
    assert!(relaunches[0].at <= SimTime::from_secs(500));
    assert!(relaunches[1].at >= SimTime::from_secs(450));
    assert!(relaunches[1].at <= SimTime::from_secs(550));
    assert_eq!(r.relaunches, 2, "journal agrees with the central monitor");
    assert_eq!(metrics.counter_value("monitor_relaunch_total"), 2);

    let failovers = journal.events_of("failover");
    assert_eq!(failovers.len(), 1, "master kill at t=700 fails over once");
    assert!(failovers[0].at >= SimTime::from_secs(700));
    assert!(failovers[0].at <= SimTime::from_secs(800));
    assert_eq!(failovers[0].severity, Severity::Warn);
    assert_eq!(r.failovers, 1);
    assert_eq!(metrics.counter_value("monitor_failover_total"), 1);

    // --- stale samples are excluded, and the journal says when ---
    let stale = journal.events_of("stale_node_excluded");
    assert!(
        !stale.is_empty(),
        "node-state daemons on n5/n6 die headless at t=950; their samples must go stale"
    );
    for e in &stale {
        // staleness bound is 60 s past the t=950 kill
        assert!(e.at >= SimTime::from_secs(1010));
        match &e.kind {
            nlrm::obs::EventKind::StaleNodeExcluded { node, age } => {
                assert!(node.0 == 5 || node.0 == 6, "unexpected stale node {node}");
                assert!(age.as_secs_f64() > 60.0);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }
    assert!(metrics.counter_value("loads_stale_node_excluded_total") >= 2);

    // --- every grant is explained, consistently with the placement ---
    assert_eq!(r.decisions.len(), QUICK_CHECKPOINTS.len());
    assert_eq!(
        journal.count_of("alloc_granted"),
        r.decisions.len(),
        "one granted event per decision"
    );
    for d in &r.decisions {
        let winner = d.explain.winner().expect("non-empty explain trace");
        assert_eq!(
            winner.nodes, d.nodes,
            "explain trace winner must match the broker's actual placement"
        );
        assert!((winner.total - d.cost).abs() < 1e-9);
        // ranking is ascending by total cost, as select_best ordered it
        for pair in d.explain.top.windows(2) {
            assert!(pair[0].total <= pair[1].total + 1e-12);
            assert!(pair[0].rank < pair[1].rank);
        }
        assert!(d.explain.margin >= 0.0);
        assert!(d.explain.considered >= d.explain.top.len());
        assert!(!d.explain.verdict.is_empty());
        // stale nodes never appear in an explained group
        for g in &d.explain.top {
            for n in &g.nodes {
                assert!(n.0 != 5 && n.0 != 6, "stale node {n} in candidate group");
            }
        }
    }

    // --- the oversized job defers on every pass and is journaled ---
    assert_eq!(r.deferred.len(), QUICK_CHECKPOINTS.len());
    assert!(r.deferred.iter().all(|(job, _)| job == "huge-64"));
    assert_eq!(journal.count_of("alloc_deferred"), r.deferred.len());

    // --- queue gauges reflect the final pass ---
    assert_eq!(metrics.gauge_value("broker_queue_depth"), 1.0);
    assert_eq!(metrics.gauge_value("broker_running_jobs"), 1.0);
}
