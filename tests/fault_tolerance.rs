//! Fault-tolerance integration tests: the monitor→allocator path must keep
//! producing valid allocations while daemons crash, hang, delay their
//! writes, and the master central monitor dies mid-run.

use nlrm::bench::runner::Experiment;
use nlrm::prelude::*;
use nlrm::sim::rng::RngFactory;
use nlrm::topology::NodeId;
use proptest::prelude::*;
use rand::Rng;

/// Random per-round fault plan, same shape as the `fault_sweep` bench:
/// every `round_s` seconds each daemon is hit with probability `rate`.
fn random_plan(
    rate: f64,
    n_nodes: usize,
    start_s: u64,
    end_s: u64,
    round_s: u64,
    rng: &mut impl Rng,
) -> MonitorFaultPlan {
    let mut plan = MonitorFaultPlan::new();
    let mut kinds: Vec<DaemonKind> = vec![
        DaemonKind::Livehosts,
        DaemonKind::Latency,
        DaemonKind::Bandwidth,
    ];
    kinds.extend((0..n_nodes).map(|i| DaemonKind::NodeState(NodeId(i as u32))));
    let mut t = start_s;
    while t < end_s {
        for &kind in &kinds {
            if rng.gen_bool(rate) {
                let action = match rng.gen_range(0..4) {
                    0 | 1 => FaultAction::Kill,
                    2 => FaultAction::Hang(Duration::from_secs(rng.gen_range(60..300))),
                    _ => FaultAction::Delay(Duration::from_secs(rng.gen_range(60..300))),
                };
                plan.schedule(SimTime::from_secs(t), FaultTarget::Daemon(kind), action);
            }
        }
        t += round_s;
    }
    plan
}

/// The ISSUE acceptance scenario: per-round daemon kill probability 0.2
/// plus one master death mid-run. Allocations must keep succeeding via the
/// promoted slave, never panic, and never select a node whose only samples
/// are stale.
#[test]
fn allocations_survive_daemon_kills_and_master_death() {
    let seed = 11;
    let mut env = Experiment::new(iitk_cluster(seed));
    let n_nodes = env.cluster.num_nodes();
    env.advance(Duration::from_secs(360));

    let mut rng = RngFactory::new(seed).stream("fault-plan", 0);
    let mut plan = random_plan(0.2, n_nodes, 400, 2700, 60, &mut rng);
    plan.schedule(
        SimTime::from_secs(1500),
        FaultTarget::Master,
        FaultAction::Kill,
    );
    env.monitor.set_fault_plan(plan);

    let req = AllocationRequest::minimd(16);
    let staleness = StalenessPolicy::default();
    for cp in [600u64, 1200, 1800, 2400, 3000] {
        let target = SimTime::from_secs(cp);
        env.advance(target.since(env.cluster.now()));
        let snap = env.snapshot();
        let alloc = NetworkLoadAwarePolicy::new()
            .allocate(&snap, &req)
            .unwrap_or_else(|e| panic!("allocation failed at t={cp}s: {e:?}"));
        assert_eq!(alloc.total_procs(), 16);
        for node in alloc.node_list() {
            let age = snap
                .sample_age(node)
                .unwrap_or_else(|| panic!("selected node {node:?} has no sample at t={cp}s"));
            assert!(
                age <= staleness.max_sample_age,
                "selected node {node:?} has stale sample (age {age:?}) at t={cp}s"
            );
        }
    }

    let central = env.monitor.central();
    assert!(
        central.failover_count >= 1,
        "master was killed at t=1500s but no failover happened"
    );
    assert!(
        central.relaunch_count >= 1,
        "daemons were killed but none were relaunched"
    );
}

/// Map a proptest-generated index to a fault target on a 6-node cluster.
fn target_from_index(i: usize) -> FaultTarget {
    match i {
        0 => FaultTarget::Master,
        1 => FaultTarget::Slave,
        2 => FaultTarget::Daemon(DaemonKind::Livehosts),
        3 => FaultTarget::Daemon(DaemonKind::Latency),
        4 => FaultTarget::Daemon(DaemonKind::Bandwidth),
        i if i < 11 => FaultTarget::Daemon(DaemonKind::NodeState(NodeId((i - 5) as u32))),
        i => FaultTarget::Node(NodeId(((i - 11) % 6) as u32)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under arbitrary fault schedules, `Loads::derive` never panics and
    /// never returns a node whose monitoring samples are older than the
    /// staleness bound. A clean error (e.g. no usable nodes) is an
    /// acceptable degraded outcome; a panic or a stale node is not.
    #[test]
    fn derive_never_returns_stale_only_nodes(
        seed in 0u64..100,
        faults in proptest::collection::vec(
            (420u64..1500, 0usize..14, 0u8..3, 30u64..600),
            0..40,
        ),
    ) {
        let mut env = Experiment::new(small_cluster(6, seed));
        let mut plan = MonitorFaultPlan::new();
        for &(t, target_idx, action_idx, dur) in &faults {
            let action = match action_idx {
                0 => FaultAction::Kill,
                1 => FaultAction::Hang(Duration::from_secs(dur)),
                _ => FaultAction::Delay(Duration::from_secs(dur)),
            };
            plan.schedule(SimTime::from_secs(t), target_from_index(target_idx), action);
        }
        env.monitor.set_fault_plan(plan);
        env.advance(Duration::from_secs(1600));

        let now = env.cluster.now();
        if let Ok(snap) = env.monitor.snapshot(now) {
            let staleness = StalenessPolicy::default();
            match Loads::derive(
                &snap,
                &ComputeWeights::paper_default(),
                &NetworkWeights::paper_default(),
                Some(2),
            ) {
                Err(_) => {} // clean refusal is fine under heavy faults
                Ok(loads) => {
                    for &n in &loads.usable {
                        let age = snap.sample_age(n);
                        prop_assert!(
                            age.is_some_and(|a| a <= staleness.max_sample_age),
                            "usable node {:?} has stale/missing sample (age {:?})",
                            n, age
                        );
                    }
                }
            }
        }
    }
}
