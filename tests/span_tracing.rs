//! Integration test: causal span tracing covers the whole job lifecycle.
//!
//! The traced broker scenario (shared fault storyline + real traced
//! execution of every granted job) must produce, for every job: a root
//! `job` span spanning submission→completion, a `queue_wait` span whose
//! interval is byte-for-byte the wait the broker's histogram observed,
//! an execution subtree nested inside the grant, and a critical path
//! whose segments tile the root interval exactly. The Chrome export of
//! the whole store must be valid JSON.

use nlrm::bench::obs_scenario::QUICK_CHECKPOINTS;
use nlrm::bench::trace_scenario::run_traced_broker_scenario;
use nlrm::obs::{json, Span, TraceId};
use std::collections::BTreeMap;

#[test]
fn traces_nest_attribute_waits_and_tile_the_lifecycle() {
    let r = run_traced_broker_scenario(2025, QUICK_CHECKPOINTS);
    let spans = &r.obs.spans;

    // Every span the run opened was closed, nothing was dropped.
    assert_eq!(spans.open_count(), 0, "dangling open spans");
    assert_eq!(spans.dropped(), 0, "span store overflowed");

    assert_eq!(r.jobs.len(), QUICK_CHECKPOINTS.len());
    // f64, accumulated in grant order: the histogram summed the same
    // values in the same order, so the comparison below is exact.
    let mut total_wait = 0.0;
    for job in &r.jobs {
        let trace = spans.trace_spans(job.trace);
        let by_id: BTreeMap<u64, &Span> = trace.iter().map(|s| (s.id.0, s)).collect();

        // --- root covers the whole lifecycle ---
        let root = spans
            .root_of(job.trace)
            .unwrap_or_else(|| panic!("{} has no root span", job.name));
        assert_eq!(root.kind, "job");
        assert_eq!(root.start, job.submitted_at);
        assert_eq!(root.end, Some(job.completed_at));

        // --- every child interval sits inside its parent's ---
        for s in &trace {
            let Some(parent) = s.parent.and_then(|p| by_id.get(&p.0)) else {
                assert_eq!(s.id, root.id, "{}: span {} has no parent", job.name, s.id);
                continue;
            };
            let end = s.end.expect("all spans closed");
            assert!(s.start >= parent.start, "{}: child starts early", job.name);
            assert!(
                end <= parent.end.expect("all spans closed"),
                "{}: child {} ends after parent {}",
                job.name,
                s.id,
                parent.id
            );
        }

        // --- queue_wait span equals the broker's recorded wait ---
        let wait: Vec<&Span> = trace.iter().filter(|s| s.kind == "queue_wait").collect();
        assert_eq!(wait.len(), 1, "{}: exactly one queue_wait span", job.name);
        assert_eq!(wait[0].start, job.submitted_at);
        assert_eq!(wait[0].end, Some(job.granted_at));
        total_wait += wait[0].duration().as_secs_f64();

        // --- the execution subtree is present and inside the grant ---
        let exec: Vec<&Span> = trace.iter().filter(|s| s.kind == "exec").collect();
        assert_eq!(exec.len(), 1, "{}: exactly one exec span", job.name);
        assert!(exec[0].start >= job.granted_at);
        for kind in ["step", "compute", "collective"] {
            assert!(
                trace.iter().any(|s| s.kind == kind),
                "{}: no {kind} span recorded",
                job.name
            );
        }

        // --- critical-path segments tile the trace duration exactly ---
        let path = spans
            .critical_path(job.trace)
            .unwrap_or_else(|| panic!("{} has no critical path", job.name));
        assert_eq!(
            path.total(),
            root.duration(),
            "{}: critical path must sum to the trace duration",
            job.name
        );
        let mut cursor = root.start;
        for seg in &path.segments {
            assert_eq!(seg.start, cursor, "{}: gap in critical path", job.name);
            cursor = seg.end;
        }
        assert_eq!(cursor, job.completed_at);
        assert!(
            path.kind_count() >= 3,
            "{}: path crosses queue/exec/compute kinds, got {:?}",
            job.name,
            path.by_kind()
        );
    }

    // The waits the spans recorded are exactly what the broker's queue-wait
    // histogram observed (same virtual instants, so equality is exact).
    let h = r
        .obs
        .metrics
        .histogram_snapshot("broker_job_wait_secs")
        .expect("broker records queue waits");
    assert_eq!(h.sum(), total_wait);

    // --- monitor ticks trace under the system trace id ---
    let ticks = spans
        .trace_spans(TraceId::SYSTEM)
        .iter()
        .filter(|s| s.kind == "monitor_tick")
        .count();
    assert!(ticks > 0, "monitor ticks must record system spans");

    // --- the Chrome export of the full store is valid JSON ---
    let chrome = spans.to_chrome_json();
    json::validate(&chrome).expect("chrome export must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("monitor_tick"));
}
