//! End-to-end broker operation: a queue of jobs flowing through
//! reservation-aware allocation and truly concurrent execution.

use nlrm::core::broker::{Broker, BrokerConfig, BrokerEvent, Lease};
use nlrm::mpi::multi::{execute_concurrent, ConcurrentJob};
use nlrm::prelude::*;

fn grant_all(broker: &mut Broker, snap: &ClusterSnapshot) -> Vec<Lease> {
    broker
        .tick(snap)
        .into_iter()
        .filter_map(|e| match e {
            BrokerEvent::Started(l) => Some(*l),
            BrokerEvent::Deferred { .. } => None,
        })
        .collect()
}

#[test]
fn broker_feeds_concurrent_execution() {
    let mut cluster = iitk_cluster(404);
    let mut monitor = MonitorRuntime::new(&cluster);
    let snap = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(600))
        .unwrap();

    let mut broker = Broker::new(BrokerConfig {
        backfill: true,
        max_load_per_core: None,
        ..BrokerConfig::default()
    });
    for i in 0..3 {
        broker
            .submit(format!("wave1-{i}"), AllocationRequest::minimd(32))
            .unwrap();
    }
    let leases = grant_all(&mut broker, &snap);
    assert_eq!(leases.len(), 3, "60 nodes fit three 8-node jobs");

    // the three leases are pairwise disjoint
    for (i, a) in leases.iter().enumerate() {
        for b in &leases[i + 1..] {
            for n in a.allocation.node_list() {
                assert!(
                    !b.allocation.node_list().contains(&n),
                    "leases {} and {} share node {n}",
                    a.name,
                    b.name
                );
            }
        }
    }

    // execute all three concurrently on the real cluster timeline
    let workload = MiniMd::new(16).with_steps(20);
    let jobs: Vec<ConcurrentJob> = leases
        .iter()
        .map(|l| ConcurrentJob {
            comm: Communicator::new(l.allocation.rank_map.clone()),
            workload: &workload,
            start_offset_s: 0.0,
        })
        .collect();
    let timings = execute_concurrent(&mut cluster, &jobs);
    for t in &timings {
        assert_eq!(t.steps, 20);
        assert!(t.total_s > 0.0 && t.total_s < 600.0);
    }

    // completing the jobs frees capacity for a fourth
    for l in &leases {
        broker.complete(l.id).unwrap();
    }
    broker
        .submit("wave2", AllocationRequest::minimd(64))
        .unwrap();
    let snap2 = monitor.snapshot(cluster.now()).unwrap();
    let second = grant_all(&mut broker, &snap2);
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].allocation.total_procs(), 64);
}

#[test]
fn broker_respects_capacity_under_pressure() {
    let mut cluster = small_cluster(6, 71); // 6 nodes × 4 ppn = 24 procs
    let mut monitor = MonitorRuntime::new(&cluster);
    let snap = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(400))
        .unwrap();
    let mut broker = Broker::new(BrokerConfig {
        backfill: true,
        max_load_per_core: None,
        ..BrokerConfig::default()
    });
    let mut ids = Vec::new();
    for i in 0..5 {
        ids.push(
            broker
                .submit(
                    format!("j{i}"),
                    AllocationRequest::new(8, Some(4), 0.3, 0.7),
                )
                .unwrap(),
        );
    }
    let started = grant_all(&mut broker, &snap);
    assert_eq!(started.len(), 3, "24 procs fit three 8-proc jobs");
    assert_eq!(broker.queued().len(), 2);

    // draining one job admits exactly one more
    broker.complete(started[0].id).unwrap();
    let next = grant_all(&mut broker, &snap);
    assert_eq!(next.len(), 1);
    assert_eq!(broker.queued().len(), 1);
}
