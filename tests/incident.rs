//! Integration tests for the incident pipeline: the flight recorder's
//! record → replay contract and the divergence detector's sensitivity.
//!
//! The property tests re-drive whole recorded scenarios (randomized
//! seeds, fault storylines, arrival shapes) and require bit-identical
//! replays; the mutation tests corrupt one section of a record at a time
//! and require [`nlrm::obs::replay::compare`] to localize the first
//! divergence to exactly that section.

use nlrm::bench::scenario::{self, ArrivalSpec, ScenarioSpec};
use nlrm::obs::replay::{self, DivergenceKind};
use nlrm::obs::{rca, Record};
use nlrm_sim_core::time::Duration;
use proptest::prelude::*;

/// Run one recorded scenario; small checkpoint sets keep debug-mode
/// proptest cases fast.
fn record_scenario(
    seed: u64,
    faulted: bool,
    submit_huge: bool,
    telemetry: bool,
    extra_checkpoint: bool,
) -> Record {
    let cps: &[u64] = if extra_checkpoint {
        &[1100, 1300]
    } else {
        &[1100]
    };
    let mut spec = ScenarioSpec::new("incident-prop", seed, cps);
    spec.faulted = faulted;
    spec.submit_huge = submit_huge;
    spec.telemetry = telemetry;
    spec.record = true;
    let run = scenario::run(&spec.standard_arrivals(16));
    run.record.expect("recording enabled")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any recorded scenario replays bit-identically: header, arrival
    /// stream, fault plan, every input-stream digest, every journal
    /// event digest, and the final metrics digest.
    #[test]
    fn any_recorded_scenario_replays_bit_identically(
        seed in 0u64..500,
        // the vendored proptest shim has no `Arbitrary for bool`; the
        // low four bits pick faulted/huge/telemetry/extra-checkpoint
        flags in 0u32..16,
    ) {
        let record = record_scenario(
            seed,
            flags & 1 != 0,
            flags & 2 != 0,
            flags & 4 != 0,
            flags & 8 != 0,
        );
        let replayed = scenario::rerun_from(&record);
        let report = replay::compare(&record, replayed.record.as_ref().expect("replay records"));
        prop_assert!(
            report.is_identical(),
            "replay diverged: {:?}",
            report.divergence
        );
        // the record codec round-trips the whole record byte-for-byte
        let decoded = Record::decode(&record.encode()).expect("codec round-trip");
        prop_assert_eq!(decoded.digest(), record.digest());
    }
}

/// One faulted, telemetry-on record shared by the mutation tests.
fn faulted_record() -> Record {
    record_scenario(7, true, true, true, true)
}

#[test]
fn journal_mutation_is_localized_to_the_event_seq() {
    let record = faulted_record();
    let mut mutated = record.clone();
    let k = mutated.journal.len() / 2;
    mutated.journal[k].digest ^= 1;
    let seq = mutated.journal[k].seq;
    let report = replay::compare(&record, &mutated);
    let d = report.divergence.expect("mutation must be caught");
    assert_eq!(d.kind, DivergenceKind::JournalEvent);
    assert_eq!(d.index, seq, "divergence reports the mutated event's seq");
}

#[test]
fn arrival_mutation_is_caught_before_anything_else() {
    let record = faulted_record();
    let mut mutated = record.clone();
    mutated.arrivals[0].procs += 1;
    // corrupt a later section too: the earlier section must win
    let last = mutated.journal.len() - 1;
    mutated.journal[last].digest ^= 1;
    let report = replay::compare(&record, &mutated);
    let d = report.divergence.expect("mutation must be caught");
    assert_eq!(d.kind, DivergenceKind::Arrival);
    assert_eq!(d.index, 0);
}

#[test]
fn stream_and_fault_mutations_name_their_sections() {
    let record = faulted_record();

    let mut mutated = record.clone();
    mutated.streams[3].digest ^= 1;
    let d = replay::compare(&record, &mutated)
        .divergence
        .expect("stream mutation caught");
    assert_eq!(d.kind, DivergenceKind::Stream);
    assert_eq!(d.index, 3);

    let mut mutated = record.clone();
    mutated.faults[1].action = "hang:1".into();
    let d = replay::compare(&record, &mutated)
        .divergence
        .expect("fault mutation caught");
    assert_eq!(d.kind, DivergenceKind::Fault);
    assert_eq!(d.index, 1);
}

#[test]
fn header_mutation_makes_runs_incomparable() {
    let record = faulted_record();
    let mut mutated = record.clone();
    mutated.header.seed += 1;
    let d = replay::compare(&record, &mutated)
        .divergence
        .expect("header mutation caught");
    assert_eq!(d.kind, DivergenceKind::Header);
}

#[test]
fn metrics_mutation_is_the_last_check() {
    let record = faulted_record();
    let mut mutated = record.clone();
    mutated.metrics_digest ^= 1;
    let report = replay::compare(&record, &mutated);
    let d = report.divergence.expect("metrics mutation caught");
    assert_eq!(d.kind, DivergenceKind::Metrics);
    // every earlier section was fully checked first
    assert_eq!(report.checked_arrivals, record.arrivals.len() as u64);
    assert_eq!(report.checked_streams, record.streams.len() as u64);
    assert_eq!(report.checked_events, record.journal.len() as u64);
}

/// Replaying a run reproduces not just the journal but the *diagnosis*:
/// RCA over the replayed observer ranks the same cause chain.
#[test]
fn rca_is_identical_across_replay() {
    let mut spec = ScenarioSpec::new("incident-rca", 2025, &[1100, 1300]);
    spec.faulted = true;
    spec.telemetry = true;
    spec.record = true;
    let spec = spec.standard_arrivals(16);
    let original = scenario::run(&spec);
    let record = original.record.as_ref().expect("recording enabled");
    let replayed = scenario::rerun_from(record);

    let window = Duration::from_secs(600);
    let a = rca::analyze_latest(&original.obs, window).expect("anomaly fired");
    let b = rca::analyze_latest(&replayed.obs, window).expect("anomaly fired on replay");
    assert_eq!(a, b, "replayed diagnosis must match the original");
    assert_eq!(
        a.top_cause().expect("causes found").kind.label(),
        "fault_injection"
    );
}

/// The spike storyline end to end: a resident 32-proc lease trips the
/// load-spike detector and RCA pins the lease placement, with the
/// trigger carrying the metric that spiked.
#[test]
fn load_spike_rca_blames_the_lease() {
    let mut spec = ScenarioSpec::new("incident-spike", 2025, &[400, 500, 600, 700, 1000, 1030]);
    spec.submit_huge = true;
    spec.telemetry = true;
    spec.record = true;
    spec.lease_load = true;
    spec.complete_prev = false;
    spec.arrivals = vec![ArrivalSpec {
        at_secs: 700,
        name: "spike-32".into(),
        procs: 32,
    }];
    let run = scenario::run(&spec);
    // the starving huge job also trips its detector on this long run, so
    // target the load-spike trigger rather than whichever fired last
    let seq = run
        .obs
        .journal
        .events_of("anomaly_detected")
        .into_iter()
        .rev()
        .find(|e| {
            matches!(&e.kind,
                nlrm::obs::EventKind::AnomalyDetected { detector, .. } if detector == "load_spike")
        })
        .map(|e| e.seq)
        .expect("spike detected");
    let report = rca::analyze(&run.obs, seq, Duration::from_secs(600)).expect("trigger analyzed");
    assert_eq!(report.detector, "load_spike");
    assert_eq!(report.metric, "cluster_mean_cpu_load");
    let top = report.top_cause().expect("causes found");
    assert_eq!(top.kind.label(), "lease_placement");
    assert!(
        top.evidence.iter().any(|e| e.detail.contains("spike-32")),
        "the spiking lease is in the evidence: {:?}",
        top.evidence
    );
}
