//! End-to-end integration: cluster → monitor → allocator → MPI execution.

use nlrm::bench::runner::{paper_policies, Experiment};
use nlrm::prelude::*;

#[test]
fn full_pipeline_every_policy() {
    let mut env = Experiment::new(iitk_cluster(101));
    env.advance(Duration::from_secs(600));
    let req = AllocationRequest::minimd(32);
    let workload = MiniMd::new(16).with_steps(20);
    let results = env
        .compare(&mut paper_policies(5), &req, &workload)
        .expect("all policies allocate");
    assert_eq!(results.len(), 4);
    for r in &results {
        assert_eq!(r.allocation.total_procs(), 32);
        assert_eq!(r.allocation.node_list().len(), 8, "{}", r.policy);
        assert!(r.timing.total_s > 0.0 && r.timing.total_s < 3600.0);
        assert!(r.timing.comm_fraction() > 0.0 && r.timing.comm_fraction() < 1.0);
        // rank map consistent with placement
        let comm = Communicator::new(r.allocation.rank_map.clone());
        assert_eq!(comm.size(), 32);
        for (node, procs) in comm.placement() {
            assert_eq!(
                procs,
                r.allocation
                    .nodes
                    .iter()
                    .find(|&&(n, _)| n == node)
                    .map(|&(_, p)| p)
                    .unwrap_or(0),
                "{}: placement mismatch on {node}",
                r.policy
            );
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut env = Experiment::new(iitk_cluster(77));
        env.advance(Duration::from_secs(600));
        let req = AllocationRequest::minife(16);
        let workload = MiniFe::new(48).with_iterations(10);
        let snap = env.snapshot();
        let r = env
            .run_policy(&mut NetworkLoadAwarePolicy::new(), &snap, &req, &workload)
            .unwrap();
        (r.allocation.nodes.clone(), r.timing.total_s)
    };
    let (n1, t1) = run();
    let (n2, t2) = run();
    assert_eq!(n1, n2);
    assert_eq!(t1, t2);
}

#[test]
fn allocator_never_selects_failed_nodes_end_to_end() {
    let mut env = Experiment::new(iitk_cluster(55));
    env.advance(Duration::from_secs(400));
    // fail five nodes, then keep monitoring
    for i in [0u32, 7, 20, 33, 59] {
        env.cluster.set_node_up(nlrm::topology::NodeId(i), false);
    }
    env.advance(Duration::from_secs(120));
    let req = AllocationRequest::minimd(64);
    let workload = MiniMd::new(8).with_steps(5);
    for r in env
        .compare(&mut paper_policies(9), &req, &workload)
        .unwrap()
    {
        for &(node, _) in &r.allocation.nodes {
            assert!(
                ![0u32, 7, 20, 33, 59].contains(&node.0),
                "{} picked failed node {node}",
                r.policy
            );
        }
    }
}

#[test]
fn advisor_pipeline_runs_and_waits_appropriately() {
    use nlrm::cluster::iitk::iitk_cluster_with_profile;
    // normal lab: allocate
    let mut cluster = iitk_cluster_with_profile(ClusterProfile::shared_lab(), 3);
    let mut monitor = MonitorRuntime::new(&cluster);
    let snap = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(600))
        .unwrap();
    let req = AllocationRequest::minimd(16);
    let advice = advise(&snap, &req, &AdvisorConfig::default()).unwrap();
    assert!(advice.should_run());

    // overloaded: wait
    let mut cluster = iitk_cluster_with_profile(ClusterProfile::overloaded(), 3);
    let mut monitor = MonitorRuntime::new(&cluster);
    let snap = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(600))
        .unwrap();
    let advice = advise(&snap, &req, &AdvisorConfig::default()).unwrap();
    assert!(!advice.should_run());
}

#[test]
fn job_execution_is_visible_to_monitoring() {
    // While a job runs, the monitor's next snapshot must show its load.
    let mut env = Experiment::new(small_cluster(4, 13));
    env.advance(Duration::from_secs(400));
    let snap0 = env.snapshot();
    let req = AllocationRequest::new(16, Some(4), 0.5, 0.5);
    let alloc = NetworkLoadAwarePolicy::new()
        .allocate(&snap0, &req)
        .unwrap();
    let comm = Communicator::new(alloc.rank_map.clone());

    // run a long job on the master timeline while monitoring continues
    let target_node = alloc.node_list()[0];
    let before = env.cluster.node_state(target_node).cpu_load;
    for (node, procs) in comm.placement() {
        env.cluster.add_job_load(node, procs as f64);
    }
    env.advance(Duration::from_secs(60));
    let snap1 = env.snapshot();
    let seen = snap1.info(target_node).unwrap().sample.cpu_load.instant;
    // background load drifts during the minute, so allow slack around the
    // job's +4 runnable processes
    assert!(
        seen >= before + 2.0,
        "monitor should see the job's 4 procs: before {before}, seen {seen}"
    );
}
