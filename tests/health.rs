//! Integration test: the continuous-telemetry loop distinguishes a
//! degraded cluster from a healthy one. The faulted broker scenario must
//! produce a staleness-surge anomaly (dead node-state daemons aging past
//! the bound) and a starvation anomaly (the 64-proc job that can never
//! fit), while the identical fault-free run stays anomaly-silent — the
//! detectors have to be detectors, not noise generators.

use nlrm::bench::obs_scenario::{run_broker_scenario, ScenarioOptions, QUICK_CHECKPOINTS};
use nlrm::obs::AnomalyKind;
use nlrm_sim_core::time::SimTime;

#[test]
fn faulted_run_raises_anomalies_and_clean_run_stays_silent() {
    let faulted = run_broker_scenario(
        2025,
        QUICK_CHECKPOINTS,
        ScenarioOptions::faulted_telemetry(),
    );
    let clean = run_broker_scenario(2025, QUICK_CHECKPOINTS, ScenarioOptions::clean_telemetry());

    // --- the telemetry loop actually ran on both arms ---
    assert!(
        faulted.obs.telemetry.ticks() > 10,
        "30 s cadence over 1300 s"
    );
    assert!(clean.obs.telemetry.ticks() > 10);

    // --- faulted arm: staleness surge after the headless kills ---
    let anomalies = faulted.obs.telemetry.anomalies();
    let surge = anomalies
        .iter()
        .find(|a| a.kind == AnomalyKind::StalenessSurge)
        .expect("n5/n6 samples age past the bound after t=950");
    // kills land at t=950, staleness bound is 60 s, and the broker only
    // derives (publishing the stale fraction) at the t=1100 checkpoint
    assert!(surge.at >= SimTime::from_secs(1010));
    assert!(surge.value > surge.threshold);

    // --- faulted arm: the oversized job starves ---
    assert!(
        anomalies.iter().any(|a| a.kind == AnomalyKind::Starvation),
        "huge-64 waits past the starvation bound with the queue non-empty"
    );

    // --- anomalies reach the journal as typed events, with counters ---
    let events = faulted.obs.journal.events_of("anomaly_detected");
    assert_eq!(events.len(), anomalies.len());
    assert_eq!(
        faulted.obs.metrics.counter_value("anomaly_total"),
        anomalies.len() as u64
    );
    assert!(
        faulted
            .obs
            .metrics
            .counter_value("anomaly_total_staleness_surge")
            >= 1
    );

    // --- health snapshot reflects the degradation ---
    let health = faulted.obs.telemetry.latest_health().expect("ticked");
    assert!(
        health.stale_fraction >= 0.25 - 1e-9,
        "2 of 8 nodes stale: {}",
        health.stale_fraction
    );
    assert!(health.queue_depth >= 1, "huge-64 still queued");
    assert!(health.oldest_wait_secs > 600.0);

    // --- clean arm: zero anomalies, zero breach events ---
    let clean_anoms = clean.obs.telemetry.anomalies();
    assert!(
        clean_anoms.is_empty(),
        "clean run must stay silent, got {clean_anoms:?}"
    );
    assert_eq!(clean.obs.journal.count_of("anomaly_detected"), 0);
    let clean_health = clean.obs.telemetry.latest_health().expect("ticked");
    assert_eq!(clean_health.stale_fraction, 0.0);

    // --- the sampler captured series on both arms ---
    for r in [&faulted, &clean] {
        let tel = r.obs.telemetry.to_json();
        nlrm::obs::json::validate(&tel).expect("telemetry JSON is valid");
        assert!(tel.contains("health_utilization"), "gauge series tracked");
    }
}
