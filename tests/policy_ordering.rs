//! Statistical reproduction checks: across seeds, the paper's headline
//! ordering must hold — network-and-load-aware beats random, sequential and
//! load-aware on average, with positive mean gains.

use nlrm::bench::gains::PolicyTimes;
use nlrm::bench::runner::{paper_policies, Experiment};
use nlrm::prelude::*;

fn sweep(seeds: &[u64], procs: u32, size: u32) -> PolicyTimes {
    let mut times = PolicyTimes::new();
    for &seed in seeds {
        let mut env = Experiment::new(iitk_cluster(seed));
        env.advance(Duration::from_secs(600));
        let req = AllocationRequest::minimd(procs);
        let workload = MiniMd::new(size).with_steps(30);
        for rep in 0..2 {
            env.advance(Duration::from_secs(300));
            for r in env
                .compare(&mut paper_policies(seed ^ rep), &req, &workload)
                .unwrap()
            {
                times.push(&r.policy, r.timing.total_s);
            }
        }
    }
    times
}

#[test]
fn nla_beats_every_baseline_on_average() {
    let times = sweep(&[1, 2, 3, 4, 5], 32, 16);
    for baseline in ["random", "sequential", "load-aware"] {
        let gains = times.gains_over(baseline, "network-load-aware");
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!(
            mean > 5.0,
            "mean gain over {baseline} should be clearly positive, got {mean:.1}%"
        );
    }
}

#[test]
fn gains_land_in_paper_band_for_random() {
    // the paper reports ~50% average gain over random for miniMD; accept a
    // generous band around it since this is a small sweep
    let times = sweep(&[11, 12, 13], 32, 24);
    let gains = times.gains_over("random", "network-load-aware");
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        (15.0..85.0).contains(&mean),
        "gain over random out of band: {mean:.1}%"
    );
}

#[test]
fn nla_is_the_most_stable_policy() {
    // the paper's CoV argument: NLA's repeated runs vary least
    let times = sweep(&[21, 22, 23, 24], 32, 16);
    let nla = times.cov("network-load-aware");
    let worst_baseline = ["random", "sequential"]
        .iter()
        .map(|p| times.cov(p))
        .fold(0.0f64, f64::max);
    assert!(
        nla < worst_baseline,
        "NLA CoV {nla:.2} should be below the worst baseline {worst_baseline:.2}"
    );
}

#[test]
fn on_a_quiet_cluster_all_policies_converge() {
    use nlrm::cluster::iitk::iitk_cluster_with_profile;
    // nothing to avoid → any allocation is nearly as good
    let mut env = Experiment::new(iitk_cluster_with_profile(ClusterProfile::quiet(), 9));
    env.advance(Duration::from_secs(600));
    let req = AllocationRequest::minimd(16);
    let workload = MiniMd::new(16).with_steps(20);
    let results = env
        .compare(&mut paper_policies(9), &req, &workload)
        .unwrap();
    let best = results
        .iter()
        .map(|r| r.timing.total_s)
        .fold(f64::INFINITY, f64::min);
    let worst = results
        .iter()
        .map(|r| r.timing.total_s)
        .fold(0.0f64, f64::max);
    assert!(
        worst / best < 2.0,
        "policies should converge on a quiet cluster: best {best:.2}, worst {worst:.2}"
    );
}
