//! Property-based integration tests over the allocation pipeline.

use nlrm::bench::runner::Experiment;
use nlrm::prelude::*;
use proptest::prelude::*;

/// Build one warmed snapshot per seed (kept small so proptest stays fast).
fn snapshot_env(nodes: usize, seed: u64) -> (Experiment, ClusterSnapshot) {
    let mut env = Experiment::new(small_cluster(nodes, seed));
    env.advance(Duration::from_secs(400));
    let snap = env.snapshot();
    (env, snap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy satisfies any feasible request exactly.
    #[test]
    fn any_request_is_satisfied(
        procs in 1u32..64,
        ppn in 1u32..8,
        alpha in 0.0f64..=1.0,
        seed in 0u64..200,
    ) {
        let (_, snap) = snapshot_env(8, seed);
        let req = AllocationRequest::new(procs, Some(ppn), alpha, 1.0 - alpha);
        for policy in [
            &mut RandomPolicy::new(seed) as &mut dyn Policy,
            &mut SequentialPolicy::new(seed),
            &mut LoadAwarePolicy::new(),
            &mut NetworkLoadAwarePolicy::new(),
        ] {
            let alloc = policy.allocate(&snap, &req).unwrap();
            prop_assert_eq!(alloc.total_procs(), procs);
            prop_assert_eq!(alloc.rank_map.len(), procs as usize);
            // no duplicate nodes
            let mut nodes = alloc.node_list();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), alloc.nodes.len());
            // every selected node was usable
            for n in alloc.node_list() {
                prop_assert!(snap.usable_nodes().contains(&n));
            }
        }
    }

    /// A communicator built from any allocation is internally consistent.
    #[test]
    fn communicators_match_allocations(procs in 1u32..48, seed in 0u64..100) {
        let (_, snap) = snapshot_env(6, seed);
        let req = AllocationRequest::new(procs, Some(4), 0.3, 0.7);
        let alloc = NetworkLoadAwarePolicy::new().allocate(&snap, &req).unwrap();
        let comm = Communicator::new(alloc.rank_map.clone());
        prop_assert_eq!(comm.size(), procs as usize);
        let total: u32 = comm.placement().map(|(_, p)| p).sum();
        prop_assert_eq!(total, procs);
        for rank in 0..comm.size() {
            prop_assert!(comm.nodes().contains(&comm.node_of(rank)));
        }
    }

    /// Execution time is finite, positive, and decomposes into
    /// compute + communication.
    #[test]
    fn execution_is_well_formed(
        size in 4u32..24,
        steps in 1usize..20,
        seed in 0u64..50,
    ) {
        let (env, snap) = snapshot_env(6, seed);
        let req = AllocationRequest::new(16, Some(4), 0.3, 0.7);
        let alloc = NetworkLoadAwarePolicy::new().allocate(&snap, &req).unwrap();
        let comm = Communicator::new(alloc.rank_map.clone());
        let mut cluster = env.cluster.clone();
        let t = execute(&mut cluster, &comm, &MiniMd::new(size).with_steps(steps));
        prop_assert!(t.total_s.is_finite() && t.total_s > 0.0);
        prop_assert!((t.compute_s + t.comm_s - t.total_s).abs() < 1e-9);
        prop_assert_eq!(t.steps, steps);
    }

    /// More background load never makes the same job finish faster
    /// (monotonicity of the interference model).
    #[test]
    fn interference_is_monotone(extra_load in 0.0f64..32.0, seed in 0u64..50) {
        let (env, snap) = snapshot_env(4, seed);
        let req = AllocationRequest::new(8, Some(4), 0.5, 0.5);
        let alloc = NetworkLoadAwarePolicy::new().allocate(&snap, &req).unwrap();
        let comm = Communicator::new(alloc.rank_map.clone());
        let workload = MiniMd::new(12).with_steps(5);

        let mut clean = env.cluster.clone();
        let t_clean = execute(&mut clean, &comm, &workload);

        let mut loaded = env.cluster.clone();
        for node in alloc.node_list() {
            loaded.add_job_load(node, extra_load);
        }
        let t_loaded = execute(&mut loaded, &comm, &workload);
        prop_assert!(
            t_loaded.compute_s + 1e-9 >= t_clean.compute_s,
            "extra load {} sped compute up: {} -> {}",
            extra_load, t_clean.compute_s, t_loaded.compute_s
        );
    }
}
