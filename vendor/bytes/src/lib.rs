//! Offline shim for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: an immutable,
//! cheaply-cloneable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and little-endian cursor traits ([`Buf`], [`BufMut`]).
//! Semantics match the real crate for this subset; the representation is a
//! plain `Arc<[u8]>` rather than the real crate's vtable machinery.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// A buffer holding a copy of `data`.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to assemble records before freezing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side cursor operations (little-endian variants only).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations over a shrinking slice.
///
/// Callers must check [`remaining`](Buf::remaining) before each getter, as
/// the real crate's getters panic on underflow; this shim does the same.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32;

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64;

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("length checked"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("length checked"));
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_f64_le(-1.5);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert_eq!(cur.get_f64_le(), -1.5);
        assert_eq!(cur, b"xy");
        cur.advance(2);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1, 2, 3]), Bytes::from_static(&[1, 2, 3]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }
}
