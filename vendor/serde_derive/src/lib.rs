//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde (the store codec is hand-rolled and the
//! bench reports emit JSON by hand), so the derives only need to exist, not
//! generate real impls. Emitting nothing keeps the build dependency-free:
//! real `serde_derive` needs `syn`/`quote`, which cannot be fetched in this
//! offline environment.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
