//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The workspace derives every RNG stream from explicit seeds (see
//! `nlrm-sim-core`'s `RngFactory`), so the only guarantees callers need are
//! determinism per seed and decent statistical quality — not bit
//! compatibility with upstream `StdRng`. [`rngs::StdRng`] here is
//! xoshiro256++, seeded from the same 32-byte seeds via `SeedableRng`.
//!
//! Implemented subset: [`RngCore`], [`SeedableRng`], [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`]'s
//! `shuffle`/`choose`.

/// Low-level RNG interface: raw word generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = splitmix64(s);
            let bytes = s.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible from raw random bits (stand-in for rand's
/// `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` (stand-in for
/// rand's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// otherwise. Panics on an empty range.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let diff = hi as i128 - lo as i128;
                assert!(diff >= 0, "cannot sample empty range");
                let span = diff as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
///
/// Blanket impls over `T: SampleUniform` (rather than per-type impls) so
/// that integer-literal ranges unify with the target type during
/// inference, matching upstream rand 0.8.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (not bit-compatible with
    /// upstream `StdRng`, which is fine — all consumers seed explicitly and
    /// only require per-seed determinism).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(2);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
