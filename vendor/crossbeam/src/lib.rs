//! Offline shim for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` subset the workspace uses: a
//! multi-producer **multi-consumer** channel (std's mpsc receiver is not
//! cloneable) with `recv_timeout` and disconnect-on-drop semantics. The
//! monitor's threaded runtime only ever uses the channel as a shutdown
//! signal, so the `bounded` capacity is accepted but not enforced: sends
//! never block. Disconnect detection — the part the daemon loops rely on —
//! matches the real crate.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Errors for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout; senders still connected.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error for [`Sender::send`]: all receivers dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (any one receiver gets each message).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel with a capacity bound (not enforced by this shim).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Deliver `value` to one receiver, failing if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Wait up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .available
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if result.timed_out() && state.items.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive() {
            let (tx, rx) = bounded(0);
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
        }

        #[test]
        fn timeout_when_empty() {
            let (tx, rx) = bounded::<u32>(0);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = bounded::<u32>(0);
            let rx2 = rx.clone();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(
                rx2.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn disconnect_wakes_blocked_receivers() {
            let (tx, rx) = bounded::<u32>(0);
            let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvTimeoutError::Disconnected));
        }
    }
}
