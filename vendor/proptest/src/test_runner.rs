//! Test-run configuration and the deterministic RNG behind the shim.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// SplitMix64-based RNG seeded from the test's name: deterministic across
/// runs, different per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived from `name` (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
    pub fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty bound");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_sensitive() {
        let seq = |name: &str| {
            let mut rng = TestRng::from_name(name);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq("a::b"), seq("a::b"));
        assert_ne!(seq("a::b"), seq("a::c"));
    }
}
