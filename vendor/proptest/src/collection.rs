//! Collection strategies.

use crate::{Strategy, TestRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: a fixed size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Exclusive maximum length (always > `min`).
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.next_usize(span) };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::from_name("collection");
        for _ in 0..50 {
            assert_eq!(vec(0u8..10, 3).new_value(&mut rng).len(), 3);
            let v = vec(0u8..10, 1..5).new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
