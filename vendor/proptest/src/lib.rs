//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`, numeric
//! range strategies, tuple and `Vec` composition, [`collection::vec`],
//! [`Just`], [`any`], a character-class string strategy, and the
//! [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case reports its generated inputs via the
//!   assertion message but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so failures reproduce exactly on rerun.
//! * Regex string strategies support only the `[c1-c2]{lo,hi}` shape the
//!   workspace uses (e.g. `"[a-z]{1,16}"`).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;
pub mod test_runner;

pub use test_runner::{Config as ProptestConfig, TestRng};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.next_usize(self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.next_f64() as $t * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// String-literal strategies: a minimal character-class regex
/// (`"[a-z]{1,16}"`). Unsupported patterns panic so a silently wrong
/// generator can never pass a test.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo_char, hi_char, min_len, max_len) = parse_char_class(self).unwrap_or_else(|| {
            panic!(
                "proptest shim supports only \"[c1-c2]{{lo,hi}}\" string \
                     strategies, got {self:?}"
            )
        });
        let len = min_len + rng.next_usize(max_len - min_len + 1);
        let span = hi_char as u32 - lo_char as u32 + 1;
        (0..len)
            .map(|_| {
                char::from_u32(lo_char as u32 + rng.next_u64() as u32 % span)
                    .expect("ASCII class stays valid")
            })
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let mut chars = rest.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    let rest = chars.as_str().strip_prefix("]{")?;
    let body = rest.strip_suffix('}')?;
    let (a, b) = body.split_once(',')?;
    let min_len: usize = a.trim().parse().ok()?;
    let max_len: usize = b.trim().parse().ok()?;
    if lo > hi || min_len > max_len {
        return None;
    }
    Some((lo, hi, min_len, max_len))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// A `Vec` of strategies generates element-wise (used for per-position
/// strategies, e.g. random tree parents).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Strategy covering the full domain of `Self`.
    type AnyStrategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::AnyStrategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type AnyStrategy = RangeInclusive<$t>;

            fn arbitrary() -> Self::AnyStrategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::AnyStrategy {
    T::arbitrary()
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.cases.max(1);
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?} "),+), $(&$arg),+);
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cases, message, inputs,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Uniform choice among strategy alternatives with a shared value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), format!($($fmt)+), l, r),
            );
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        let mut seen_low = false;
        for _ in 0..200 {
            let v = Strategy::new_value(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            seen_low |= v == 3;
            let f = Strategy::new_value(&(-1.0f64..=1.0), &mut rng);
            assert!((-1.0..=1.0).contains(&f));
        }
        assert!(seen_low, "lower bound never generated");
    }

    #[test]
    fn string_class_strategy() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..100 {
            let s = Strategy::new_value(&"[a-z]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn composition_map_flat_map_vec() {
        let mut rng = TestRng::from_name("compose");
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n))
            .prop_map(|v| v.len());
        for _ in 0..50 {
            let len = Strategy::new_value(&strat, &mut rng);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_name("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match Strategy::new_value(&strat, &mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 | 6 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_runnable_tests(
            v in crate::collection::vec(0u64..100, 1..20),
            x in 0u64..10,
        ) {
            prop_assert!(v.len() >= 1 && v.len() < 20);
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.iter().count());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
