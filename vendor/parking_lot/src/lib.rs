//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API
//! (`lock()`/`read()`/`write()` return guards directly, no `Result`).
//! Poisoning is deliberately ignored, matching `parking_lot` semantics: a
//! panicked writer does not poison the lock for later users.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable
        assert_eq!(*m.lock(), 0);
    }
}
