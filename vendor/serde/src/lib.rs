//! Offline shim for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports —
//! both the traits (type namespace) and the derive macros (macro
//! namespace). Nothing in the workspace serializes through serde (the
//! monitor codec is hand-rolled; reports emit JSON by hand), so the traits
//! are markers and the derives are no-ops. If real serialization is ever
//! needed, replace this shim with the actual crate once the build has
//! network access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
