//! Offline shim for the `criterion` crate.
//!
//! Keeps the workspace's benches compiling and *usefully runnable* without
//! network access: each benchmark is timed with `std::time::Instant` over an
//! adaptively chosen iteration count and reported as a mean per-iteration
//! time on stdout. No statistics engine, no HTML reports, no comparison
//! against saved baselines — run the real criterion when the environment
//! can fetch it.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per benchmark (split between warm-up and measurement).
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(400);

/// How a batched iteration's inputs are grouped (accepted, not used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Benchmark identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures; handed to `bench_function` callbacks.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm up and estimate cost with a geometric ramp
        let mut per_iter = Duration::from_nanos(0);
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter = start.elapsed() / batch as u32;
            if start.elapsed() > TARGET_MEASURE_TIME / 8 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let iters = (TARGET_MEASURE_TIME.as_nanos() as u64)
            .checked_div(per_iter.as_nanos().max(1) as u64)
            .unwrap_or(1)
            .clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Measure `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = 16u64;
        let mut total = Duration::from_nanos(0);
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(name: &str, bencher: &Bencher) {
    let mean = bencher.mean_ns;
    let human = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} µs", mean / 1e3)
    } else {
        format!("{mean:.1} ns")
    };
    println!(
        "bench: {name:<48} {human:>12}/iter ({} iters)",
        bencher.iters
    );
}

/// The benchmark driver.
pub struct Criterion {
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _sample_size: 100 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample size (accepted for API compatibility; unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
