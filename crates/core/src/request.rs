//! Allocation requests and results.

use crate::weights::{validate_alpha_beta, ComputeWeights, NetworkWeights};
use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a user asks the resource manager for (paper §3.3: "user specifies
/// the total number of processes and process count per node (optionally)",
/// plus the α/β job mix and attribute weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Total number of MPI processes (`n`).
    pub procs: u32,
    /// Optional processes-per-node override for `pc_v`.
    pub ppn: Option<u32>,
    /// Weight of compute cost in Eq. 4 (`α`); high for compute-bound jobs.
    pub alpha: f64,
    /// Weight of network cost in Eq. 4 (`β`); high for communication-bound jobs.
    pub beta: f64,
    /// SAW attribute weights for Eq. 1.
    pub compute_weights: ComputeWeights,
    /// Latency/bandwidth weights for Eq. 2.
    pub network_weights: NetworkWeights,
}

impl AllocationRequest {
    /// A request with the paper's default weights and the given α/β mix.
    pub fn new(procs: u32, ppn: Option<u32>, alpha: f64, beta: f64) -> Self {
        AllocationRequest {
            procs,
            ppn,
            alpha,
            beta,
            compute_weights: ComputeWeights::paper_default(),
            network_weights: NetworkWeights::paper_default(),
        }
    }

    /// The paper's miniMD configuration: α = 0.3, β = 0.7, 4 processes/node.
    pub fn minimd(procs: u32) -> Self {
        AllocationRequest::new(procs, Some(4), 0.3, 0.7)
    }

    /// The paper's miniFE configuration: α = 0.4, β = 0.6, 4 processes/node.
    pub fn minife(procs: u32) -> Self {
        AllocationRequest::new(procs, Some(4), 0.4, 0.6)
    }

    /// Validate all fields.
    pub fn validate(&self) -> Result<(), AllocError> {
        if self.procs == 0 {
            return Err(AllocError::InvalidRequest("procs must be positive".into()));
        }
        if self.ppn == Some(0) {
            return Err(AllocError::InvalidRequest("ppn must be positive".into()));
        }
        validate_alpha_beta(self.alpha, self.beta).map_err(AllocError::InvalidRequest)?;
        self.compute_weights
            .validate()
            .map_err(AllocError::InvalidRequest)?;
        self.network_weights
            .validate()
            .map_err(AllocError::InvalidRequest)?;
        Ok(())
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// The request itself is malformed.
    InvalidRequest(String),
    /// No node is live with a fresh sample.
    NoUsableNodes,
    /// Fewer nodes available than a fixed-size policy needs.
    NotEnoughNodes {
        /// Usable node count.
        available: usize,
        /// Nodes the request needs.
        needed: usize,
    },
    /// Usable nodes exist but none can host a single process
    /// (`pc_v == 0` everywhere), so no candidate group can form.
    NoCapacity,
    /// The broker's admission control bounced the submission: the queue
    /// already holds `depth` jobs.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            AllocError::NoUsableNodes => write!(f, "no usable nodes in snapshot"),
            AllocError::NotEnoughNodes { available, needed } => {
                write!(f, "need {needed} nodes but only {available} usable")
            }
            AllocError::NoCapacity => {
                write!(f, "no usable node has spare process capacity")
            }
            AllocError::QueueFull { depth } => {
                write!(f, "queue full: {depth} jobs already waiting")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A successful allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Name of the policy that produced this allocation.
    pub policy: String,
    /// Selected nodes with their assigned process counts, in selection order.
    pub nodes: Vec<(NodeId, u32)>,
    /// Rank → node placement (block mapping over `nodes`), length = procs.
    pub rank_map: Vec<NodeId>,
    /// Diagnostics for analysis (Table 4 / Fig. 7 reproduction).
    pub diagnostics: Diagnostics,
}

/// Allocation-time diagnostics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Eq. 4 total cost of the chosen group (NLA policy only; 0 otherwise).
    pub total_cost: f64,
    /// Mean compute load over selected nodes.
    pub mean_compute_load: f64,
    /// Mean pairwise network load over selected nodes.
    pub mean_network_load: f64,
    /// Per-candidate `(start node, T_G)` table (NLA policy only).
    pub candidate_costs: Vec<(NodeId, f64)>,
    /// Why the winning group won: top-k ranking with cost components
    /// (NLA policy and broker decisions only).
    pub explain: Option<nlrm_obs::ExplainTrace>,
}

impl Allocation {
    /// The distinct nodes in selection order.
    pub fn node_list(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|&(n, _)| n).collect()
    }

    /// Total processes placed.
    pub fn total_procs(&self) -> u32 {
        self.nodes.iter().map(|&(_, p)| p).sum()
    }

    /// Build the block rank map from `nodes`: node 0 hosts ranks
    /// `0..p0`, node 1 hosts `p0..p0+p1`, …
    pub fn block_rank_map(nodes: &[(NodeId, u32)]) -> Vec<NodeId> {
        let mut map = Vec::new();
        for &(node, procs) in nodes {
            map.extend(std::iter::repeat_n(node, procs as usize));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_presets_match_paper() {
        let md = AllocationRequest::minimd(32);
        assert_eq!((md.alpha, md.beta), (0.3, 0.7));
        assert_eq!(md.ppn, Some(4));
        let fe = AllocationRequest::minife(48);
        assert_eq!((fe.alpha, fe.beta), (0.4, 0.6));
        md.validate().unwrap();
        fe.validate().unwrap();
    }

    #[test]
    fn invalid_requests_rejected() {
        assert!(AllocationRequest::new(0, None, 0.5, 0.5)
            .validate()
            .is_err());
        assert!(AllocationRequest::new(4, Some(0), 0.5, 0.5)
            .validate()
            .is_err());
        assert!(AllocationRequest::new(4, None, 0.6, 0.6)
            .validate()
            .is_err());
    }

    #[test]
    fn block_rank_map_layout() {
        let map = Allocation::block_rank_map(&[(NodeId(3), 2), (NodeId(1), 3)]);
        assert_eq!(
            map,
            vec![NodeId(3), NodeId(3), NodeId(1), NodeId(1), NodeId(1)]
        );
    }

    #[test]
    fn totals() {
        let alloc = Allocation {
            policy: "x".into(),
            nodes: vec![(NodeId(0), 4), (NodeId(2), 4)],
            rank_map: Allocation::block_rank_map(&[(NodeId(0), 4), (NodeId(2), 4)]),
            diagnostics: Diagnostics::default(),
        };
        assert_eq!(alloc.total_procs(), 8);
        assert_eq!(alloc.node_list(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(alloc.rank_map.len(), 8);
    }
}
