//! Algorithm 1: greedy candidate sub-graph generation.
//!
//! For a start node `v`, every other node `u` gets an addition cost
//! `A_v(u) = α·CL(u) + β·NL(v,u)`; nodes are added in increasing `A_v`
//! order until the requested process count is covered. If the whole cluster
//! cannot cover it, the remainder is assigned round-robin over the selected
//! nodes (paper Algorithm 1, lines 12–13).

use crate::loads::Loads;
use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A candidate sub-graph: the greedy result for one start node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The start node `v` this candidate grew from.
    pub start: NodeId,
    /// Selected nodes in addition order (start node first).
    pub nodes: Vec<NodeId>,
    /// Processes assigned per node, parallel to `nodes`.
    pub procs: Vec<u32>,
}

impl Candidate {
    /// Total processes assigned.
    pub fn total_procs(&self) -> u32 {
        self.procs.iter().sum()
    }

    /// Nodes and process counts zipped.
    pub fn assignment(&self) -> Vec<(NodeId, u32)> {
        self.nodes
            .iter()
            .copied()
            .zip(self.procs.iter().copied())
            .collect()
    }
}

/// Generate the candidate sub-graph for start node `v` (Algorithm 1).
///
/// `n` is the requested process count. Ties in `A_v(u)` break by node id so
/// candidate generation is deterministic.
pub fn generate_candidate(loads: &Loads, v: NodeId, n: u32, alpha: f64, beta: f64) -> Candidate {
    debug_assert!(loads.index(v).is_some(), "start node must be usable");
    // addition cost per usable node; A_v(v) = 0 so v always joins first
    let mut order: Vec<(f64, NodeId)> = loads
        .usable
        .iter()
        .map(|&u| {
            let cost = if u == v {
                0.0
            } else {
                alpha * loads.cl_of(u) + beta * loads.nl_between(v, u)
            };
            (cost, u)
        })
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut nodes = Vec::new();
    let mut procs: Vec<u32> = Vec::new();
    let mut allocated: u64 = 0;
    for &(_, u) in &order {
        if allocated >= n as u64 {
            break;
        }
        let pc = loads.pc_of(u);
        // never hand a node more processes than still needed
        let take = (pc as u64).min(n as u64 - allocated) as u32;
        if take == 0 {
            continue;
        }
        nodes.push(u);
        procs.push(take);
        allocated += take as u64;
    }
    // cluster exhausted: distribute the remainder round-robin (lines 12–13)
    if allocated < n as u64 && !nodes.is_empty() {
        let mut i = 0usize;
        while allocated < n as u64 {
            procs[i] += 1;
            allocated += 1;
            i = (i + 1) % nodes.len();
        }
    }
    Candidate {
        start: v,
        nodes,
        procs,
    }
}

/// All `|V|` candidates, one per usable start node (§3.3.2: "we find
/// candidate sub-graph corresponding to each node in the graph").
pub fn generate_all_candidates(loads: &Loads, n: u32, alpha: f64, beta: f64) -> Vec<Candidate> {
    loads
        .usable
        .iter()
        .map(|&v| generate_candidate(loads, v, n, alpha, beta))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loads::Loads;
    use crate::weights::{ComputeWeights, NetworkWeights};
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn loads(n_nodes: usize, seed: u64, ppn: Option<u32>) -> Loads {
        let mut cluster = small_cluster(n_nodes, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            ppn,
        )
        .unwrap()
    }

    #[test]
    fn candidate_satisfies_request_exactly() {
        let l = loads(8, 3, Some(4));
        let c = generate_candidate(&l, l.usable[0], 16, 0.3, 0.7);
        assert_eq!(c.total_procs(), 16);
        assert_eq!(c.nodes.len(), 4); // 16 procs / 4 ppn
        assert_eq!(c.start, l.usable[0]);
        assert_eq!(c.nodes[0], c.start, "start node joins first");
    }

    #[test]
    fn last_node_gets_partial_count() {
        let l = loads(8, 3, Some(4));
        let c = generate_candidate(&l, l.usable[0], 10, 0.3, 0.7);
        assert_eq!(c.total_procs(), 10);
        assert_eq!(c.procs, vec![4, 4, 2]);
    }

    #[test]
    fn oversubscription_round_robins() {
        // 4 nodes × 4 ppn = 16 capacity, ask for 21
        let l = loads(4, 3, Some(4));
        let c = generate_candidate(&l, l.usable[0], 21, 0.3, 0.7);
        assert_eq!(c.total_procs(), 21);
        assert_eq!(c.nodes.len(), 4);
        // round-robin: first gets 2 extra... 16 + 5 → procs [6, 6, 5, 4]? No:
        // base [4,4,4,4], remainder 5 distributed 0,1,2,3,0 → [6,5,5,5]
        assert_eq!(c.procs, vec![6, 5, 5, 5]);
    }

    #[test]
    fn nodes_are_distinct() {
        let l = loads(10, 9, Some(4));
        for &v in &l.usable {
            let c = generate_candidate(&l, v, 24, 0.5, 0.5);
            let mut seen = c.nodes.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), c.nodes.len());
        }
    }

    #[test]
    fn alpha_one_ignores_network() {
        // with β = 0, order after the start node is purely by CL
        let l = loads(8, 5, Some(4));
        let c = generate_candidate(&l, l.usable[0], 32, 1.0, 0.0);
        let tail = &c.nodes[1..];
        for w in tail.windows(2) {
            let a = l.cl_of(w[0]);
            let b = l.cl_of(w[1]);
            assert!(
                a <= b + 1e-12,
                "CL must be non-decreasing after start: {a} > {b}"
            );
        }
    }

    #[test]
    fn all_candidates_cover_every_start() {
        let l = loads(6, 5, Some(4));
        let cands = generate_all_candidates(&l, 8, 0.3, 0.7);
        assert_eq!(cands.len(), 6);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.start, l.usable[i]);
            assert_eq!(c.total_procs(), 8);
        }
    }

    #[test]
    fn effective_pc_limits_without_ppn() {
        let l = loads(8, 3, None);
        let c = generate_candidate(&l, l.usable[0], 16, 0.3, 0.7);
        for (&node, &p) in c.nodes.iter().zip(&c.procs) {
            assert!(p <= l.pc_of(node), "node {node} got {p} > pc");
        }
    }
}
