//! Algorithm 1: greedy candidate sub-graph generation.
//!
//! For a start node `v`, every other node `u` gets an addition cost
//! `A_v(u) = α·CL(u) + β·NL(v,u)`; nodes are added in increasing `A_v`
//! order until the requested process count is covered. If the whole cluster
//! cannot cover it, the remainder is assigned round-robin over the selected
//! nodes (paper Algorithm 1, lines 12–13).
//!
//! ## Scaling
//!
//! The paper sorts all `V` addition costs per start node — O(V log V) each,
//! O(V² log V) for the full candidate set. This module keeps the *output*
//! identical while cutting the work:
//!
//! * [`generate_candidate`] heapifies the addition costs in O(V) and pops
//!   only until `n` processes are covered — a bounded partial selection,
//!   O(V + k log V) per start node.
//! * On a tiered network-load representation
//!   ([`TieredNl`](crate::tiered::TieredNl)), [`generate_all_candidates`]
//!   exploits that every node of a foreign switch shares the same
//!   `NL(v,·)` term: per-switch streams pre-sorted by compute load are
//!   lazily merged per start node, so no start node ever scans the whole
//!   cluster.
//! * Start nodes are fanned out over worker threads
//!   ([`par`](crate::par)); outputs land in input order, so the candidate
//!   vector is identical to the serial path.
//!
//! Candidates that cannot host a single process (every usable node at
//! `pc = 0`) are filtered out: an empty candidate would otherwise satisfy
//! zero of `n` requested processes yet still reach — and possibly win —
//! Algorithm 2's selection.

use crate::loads::Loads;
use crate::par;
use crate::tiered::TieredNl;
use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A candidate sub-graph: the greedy result for one start node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The start node `v` this candidate grew from.
    pub start: NodeId,
    /// Selected nodes in addition order (start node first).
    pub nodes: Vec<NodeId>,
    /// Processes assigned per node, parallel to `nodes`.
    pub procs: Vec<u32>,
}

impl Candidate {
    /// Total processes assigned.
    pub fn total_procs(&self) -> u32 {
        self.procs.iter().sum()
    }

    /// Nodes and process counts zipped.
    pub fn assignment(&self) -> Vec<(NodeId, u32)> {
        self.nodes
            .iter()
            .copied()
            .zip(self.procs.iter().copied())
            .collect()
    }
}

/// A `(cost, node)` entry ordered ascending by cost, ties by node id — the
/// total order Algorithm 1's sort used, so heap pops reproduce it exactly.
#[derive(PartialEq)]
struct CostEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for CostEntry {}

impl Ord for CostEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .total_cmp(&other.cost)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for CostEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Spread `n − allocated` oversubscribed processes round-robin over the
/// selected nodes (paper Algorithm 1, lines 12–13) in O(len) arithmetic
/// instead of one loop iteration per process: node `i` gains
/// `⌊r/len⌋ + (i < r mod len)`. Additions saturate so a pathological
/// request near `u32::MAX` can never wrap a per-node count.
fn distribute_remainder(procs: &mut [u32], allocated: u64, n: u32) {
    if procs.is_empty() || allocated >= n as u64 {
        return;
    }
    let remainder = n as u64 - allocated;
    let len = procs.len() as u64;
    let per = (remainder / len) as u32;
    let extra = (remainder % len) as usize;
    for (i, p) in procs.iter_mut().enumerate() {
        *p = p.saturating_add(per).saturating_add(u32::from(i < extra));
    }
}

/// Walk entries in `(cost, id)` order, assigning processes greedily until
/// `n` are covered; shared by the heap and the bucketed paths.
struct GreedyTake {
    nodes: Vec<NodeId>,
    procs: Vec<u32>,
    allocated: u64,
    n: u64,
}

impl GreedyTake {
    fn new(n: u32) -> Self {
        GreedyTake {
            nodes: Vec::new(),
            procs: Vec::new(),
            allocated: 0,
            n: n as u64,
        }
    }

    fn satisfied(&self) -> bool {
        self.allocated >= self.n
    }

    /// Offer the next-cheapest node; returns `false` once the request is
    /// covered and the walk can stop.
    fn offer(&mut self, node: NodeId, pc: u32) -> bool {
        if self.satisfied() {
            return false;
        }
        let take = (pc as u64).min(self.n - self.allocated) as u32;
        if take > 0 {
            self.nodes.push(node);
            self.procs.push(take);
            self.allocated += take as u64;
        }
        !self.satisfied()
    }

    fn finish(mut self, start: NodeId, n: u32) -> Candidate {
        distribute_remainder(&mut self.procs, self.allocated, n);
        Candidate {
            start,
            nodes: self.nodes,
            procs: self.procs,
        }
    }
}

/// Generate the candidate sub-graph for start node `v` (Algorithm 1).
///
/// `n` is the requested process count. Ties in `A_v(u)` break by node id so
/// candidate generation is deterministic. Internally a bounded partial
/// selection: the addition costs are heapified in O(V) and popped only
/// until `n` processes are covered, instead of fully sorting all V costs.
pub fn generate_candidate(loads: &Loads, v: NodeId, n: u32, alpha: f64, beta: f64) -> Candidate {
    debug_assert!(loads.index(v).is_some(), "start node must be usable");
    // addition cost per usable node; A_v(v) = 0 so v always joins first
    let entries: Vec<Reverse<CostEntry>> = loads
        .usable
        .iter()
        .map(|&u| {
            let cost = if u == v {
                0.0
            } else {
                alpha * loads.cl_of(u) + beta * loads.nl_between(v, u)
            };
            Reverse(CostEntry { cost, node: u })
        })
        .collect();
    let mut heap = BinaryHeap::from(entries);
    let mut take = GreedyTake::new(n);
    while let Some(Reverse(e)) = heap.pop() {
        if !take.offer(e.node, loads.pc_of(e.node)) {
            break;
        }
    }
    take.finish(v, n)
}

/// All candidates, one per usable start node (§3.3.2: "we find candidate
/// sub-graph corresponding to each node in the graph"), in `loads.usable`
/// order. Candidates that could not place a single process (zero-capacity
/// universe) are dropped; an empty return therefore means the request is
/// unsatisfiable.
///
/// Start nodes are evaluated on worker threads with a deterministic
/// reduction (outputs keep input order), and a tiered network-load
/// representation switches to bucketed per-switch generation — both paths
/// produce byte-identical candidates to the serial dense path.
pub fn generate_all_candidates(loads: &Loads, n: u32, alpha: f64, beta: f64) -> Vec<Candidate> {
    let cands: Vec<Candidate> = match loads.nl.as_tiered() {
        Some(t) => generate_all_tiered(loads, t, n, alpha, beta),
        None => par::par_map(&loads.usable, |&v| {
            generate_candidate(loads, v, n, alpha, beta)
        }),
    };
    cands
        .into_iter()
        .filter(|c| c.total_procs() as u64 >= n as u64)
        .collect()
}

/// Per-switch streams of usable nodes with spare capacity, pre-sorted by
/// `(CL, id)` — the order any *foreign* start node visits them in, since
/// the tiered `NL(v, u)` term is constant across a foreign switch.
pub(crate) struct TieredBuckets<'a> {
    t: &'a TieredNl,
    alpha: f64,
    beta: f64,
    n: u32,
    /// `(cl, pc, node)` per switch, sorted ascending by `(cl, id)`.
    streams: Vec<Vec<(f64, u32, NodeId)>>,
    /// Switches with at least one stream entry.
    nonempty: Vec<u32>,
}

/// Where the next merge item comes from.
#[derive(Clone, Copy)]
enum Src {
    /// Position in the start's own-switch exact list.
    Own(usize),
    /// `(index into the stream order, position within that stream)`.
    Stream(usize, usize),
}

struct MergeItem {
    cost: f64,
    node: NodeId,
    src: Src,
}

impl PartialEq for MergeItem {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for MergeItem {}
impl Ord for MergeItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .total_cmp(&other.cost)
            .then(self.node.cmp(&other.node))
    }
}
impl PartialOrd for MergeItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> TieredBuckets<'a> {
    pub(crate) fn build(
        loads: &'a Loads,
        t: &'a TieredNl,
        n: u32,
        alpha: f64,
        beta: f64,
    ) -> TieredBuckets<'a> {
        let mut streams: Vec<Vec<(f64, u32, NodeId)>> = vec![Vec::new(); t.num_switches()];
        for (i, &node) in loads.usable.iter().enumerate() {
            if loads.pc[i] == 0 {
                continue;
            }
            streams[t.switch_of_node(node) as usize].push((loads.cl[i], loads.pc[i], node));
        }
        // sort by (α·CL, id) — the merge key is α·CL + const(switch), so
        // this is merge order; ties in α·CL (notably the whole stream when
        // α = 0) fall back to id order, matching the dense sort exactly
        for s in &mut streams {
            s.sort_by(|a, b| (alpha * a.0).total_cmp(&(alpha * b.0)).then(a.2.cmp(&b.2)));
        }
        let nonempty: Vec<u32> = (0..streams.len() as u32)
            .filter(|&s| !streams[s as usize].is_empty())
            .collect();
        TieredBuckets {
            t,
            alpha,
            beta,
            n,
            streams,
            nonempty,
        }
    }

    /// The `(cost, id)` key of element `pos` of switch `s`'s stream, as a
    /// start node on switch `sv` sees it. Computed with the exact same
    /// float expression as the dense path so merge order is bit-identical.
    fn stream_key(&self, sv: u32, s: u32, pos: usize) -> (f64, NodeId) {
        let (cl, _, node) = self.streams[s as usize][pos];
        (
            self.alpha * cl + self.beta * self.t.inter_value(sv, s),
            node,
        )
    }

    /// Foreign nonempty switches ordered by their head key for start
    /// switch `sv` — shared by every start node on `sv`.
    pub(crate) fn stream_order(&self, sv: u32) -> Vec<u32> {
        let mut order: Vec<u32> = self.nonempty.iter().copied().filter(|&s| s != sv).collect();
        order.sort_by(|&a, &b| {
            let ka = self.stream_key(sv, a, 0);
            let kb = self.stream_key(sv, b, 0);
            ka.0.total_cmp(&kb.0).then(ka.1.cmp(&kb.1))
        });
        order
    }

    /// Generate the candidate for start `v` by lazily merging its own
    /// switch's exact costs with the foreign per-switch streams. Only
    /// streams whose head can still compete are ever touched, so covering
    /// `k` processes costs O(m log m + (k + touched) log (k + touched))
    /// rather than O(V log V).
    ///
    /// Streams are sorted by `(α·CL, id)` while the merge order is
    /// `(cost, id)` with `cost = α·CL + const` — equal costs (the whole
    /// stream when α = 0, or rounding collisions after adding the offset)
    /// can hide an id inversion behind the stream head. Entire equal-cost
    /// *runs* are therefore pushed together (runs are contiguous because
    /// cost is monotone in α·CL), letting the heap order ties by id
    /// exactly as the dense sort does.
    pub(crate) fn generate_for(&self, v: NodeId, order: &[u32]) -> Candidate {
        let sv = self.t.switch_of_node(v);
        // exact addition costs within the start's own switch
        let mut own: Vec<(f64, NodeId, u32)> = self.streams[sv as usize]
            .iter()
            .map(|&(cl, pc, u)| {
                let cost = if u == v {
                    0.0
                } else {
                    self.alpha * cl + self.beta * self.t.get(v, u)
                };
                (cost, u, pc)
            })
            .collect();
        own.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut heap: BinaryHeap<Reverse<MergeItem>> = BinaryHeap::new();
        if let Some(&(cost, node, _)) = own.first() {
            heap.push(Reverse(MergeItem {
                cost,
                node,
                src: Src::Own(0),
            }));
        }
        // per seeded stream: next unpushed position and in-heap item count
        let mut cursor = vec![0usize; order.len()];
        let mut outstanding = vec![0usize; order.len()];
        let push_run = |oi: usize,
                        heap: &mut BinaryHeap<Reverse<MergeItem>>,
                        cursor: &mut [usize],
                        outstanding: &mut [usize]| {
            let s = order[oi];
            let len = self.streams[s as usize].len();
            let start = cursor[oi];
            if start >= len {
                return;
            }
            let (run_cost, _) = self.stream_key(sv, s, start);
            let mut pos = start;
            while pos < len {
                let (cost, node) = self.stream_key(sv, s, pos);
                if cost.total_cmp(&run_cost) != std::cmp::Ordering::Equal {
                    break;
                }
                heap.push(Reverse(MergeItem {
                    cost,
                    node,
                    src: Src::Stream(oi, pos),
                }));
                pos += 1;
            }
            outstanding[oi] = pos - start;
            cursor[oi] = pos;
        };
        let mut next_stream = 0usize;
        let mut take = GreedyTake::new(self.n);
        loop {
            // seed every unseeded stream whose head cost can still compete;
            // seeding on cost *ties* guarantees the heap holds every item
            // that could beat its min on the id tie-break
            while next_stream < order.len() {
                let s = order[next_stream];
                let (cost, _) = self.stream_key(sv, s, 0);
                let must_seed = match heap.peek() {
                    None => true,
                    Some(Reverse(min)) => cost.total_cmp(&min.cost) != std::cmp::Ordering::Greater,
                };
                if !must_seed {
                    break;
                }
                push_run(next_stream, &mut heap, &mut cursor, &mut outstanding);
                next_stream += 1;
            }
            let Some(Reverse(item)) = heap.pop() else {
                break;
            };
            let pc = match item.src {
                Src::Own(pos) => own[pos].2,
                Src::Stream(oi, pos) => self.streams[order[oi] as usize][pos].1,
            };
            let more = take.offer(item.node, pc);
            if !more {
                break;
            }
            // advance the popped source
            match item.src {
                Src::Own(pos) => {
                    if let Some(&(cost, node, _)) = own.get(pos + 1) {
                        heap.push(Reverse(MergeItem {
                            cost,
                            node,
                            src: Src::Own(pos + 1),
                        }));
                    }
                }
                Src::Stream(oi, _) => {
                    outstanding[oi] -= 1;
                    if outstanding[oi] == 0 {
                        push_run(oi, &mut heap, &mut cursor, &mut outstanding);
                    }
                }
            }
        }
        take.finish(v, self.n)
    }
}

/// Bucketed generation over a tiered representation: group start nodes by
/// switch, compute the shared foreign-stream order once per switch, and fan
/// switches out across workers. Output is in `loads.usable` order.
fn generate_all_tiered(
    loads: &Loads,
    t: &TieredNl,
    n: u32,
    alpha: f64,
    beta: f64,
) -> Vec<Candidate> {
    let buckets = TieredBuckets::build(loads, t, n, alpha, beta);
    // group usable positions by start switch
    let mut by_switch: Vec<Vec<usize>> = vec![Vec::new(); t.num_switches()];
    for (i, &v) in loads.usable.iter().enumerate() {
        by_switch[t.switch_of_node(v) as usize].push(i);
    }
    let active: Vec<u32> = (0..t.num_switches() as u32)
        .filter(|&s| !by_switch[s as usize].is_empty())
        .collect();
    let per_switch: Vec<Vec<(usize, Candidate)>> = par::par_map(&active, |&sv| {
        let order = buckets.stream_order(sv);
        by_switch[sv as usize]
            .iter()
            .map(|&i| (i, buckets.generate_for(loads.usable[i], &order)))
            .collect()
    });
    let mut out: Vec<Option<Candidate>> = (0..loads.usable.len()).map(|_| None).collect();
    for group in per_switch {
        for (i, cand) in group {
            out[i] = Some(cand);
        }
    }
    out.into_iter()
        .map(|c| c.expect("every start generated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loads::Loads;
    use crate::weights::{ComputeWeights, NetworkWeights};
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn loads(n_nodes: usize, seed: u64, ppn: Option<u32>) -> Loads {
        let mut cluster = small_cluster(n_nodes, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            ppn,
        )
        .unwrap()
    }

    /// The original full-sort Algorithm 1, kept as the test oracle for the
    /// bounded-heap and bucketed paths.
    fn generate_candidate_reference(
        loads: &Loads,
        v: NodeId,
        n: u32,
        alpha: f64,
        beta: f64,
    ) -> Candidate {
        let mut order: Vec<(f64, NodeId)> = loads
            .usable
            .iter()
            .map(|&u| {
                let cost = if u == v {
                    0.0
                } else {
                    alpha * loads.cl_of(u) + beta * loads.nl_between(v, u)
                };
                (cost, u)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut take = GreedyTake::new(n);
        for &(_, u) in &order {
            if !take.offer(u, loads.pc_of(u)) {
                break;
            }
        }
        take.finish(v, n)
    }

    #[test]
    fn candidate_satisfies_request_exactly() {
        let l = loads(8, 3, Some(4));
        let c = generate_candidate(&l, l.usable[0], 16, 0.3, 0.7);
        assert_eq!(c.total_procs(), 16);
        assert_eq!(c.nodes.len(), 4); // 16 procs / 4 ppn
        assert_eq!(c.start, l.usable[0]);
        assert_eq!(c.nodes[0], c.start, "start node joins first");
    }

    #[test]
    fn last_node_gets_partial_count() {
        let l = loads(8, 3, Some(4));
        let c = generate_candidate(&l, l.usable[0], 10, 0.3, 0.7);
        assert_eq!(c.total_procs(), 10);
        assert_eq!(c.procs, vec![4, 4, 2]);
    }

    #[test]
    fn oversubscription_round_robins() {
        // 4 nodes × 4 ppn = 16 capacity, ask for 21
        let l = loads(4, 3, Some(4));
        let c = generate_candidate(&l, l.usable[0], 21, 0.3, 0.7);
        assert_eq!(c.total_procs(), 21);
        assert_eq!(c.nodes.len(), 4);
        // round-robin: first gets 2 extra... 16 + 5 → procs [6, 6, 5, 4]? No:
        // base [4,4,4,4], remainder 5 distributed 0,1,2,3,0 → [6,5,5,5]
        assert_eq!(c.procs, vec![6, 5, 5, 5]);
    }

    #[test]
    fn huge_oversubscription_near_u32_max_is_fast_and_exact() {
        // Regression: the remainder used to be distributed one process per
        // loop iteration, so a request near u32::MAX on a 4-node cluster
        // would spin ~4 billion times; the counts are now computed
        // arithmetically with saturating adds.
        let l = loads(4, 3, Some(4));
        let n = u32::MAX - 7;
        let c = generate_candidate(&l, l.usable[0], n, 0.3, 0.7);
        assert_eq!(c.total_procs() as u64, n as u64);
        assert_eq!(c.procs.iter().map(|&p| p as u64).sum::<u64>(), n as u64);
        // balanced round-robin: counts differ by at most one
        let max = *c.procs.iter().max().unwrap() as u64;
        let min = *c.procs.iter().min().unwrap() as u64;
        assert!(max - min <= 1, "unbalanced: {:?}", c.procs);
    }

    #[test]
    fn single_node_cluster_takes_full_u32_request() {
        let l = Loads::from_parts(
            vec![NodeId(0)],
            vec![0.5],
            nlrm_monitor::SymMatrix::new(1, 0.0),
            vec![4],
        );
        let c = generate_candidate(&l, NodeId(0), u32::MAX, 0.3, 0.7);
        assert_eq!(c.nodes.len(), 1);
        assert_eq!(c.procs, vec![u32::MAX]);
    }

    #[test]
    fn heap_path_matches_full_sort_reference() {
        for seed in [3, 5, 9, 11] {
            let l = loads(10, seed, Some(4));
            for &v in &l.usable {
                for n in [1, 7, 16, 40, 100] {
                    let heap = generate_candidate(&l, v, n, 0.3, 0.7);
                    let reference = generate_candidate_reference(&l, v, n, 0.3, 0.7);
                    assert_eq!(heap, reference, "seed {seed} start {v} n {n}");
                }
            }
        }
    }

    #[test]
    fn nodes_are_distinct() {
        let l = loads(10, 9, Some(4));
        for &v in &l.usable {
            let c = generate_candidate(&l, v, 24, 0.5, 0.5);
            let mut seen = c.nodes.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), c.nodes.len());
        }
    }

    #[test]
    fn alpha_one_ignores_network() {
        // with β = 0, order after the start node is purely by CL
        let l = loads(8, 5, Some(4));
        let c = generate_candidate(&l, l.usable[0], 32, 1.0, 0.0);
        let tail = &c.nodes[1..];
        for w in tail.windows(2) {
            let a = l.cl_of(w[0]);
            let b = l.cl_of(w[1]);
            assert!(
                a <= b + 1e-12,
                "CL must be non-decreasing after start: {a} > {b}"
            );
        }
    }

    #[test]
    fn all_candidates_cover_every_start() {
        let l = loads(6, 5, Some(4));
        let cands = generate_all_candidates(&l, 8, 0.3, 0.7);
        assert_eq!(cands.len(), 6);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.start, l.usable[i]);
            assert_eq!(c.total_procs(), 8);
        }
    }

    #[test]
    fn zero_capacity_universe_yields_no_candidates() {
        // Regression: a cluster where every usable node has pc = 0 used to
        // produce empty candidates that satisfied 0 of n processes yet
        // could still win selection.
        let l = loads(5, 7, Some(4));
        let starved = Loads::from_parts(
            l.usable.clone(),
            l.cl.clone(),
            l.nl.clone(),
            vec![0; l.usable.len()],
        );
        let cands = generate_all_candidates(&starved, 8, 0.3, 0.7);
        assert!(cands.is_empty(), "empty candidates must be filtered");
        // a lone empty candidate from the single-start API is visible too
        let c = generate_candidate(&starved, starved.usable[0], 8, 0.3, 0.7);
        assert_eq!(c.total_procs(), 0);
        assert!(c.nodes.is_empty());
    }

    #[test]
    fn effective_pc_limits_without_ppn() {
        let l = loads(8, 3, None);
        let c = generate_candidate(&l, l.usable[0], 16, 0.3, 0.7);
        for (&node, &p) in c.nodes.iter().zip(&c.procs) {
            assert!(p <= l.pc_of(node), "node {node} got {p} > pc");
        }
    }
}
