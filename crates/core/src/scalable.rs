//! Fused, bound-pruned allocation: Algorithms 1 and 2 in one pass with
//! early exit over start nodes.
//!
//! Algorithm 2's Eq. 4 normalizes each candidate by sums *over the candidate
//! set*, so a candidate's score is unknowable until every candidate exists —
//! pruning under that objective is unsound. This module therefore scores
//! groups with the *globally* normalized
//! [`group_cost`](crate::select::group_cost) (`α·C_G/C_all + β·N_G/N_all`),
//! whose denominators are fixed by the universe. The global denominators
//! are constants, so a candidate's rank no longer depends on which other
//! candidates happen to exist — though it is *not* always the Eq. 4 rank:
//! Eq. 4's compute and network terms are rescaled by candidate-set sums
//! whose ratio varies per set, so the two rankings can diverge when both
//! α and β are nonzero. The pruned path deliberately adopts the globally
//! normalized objective (set-independent, hence prunable) and reproduces
//! *its* exhaustive ranking exactly — and a per-start *lower bound* on
//! `group_cost` becomes possible before generating the candidate:
//!
//! * **Compute term** — any group from start `v` contains `v` (when `v` has
//!   capacity) and must cover `min(n, capacity)` processes, so
//!   `C_G ≥ max(CL_v, fmin)` where `fmin` is the fractional-knapsack minimum
//!   of `Σ CL` over nodes whose `pc` sums to the demand (density order,
//!   prefix sums, O(log V) per query).
//! * **Network term** — a group of `g ≥ g_min` nodes has at least `g_min−1`
//!   edges incident to `v`, each `≥ min_u NL(v,u)`; `g_min` follows from
//!   `pc_max`. For a zero-capacity start (not itself in the group) the
//!   global minimum incident load bounds instead.
//!
//! Start nodes are visited in ascending bound order; once a bound strictly
//! exceeds the incumbent's cost, every remaining start is pruned. The
//! incumbent comparison is `(cost, start id)` — the same tie-break as
//! [`select_best`](crate::select::select_best) — so the pruned winner is
//! *identical* to exhaustively scoring every candidate under `group_cost`
//! (a property the tests assert).

use crate::candidate::{generate_candidate, Candidate, TieredBuckets};
use crate::loads::Loads;
use crate::select::group_cost;
use nlrm_topology::NodeId;
use std::collections::HashMap;

/// Histogram bucket bounds for allocation decision latency, in seconds.
pub const DECISION_SECONDS_BOUNDS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Outcome of a fused, pruned allocation pass.
#[derive(Debug, Clone)]
pub struct PrunedSelection {
    /// The winning candidate (same winner as exhaustive scoring).
    pub winner: Candidate,
    /// Globally normalized cost of the winner.
    pub cost: f64,
    /// Start nodes whose candidate was actually generated and scored.
    pub expanded: usize,
    /// Start nodes skipped because their lower bound could not win.
    pub pruned: usize,
}

/// Fractional-knapsack lower bound on `Σ CL` needed to cover `p` processes:
/// nodes sorted by `CL/pc` density, prefix sums, partial last node.
struct FracMin {
    /// `pc_cum[i]` = Σ pc of the `i` densest-first entries.
    pc_cum: Vec<u64>,
    /// `cl_cum[i]` = Σ CL of the `i` densest-first entries.
    cl_cum: Vec<f64>,
    /// `CL/pc` of entry `i`.
    density: Vec<f64>,
}

impl FracMin {
    fn build(loads: &Loads) -> FracMin {
        let mut entries: Vec<(f64, u32)> = loads
            .cl
            .iter()
            .zip(&loads.pc)
            .filter(|&(_, &pc)| pc > 0)
            .map(|(&cl, &pc)| (cl, pc))
            .collect();
        entries.sort_by(|a, b| {
            let da = a.0 / a.1 as f64;
            let db = b.0 / b.1 as f64;
            da.total_cmp(&db)
        });
        let mut pc_cum = vec![0u64];
        let mut cl_cum = vec![0.0f64];
        let mut density = Vec::with_capacity(entries.len());
        for &(cl, pc) in &entries {
            pc_cum.push(pc_cum.last().unwrap() + pc as u64);
            cl_cum.push(cl_cum.last().unwrap() + cl);
            density.push(cl / pc as f64);
        }
        FracMin {
            pc_cum,
            cl_cum,
            density,
        }
    }

    /// Minimum fractional `Σ CL` covering `p` processes (clamped to the
    /// total capacity).
    fn query(&self, p: u64) -> f64 {
        if p == 0 || self.density.is_empty() {
            return 0.0;
        }
        let total = *self.pc_cum.last().unwrap();
        if p >= total {
            return *self.cl_cum.last().unwrap();
        }
        // first prefix index whose cumulative pc reaches p
        let i = self.pc_cum.partition_point(|&c| c < p);
        debug_assert!(i >= 1);
        self.cl_cum[i - 1] + (p - self.pc_cum[i - 1]) as f64 * self.density[i - 1]
    }
}

/// Allocate for `n` processes with bound-sorted start-node pruning.
///
/// Returns `None` when no candidate can place a single process (zero
/// total capacity) or `n == 0`. Otherwise the winner, its cost, and how
/// many starts were expanded vs pruned.
pub fn allocate_pruned(loads: &Loads, n: u32, alpha: f64, beta: f64) -> Option<PrunedSelection> {
    let started = std::time::Instant::now();
    let result = allocate_pruned_inner(loads, n, alpha, beta);
    nlrm_obs::ctx::observe(
        "alloc_decision_seconds",
        DECISION_SECONDS_BOUNDS,
        started.elapsed().as_secs_f64(),
    );
    result
}

fn allocate_pruned_inner(loads: &Loads, n: u32, alpha: f64, beta: f64) -> Option<PrunedSelection> {
    if n == 0 || loads.usable.is_empty() {
        return None;
    }
    let cap = loads.total_capacity();
    if cap == 0 {
        return None;
    }
    let c_all = loads.total_compute_load();
    let n_all = loads.total_network_load();
    let neff = (n as u64).min(cap);
    let frac = FracMin::build(loads);
    let fmin_neff = frac.query(neff);
    let npos = loads.pc.iter().filter(|&&pc| pc > 0).count() as u64;
    let pc_max = loads.pc.iter().copied().max().unwrap_or(0) as u64;
    debug_assert!(pc_max > 0);
    let min_inc = loads.nl.min_incident(&loads.usable);
    let global_min_inc = min_inc.iter().copied().fold(f64::INFINITY, f64::min);

    // lower bound on group_cost for every start, before generating anything
    let bound_of = |i: usize| -> f64 {
        let pc_v = loads.pc[i] as u64;
        let lb_c = if pc_v > 0 {
            fmin_neff.max(loads.cl[i])
        } else {
            fmin_neff
        };
        let g_min = if pc_v > 0 {
            (1 + (n as u64).saturating_sub(pc_v).div_ceil(pc_max)).min(npos)
        } else {
            (n as u64).div_ceil(pc_max).min(npos)
        };
        // a group of g nodes is a clique: g−1 edges at v (each ≥ v's
        // minimum incident load) plus C(g−1, 2) edges among the rest
        // (each ≥ the global minimum pair load); both terms grow with g,
        // so evaluating at g_min keeps the bound valid
        let pairs = |k: u64| (k * k.saturating_sub(1) / 2) as f64;
        let lb_n = if g_min >= 2 {
            let rest = if global_min_inc.is_finite() {
                global_min_inc
            } else {
                0.0
            };
            if pc_v > 0 && min_inc[i].is_finite() {
                (g_min - 1) as f64 * min_inc[i] + pairs(g_min - 1) * rest
            } else {
                pairs(g_min) * rest
            }
        } else {
            0.0
        };
        let c_term = if c_all > 0.0 { lb_c / c_all } else { 0.0 };
        let n_term = if n_all > 0.0 { lb_n / n_all } else { 0.0 };
        alpha * c_term + beta * n_term
    };
    let mut order: Vec<(f64, usize)> = (0..loads.usable.len()).map(|i| (bound_of(i), i)).collect();
    order.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(loads.usable[a.1].cmp(&loads.usable[b.1]))
    });

    // lazy tiered generation context: stream orders computed once per
    // start switch actually expanded
    let buckets = loads
        .nl
        .as_tiered()
        .map(|t| TieredBuckets::build(loads, t, n, alpha, beta));
    let mut switch_orders: HashMap<u32, Vec<u32>> = HashMap::new();
    let generate = |v: NodeId, switch_orders: &mut HashMap<u32, Vec<u32>>| -> Candidate {
        match &buckets {
            Some(b) => {
                let t = loads.nl.as_tiered().expect("buckets imply tiered");
                let sv = t.switch_of_node(v);
                let order = switch_orders
                    .entry(sv)
                    .or_insert_with(|| b.stream_order(sv));
                b.generate_for(v, order)
            }
            None => generate_candidate(loads, v, n, alpha, beta),
        }
    };

    let mut best: Option<(f64, NodeId, Candidate)> = None;
    let mut expanded = 0usize;
    let mut pruned = 0usize;
    for &(bound, i) in &order {
        if let Some((best_cost, _, _)) = &best {
            // bounds ascend, so the first hopeless bound prunes the rest;
            // a bound *equal* to the incumbent must still expand — its
            // candidate could tie on cost and win on start id
            if bound > *best_cost {
                pruned = order.len() - expanded;
                break;
            }
        }
        let v = loads.usable[i];
        let cand = generate(v, &mut switch_orders);
        expanded += 1;
        if (cand.total_procs() as u64) < n as u64 {
            continue; // zero-capacity start universe; cannot satisfy
        }
        let cost = group_cost(loads, &cand.nodes, alpha, beta);
        let better = match &best {
            None => true,
            Some((bc, bs, _)) => cost.total_cmp(bc).then(v.cmp(bs)) == std::cmp::Ordering::Less,
        };
        if better {
            best = Some((cost, v, cand));
        }
    }
    best.map(|(cost, _, winner)| PrunedSelection {
        winner,
        cost,
        expanded,
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::generate_all_candidates;
    use crate::loads::Loads;
    use crate::weights::{ComputeWeights, NetworkWeights};
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn loads(n_nodes: usize, seed: u64) -> Loads {
        let mut cluster = small_cluster(n_nodes, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
        )
        .unwrap()
    }

    /// Exhaustive winner under the same `(group_cost, start id)` order the
    /// pruned path claims to reproduce.
    fn exhaustive_winner(l: &Loads, n: u32, alpha: f64, beta: f64) -> Option<(f64, NodeId)> {
        let cands = generate_all_candidates(l, n, alpha, beta);
        cands
            .iter()
            .map(|c| (group_cost(l, &c.nodes, alpha, beta), c.start))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    #[test]
    fn pruned_winner_matches_exhaustive_dense() {
        for seed in [3, 5, 7, 11, 13] {
            let l = loads(12, seed);
            for n in [1, 4, 9, 24, 48, 200] {
                for &(a, b) in &[(0.3, 0.7), (1.0, 0.0), (0.0, 1.0), (0.5, 0.5)] {
                    let want = exhaustive_winner(&l, n, a, b).unwrap();
                    let got = allocate_pruned(&l, n, a, b).unwrap();
                    assert_eq!(
                        (got.cost, got.winner.start),
                        want,
                        "seed {seed} n {n} α {a} β {b}"
                    );
                    assert_eq!(
                        got.expanded + got.pruned,
                        l.usable.len(),
                        "every start is either expanded or pruned"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_winner_matches_exhaustive_tiered() {
        let l = loads(12, 5);
        let cluster = small_cluster(12, 5);
        let idx = cluster.topology().switch_index();
        let tiered = l.clone().into_tiered(&idx);
        for n in [1, 6, 20, 60] {
            let want = exhaustive_winner(&tiered, n, 0.3, 0.7).unwrap();
            let got = allocate_pruned(&tiered, n, 0.3, 0.7).unwrap();
            assert_eq!((got.cost, got.winner.start), want, "n {n}");
        }
    }

    #[test]
    fn zero_capacity_returns_none() {
        let l = loads(5, 7);
        let starved = Loads::from_parts(
            l.usable.clone(),
            l.cl.clone(),
            l.nl.clone(),
            vec![0; l.usable.len()],
        );
        assert!(allocate_pruned(&starved, 8, 0.3, 0.7).is_none());
        assert!(allocate_pruned(&l, 0, 0.3, 0.7).is_none());
    }

    #[test]
    fn bounds_actually_prune_on_skewed_clusters() {
        // On a cluster with spread-out compute loads and a small request,
        // most starts should be pruned without generation.
        let l = loads(24, 9);
        let got = allocate_pruned(&l, 4, 1.0, 0.0).unwrap();
        assert!(
            got.pruned > 0,
            "expected pruning with α=1 and a small request (expanded {})",
            got.expanded
        );
    }

    #[test]
    fn frac_min_is_a_valid_lower_bound() {
        let l = loads(10, 3);
        let frac = FracMin::build(&l);
        // any candidate's compute load is ≥ fmin of the procs it covers
        for n in [1u32, 5, 13, 40] {
            let cands = generate_all_candidates(&l, n, 0.3, 0.7);
            for c in &cands {
                let covered = (n as u64).min(l.total_capacity());
                let c_g: f64 = c.nodes.iter().map(|&u| l.cl_of(u)).sum();
                assert!(
                    frac.query(covered) <= c_g + 1e-9,
                    "fmin({covered}) = {} > C_G = {c_g}",
                    frac.query(covered)
                );
            }
        }
    }

    #[test]
    fn frac_min_monotone_and_clamped() {
        let l = loads(8, 5);
        let frac = FracMin::build(&l);
        let mut prev = 0.0;
        for p in 0..=(l.total_capacity() + 10) {
            let v = frac.query(p);
            assert!(v + 1e-12 >= prev, "fmin not monotone at {p}");
            prev = v;
        }
        let all: f64 =
            l.cl.iter()
                .zip(&l.pc)
                .filter(|&(_, &pc)| pc > 0)
                .map(|(&cl, _)| cl)
                .sum();
        assert!((frac.query(l.total_capacity() + 10) - all).abs() < 1e-9);
    }
}
