//! Algorithm 2: best-candidate selection via Eq. 4.
//!
//! Each candidate's total compute load `C_G = Σ CL_u` and total network load
//! `N_G = Σ NL over sub-graph edges` are normalized by the respective sums
//! over all candidates, then combined as `T_G = α·C_norm + β·N_norm`; the
//! minimum wins.

use crate::candidate::Candidate;
use crate::loads::Loads;
use crate::par;
use nlrm_obs::{ExplainTrace, GroupExplain};
use nlrm_topology::NodeId;

/// Histogram bucket bounds for candidate-set size.
const CANDIDATE_COUNT_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Total compute load of a group: `C_G = Σ_{u ∈ G} CL_u`.
pub fn group_compute_load(loads: &Loads, nodes: &[NodeId]) -> f64 {
    nodes.iter().map(|&u| loads.cl_of(u)).sum()
}

/// Total network load of a group: `N_G = Σ_{(x,y) ∈ E_G} NL_(x,y)` over all
/// node pairs of the (complete) sub-graph.
pub fn group_network_load(loads: &Loads, nodes: &[NodeId]) -> f64 {
    let mut sum = 0.0;
    for (i, &x) in nodes.iter().enumerate() {
        for &y in &nodes[i + 1..] {
            sum += loads.nl_between(x, y);
        }
    }
    sum
}

/// Mean pairwise network load of a group (paper §3.2.2: "we take the average
/// of network load between all pairs of nodes to compute the network load of
/// a group").
pub fn group_mean_network_load(loads: &Loads, nodes: &[NodeId]) -> f64 {
    let pairs = nodes.len() * nodes.len().saturating_sub(1) / 2;
    if pairs == 0 {
        0.0
    } else {
        group_network_load(loads, nodes) / pairs as f64
    }
}

/// A group's cost under a *globally* normalized variant of Eq. 4:
/// `α·C_G/C_all + β·N_G/N_all`, where the denominators are the totals over
/// the whole usable universe. Ranking-compatible with Algorithm 2 (which
/// divides by per-candidate-set constants) but well-defined for *any* group,
/// so the brute-force validator and ablations can score arbitrary subsets.
pub fn group_cost(loads: &Loads, nodes: &[NodeId], alpha: f64, beta: f64) -> f64 {
    let c_all = loads.total_compute_load();
    let n_all = loads.total_network_load();
    let c = group_compute_load(loads, nodes);
    let n = group_network_load(loads, nodes);
    let c_norm = if c_all > 0.0 { c / c_all } else { 0.0 };
    let n_norm = if n_all > 0.0 { n / n_all } else { 0.0 };
    alpha * c_norm + beta * n_norm
}

/// One candidate's Eq. 4 score, split into its weighted components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// The candidate's start node.
    pub start: NodeId,
    /// `α · C_G / ΣC` over the candidate set.
    pub compute_term: f64,
    /// `β · N_G / ΣN` over the candidate set.
    pub network_term: f64,
    /// `T_G = compute_term + network_term`.
    pub total: f64,
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Index of the winning candidate.
    pub best: usize,
    /// Eq. 4 cost of the winner.
    pub best_cost: f64,
    /// `(start node, T_G)` for every candidate, in input order.
    pub costs: Vec<(NodeId, f64)>,
    /// Component breakdown for every candidate, in input order.
    pub scores: Vec<CandidateScore>,
}

/// Select the candidate minimizing `T_G` (Algorithm 2). Ties break by the
/// candidate's start-node id (deterministic) — explicitly *not* by input
/// index, so callers may pass candidates in any order.
///
/// The O(g²) per-candidate load sums are evaluated on worker threads; the
/// normalization and arg-min run serially over the in-order results, so the
/// winner is byte-for-byte the serial one.
pub fn select_best(loads: &Loads, candidates: &[Candidate], alpha: f64, beta: f64) -> Selection {
    assert!(!candidates.is_empty(), "no candidates to select from");
    let cn: Vec<(f64, f64)> = par::par_map(candidates, |cand| {
        (
            group_compute_load(loads, &cand.nodes),
            group_network_load(loads, &cand.nodes),
        )
    });
    let c_sum: f64 = cn.iter().map(|&(c, _)| c).sum();
    let n_sum: f64 = cn.iter().map(|&(_, n)| n).sum();
    let scores: Vec<CandidateScore> = candidates
        .iter()
        .enumerate()
        .map(|(i, cand)| {
            let c_norm = if c_sum > 0.0 { cn[i].0 / c_sum } else { 0.0 };
            let n_norm = if n_sum > 0.0 { cn[i].1 / n_sum } else { 0.0 };
            let compute_term = alpha * c_norm;
            let network_term = beta * n_norm;
            CandidateScore {
                start: cand.start,
                compute_term,
                network_term,
                total: compute_term + network_term,
            }
        })
        .collect();
    let costs: Vec<(NodeId, f64)> = scores.iter().map(|s| (s.start, s.total)).collect();
    let best = costs
        .iter()
        .enumerate()
        .min_by(|(_, (start_a, total_a)), (_, (start_b, total_b))| {
            total_a.total_cmp(total_b).then(start_a.cmp(start_b))
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    nlrm_obs::ctx::observe(
        "alloc_candidate_groups",
        CANDIDATE_COUNT_BOUNDS,
        candidates.len() as f64,
    );
    Selection {
        best,
        best_cost: costs[best].1,
        costs,
        scores,
    }
}

/// Build an [`ExplainTrace`] for a completed selection: the `k` cheapest
/// candidate groups in rank order plus a verdict naming the cost component
/// that separated the winner from the runner-up. Ranking reproduces
/// `select_best`'s ordering exactly (ascending `T_G`, ties by start-node id).
pub fn explain_selection(
    candidates: &[Candidate],
    selection: &Selection,
    alpha: f64,
    beta: f64,
    k: usize,
) -> ExplainTrace {
    let mut order: Vec<usize> = (0..selection.scores.len()).collect();
    order.sort_by(|&a, &b| {
        selection.scores[a]
            .total
            .total_cmp(&selection.scores[b].total)
            .then(selection.scores[a].start.cmp(&selection.scores[b].start))
    });
    let top: Vec<GroupExplain> = order
        .iter()
        .take(k.max(1))
        .enumerate()
        .map(|(rank, &i)| {
            let s = &selection.scores[i];
            GroupExplain {
                rank: rank + 1,
                start: candidates[i].start,
                nodes: candidates[i].nodes.clone(),
                compute_term: s.compute_term,
                network_term: s.network_term,
                total: s.total,
            }
        })
        .collect();
    let margin = if order.len() >= 2 {
        selection.scores[order[1]].total - selection.scores[order[0]].total
    } else {
        0.0
    };
    let verdict = if order.len() < 2 {
        "only candidate group".to_string()
    } else {
        let w = &selection.scores[order[0]];
        let r = &selection.scores[order[1]];
        let dc = r.compute_term - w.compute_term;
        let dn = r.network_term - w.network_term;
        // relative comparison: an absolute `margin <= f64::EPSILON` misses
        // one-ulp ties whenever |T_G| is much larger than 1
        let scale = w.total.abs().max(r.total.abs());
        if margin <= 4.0 * f64::EPSILON * scale {
            "tie broken by candidate order".to_string()
        } else if dn > dc {
            format!("lower network load decided it (Δnetwork={dn:.4}, Δcompute={dc:.4})")
        } else {
            format!("lower compute load decided it (Δcompute={dc:.4}, Δnetwork={dn:.4})")
        }
    };
    ExplainTrace {
        alpha,
        beta,
        considered: candidates.len(),
        top,
        margin,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::generate_all_candidates;
    use crate::loads::Loads;
    use crate::weights::{ComputeWeights, NetworkWeights};
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn loads(n_nodes: usize, seed: u64) -> Loads {
        let mut cluster = small_cluster(n_nodes, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
        )
        .unwrap()
    }

    #[test]
    fn group_loads_accumulate() {
        let l = loads(6, 3);
        let nodes = [l.usable[0], l.usable[1], l.usable[2]];
        let c = group_compute_load(&l, &nodes);
        assert!((c - (l.cl_of(nodes[0]) + l.cl_of(nodes[1]) + l.cl_of(nodes[2]))).abs() < 1e-12);
        let n = group_network_load(&l, &nodes);
        let manual = l.nl_between(nodes[0], nodes[1])
            + l.nl_between(nodes[0], nodes[2])
            + l.nl_between(nodes[1], nodes[2]);
        assert!((n - manual).abs() < 1e-12);
        // mean = sum / 3 pairs
        assert!((group_mean_network_load(&l, &nodes) - manual / 3.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_group_has_zero_network_load() {
        let l = loads(4, 3);
        assert_eq!(group_network_load(&l, &[l.usable[0]]), 0.0);
        assert_eq!(group_mean_network_load(&l, &[l.usable[0]]), 0.0);
    }

    #[test]
    fn selection_minimizes_t() {
        let l = loads(8, 5);
        let cands = generate_all_candidates(&l, 12, 0.3, 0.7);
        let sel = select_best(&l, &cands, 0.3, 0.7);
        for (i, &(_, t)) in sel.costs.iter().enumerate() {
            assert!(sel.best_cost <= t + 1e-12, "candidate {i} beats winner");
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let l = loads(8, 5);
        let cands = generate_all_candidates(&l, 12, 0.3, 0.7);
        let a = select_best(&l, &cands, 0.3, 0.7);
        let b = select_best(&l, &cands, 0.3, 0.7);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn cached_totals_match_recomputation_and_preserve_rankings() {
        let l = loads(8, 5);
        // the cached totals equal a from-scratch walk of the universe
        let c_all: f64 = l.cl.iter().sum();
        let mut n_all = 0.0;
        for (i, &x) in l.usable.iter().enumerate() {
            for &y in &l.usable[i + 1..] {
                n_all += l.nl_between(x, y);
            }
        }
        assert!((l.total_compute_load() - c_all).abs() < 1e-12);
        assert!((l.total_network_load() - n_all).abs() < 1e-12);
        // and group_cost ranks candidates exactly as the explicit
        // (recompute-per-call) normalization did
        let cands = generate_all_candidates(&l, 12, 0.3, 0.7);
        assert!(cands.len() > 1);
        let explicit = |nodes: &[NodeId]| {
            let c = group_compute_load(&l, nodes);
            let n = group_network_load(&l, nodes);
            let c_norm = if c_all > 0.0 { c / c_all } else { 0.0 };
            let n_norm = if n_all > 0.0 { n / n_all } else { 0.0 };
            0.3 * c_norm + 0.7 * n_norm
        };
        let mut cached_order: Vec<usize> = (0..cands.len()).collect();
        cached_order.sort_by(|&a, &b| {
            group_cost(&l, &cands[a].nodes, 0.3, 0.7).total_cmp(&group_cost(
                &l,
                &cands[b].nodes,
                0.3,
                0.7,
            ))
        });
        let mut explicit_order: Vec<usize> = (0..cands.len()).collect();
        explicit_order
            .sort_by(|&a, &b| explicit(&cands[a].nodes).total_cmp(&explicit(&cands[b].nodes)));
        assert_eq!(cached_order, explicit_order, "rankings changed");
        for cand in &cands {
            let cost = group_cost(&l, &cand.nodes, 0.3, 0.7);
            assert!((cost - explicit(&cand.nodes)).abs() < 1e-12);
        }
    }

    #[test]
    fn tie_breaks_by_start_id_not_input_index() {
        // Regression: the documented contract is "ties break by the
        // candidate's start-node id". Feed three candidates with identical
        // node sets (hence exactly equal T_G) whose starts arrive in
        // non-id order; the one with the smallest start id must win.
        let l = loads(6, 3);
        let nodes: Vec<NodeId> = l.usable[..3].to_vec();
        let procs = vec![4u32; 3];
        let mk = |start: NodeId| Candidate {
            start,
            nodes: nodes.clone(),
            procs: procs.clone(),
        };
        let starts = [l.usable[4], l.usable[1], l.usable[5]];
        let cands = vec![mk(starts[0]), mk(starts[1]), mk(starts[2])];
        let sel = select_best(&l, &cands, 0.3, 0.7);
        assert_eq!(
            sel.best, 1,
            "smallest start id must win the tie (got start {})",
            cands[sel.best].start
        );
        // explain_selection must rank the same way
        let trace = explain_selection(&cands, &sel, 0.3, 0.7, 3);
        assert_eq!(trace.top[0].start, starts[1]);
        assert!(trace.verdict.contains("tie"), "verdict: {}", trace.verdict);
    }

    #[test]
    fn near_tie_at_large_magnitude_is_called_a_tie() {
        // Regression: the verdict used `margin <= f64::EPSILON` (absolute),
        // so two scores a few ulps apart at magnitude 1e12 were reported as
        // decisively separated. The comparison is now relative.
        let l = loads(4, 3);
        let mk = |start: NodeId| Candidate {
            start,
            nodes: vec![start],
            procs: vec![4],
        };
        let cands = vec![mk(l.usable[0]), mk(l.usable[1])];
        let big = 1.0e12;
        let ulps_apart = big * (1.0 + 2.0 * f64::EPSILON) - big; // a few ulps
        assert!(ulps_apart > f64::EPSILON, "margin must defeat absolute eps");
        let scores = vec![
            CandidateScore {
                start: l.usable[0],
                compute_term: big,
                network_term: 0.0,
                total: big,
            },
            CandidateScore {
                start: l.usable[1],
                compute_term: big,
                network_term: ulps_apart,
                total: big + ulps_apart,
            },
        ];
        let sel = Selection {
            best: 0,
            best_cost: big,
            costs: scores.iter().map(|s| (s.start, s.total)).collect(),
            scores,
        };
        let trace = explain_selection(&cands, &sel, 0.3, 0.7, 2);
        assert!(
            trace.verdict.contains("tie"),
            "a few-ulp margin at 1e12 must read as a tie, got: {}",
            trace.verdict
        );
    }

    #[test]
    fn global_cost_is_bounded_and_monotone() {
        let l = loads(8, 7);
        // whole universe costs exactly α + β = 1
        let all = l.usable.clone();
        assert!((group_cost(&l, &all, 0.3, 0.7) - 1.0).abs() < 1e-9);
        // growing a group never decreases its cost
        let mut prefix = Vec::new();
        let mut prev = 0.0;
        for &n in &l.usable {
            prefix.push(n);
            let cost = group_cost(&l, &prefix, 0.3, 0.7);
            assert!(cost + 1e-12 >= prev, "cost decreased when adding {n}");
            assert!((0.0..=1.0 + 1e-9).contains(&cost));
            prev = cost;
        }
    }
}
