//! Simple Additive Weighting (SAW) machinery (§3.2.1).
//!
//! The paper's recipe: "the attribute values of each node are normalized by
//! dividing the value by the sum of attribute values of all nodes. Then, we
//! convert all the attributes in unidirectional units … by complementing
//! (with respect to the maximum value) for attributes having maximization
//! criterion."

use serde::{Deserialize, Serialize};

/// Whether an attribute should be as large or as small as possible
/// (column 2 of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Larger values are better (complemented after normalization).
    Maximize,
    /// Smaller values are better.
    Minimize,
}

/// Sum-normalize a column: each value divided by the column sum.
///
/// A zero (or non-finite) sum yields all zeros — every node is identical on
/// that attribute, so it contributes nothing to the ranking.
pub fn normalize_sum(values: &[f64]) -> Vec<f64> {
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / sum).collect()
}

/// Make a normalized column unidirectional ("lower is better"): maximization
/// columns are complemented against their maximum.
pub fn unidirectional(normalized: &[f64], criterion: Criterion) -> Vec<f64> {
    match criterion {
        Criterion::Minimize => normalized.to_vec(),
        Criterion::Maximize => {
            let max = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if !max.is_finite() {
                return vec![0.0; normalized.len()];
            }
            normalized.iter().map(|v| max - v).collect()
        }
    }
}

/// One SAW column: raw values plus their optimization criterion.
#[derive(Debug, Clone)]
pub struct Column {
    /// Raw attribute values, one per node.
    pub values: Vec<f64>,
    /// Optimization direction.
    pub criterion: Criterion,
    /// Relative weight.
    pub weight: f64,
}

/// Full SAW score: `score_i = Σ_columns w_c · val'_{ic}` with each column
/// sum-normalized and made unidirectional. Lower is better.
pub fn saw_scores(columns: &[Column]) -> Vec<f64> {
    assert!(!columns.is_empty(), "SAW needs at least one column");
    let n = columns[0].values.len();
    let mut scores = vec![0.0; n];
    for col in columns {
        assert_eq!(col.values.len(), n, "ragged SAW columns");
        let prepared = unidirectional(&normalize_sum(&col.values), col.criterion);
        for (s, v) in scores.iter_mut().zip(prepared) {
            *s += col.weight * v;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sums_to_one() {
        let n = normalize_sum(&[1.0, 2.0, 3.0, 4.0]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_column_normalizes_to_zeros() {
        assert_eq!(normalize_sum(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn minimize_passes_through() {
        let col = normalize_sum(&[2.0, 8.0]);
        assert_eq!(unidirectional(&col, Criterion::Minimize), col);
    }

    #[test]
    fn maximize_flips_order() {
        let col = normalize_sum(&[2.0, 8.0]);
        let out = unidirectional(&col, Criterion::Maximize);
        // node with larger raw value now has *smaller* (better) score
        assert!(out[1] < out[0]);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn saw_prefers_obviously_better_node() {
        // node 0: low load, high freq. node 1: high load, low freq.
        let scores = saw_scores(&[
            Column {
                values: vec![0.1, 5.0],
                criterion: Criterion::Minimize,
                weight: 0.6,
            },
            Column {
                values: vec![4.6, 2.8],
                criterion: Criterion::Maximize,
                weight: 0.4,
            },
        ]);
        assert!(scores[0] < scores[1], "{scores:?}");
    }

    #[test]
    fn weights_scale_contribution() {
        let mk = |w1: f64, w2: f64| {
            saw_scores(&[
                Column {
                    values: vec![1.0, 3.0],
                    criterion: Criterion::Minimize,
                    weight: w1,
                },
                Column {
                    values: vec![3.0, 1.0],
                    criterion: Criterion::Minimize,
                    weight: w2,
                },
            ])
        };
        // equal weights: symmetric scores
        let eq = mk(0.5, 0.5);
        assert!((eq[0] - eq[1]).abs() < 1e-12);
        // weight on first column: node 0 wins
        let first = mk(0.9, 0.1);
        assert!(first[0] < first[1]);
    }

    #[test]
    fn identical_nodes_get_identical_scores() {
        let scores = saw_scores(&[Column {
            values: vec![2.0, 2.0, 2.0],
            criterion: Criterion::Minimize,
            weight: 1.0,
        }]);
        assert!(scores.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_panic() {
        saw_scores(&[
            Column {
                values: vec![1.0],
                criterion: Criterion::Minimize,
                weight: 1.0,
            },
            Column {
                values: vec![1.0, 2.0],
                criterion: Criterion::Minimize,
                weight: 1.0,
            },
        ]);
    }
}
