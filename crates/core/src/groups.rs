//! Switch-group scaling extension (paper §3.3.2).
//!
//! "Our solution may need to be adapted for larger scale by grouping the
//! nodes based on cluster topology and calculating inter-group bandwidth/
//! latency so that P2P bandwidth/latency calculation requires less amount
//! of communication."
//!
//! [`ScalableAllocator`] implements that adaptation: nodes are grouped by
//! the switch they attach to (static topology knowledge), aggregate group
//! statistics replace the O(V²) pair matrix for a coarse first pass, and the
//! exact Algorithms 1–2 run only on the nodes of the shortlisted groups.

use crate::loads::Loads;
use crate::policies::Policy;
use crate::request::{AllocError, Allocation, AllocationRequest, Diagnostics};
use crate::select::{explain_selection, group_mean_network_load, select_best};
use nlrm_monitor::ClusterSnapshot;
use nlrm_topology::{NodeId, Topology};
use std::collections::BTreeMap;

/// A topology-derived node group (one per switch in practice).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeGroup {
    /// Group index.
    pub id: usize,
    /// Member nodes.
    pub nodes: Vec<NodeId>,
    /// Mean compute load of the members.
    pub mean_cl: f64,
    /// Mean *intra-group* pairwise network load.
    pub mean_intra_nl: f64,
}

/// Group usable nodes by the switch they attach to. The paper's scaling
/// note groups "based on cluster topology", which is static administrative
/// knowledge — no measurement needed.
pub fn infer_groups(topo: &Topology, loads: &Loads) -> Vec<NodeGroup> {
    let mut by_switch: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    for &u in &loads.usable {
        by_switch.entry(topo.switch_of(u).0).or_default().push(u);
    }
    by_switch
        .into_values()
        .enumerate()
        .map(|(id, nodes)| {
            let mean_cl = nodes.iter().map(|&n| loads.cl_of(n)).sum::<f64>() / nodes.len() as f64;
            let mean_intra_nl = group_mean_network_load(loads, &nodes);
            NodeGroup {
                id,
                nodes,
                mean_cl,
                mean_intra_nl,
            }
        })
        .collect()
}

/// Mean network load between two groups (aggregate inter-group statistic).
pub fn inter_group_nl(loads: &Loads, a: &NodeGroup, b: &NodeGroup) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &u in &a.nodes {
        for &v in &b.nodes {
            sum += loads.nl_between(u, v);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Two-level allocator: coarse group shortlist, then exact Algorithms 1–2
/// on the shortlisted nodes only.
#[derive(Debug, Clone)]
pub struct ScalableAllocator {
    /// Run the plain (flat) algorithm when the usable universe is at most
    /// this large.
    pub flat_threshold: usize,
}

impl Default for ScalableAllocator {
    fn default() -> Self {
        ScalableAllocator {
            flat_threshold: 128,
        }
    }
}

impl ScalableAllocator {
    /// An allocator that switches to two-level mode above the default
    /// 128-node threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate with the two-level strategy. The topology is used only for
    /// static switch membership (the coarse grouping level).
    pub fn allocate(
        &self,
        topo: &Topology,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError> {
        req.validate()?;
        let loads = Loads::derive(snap, &req.compute_weights, &req.network_weights, req.ppn)?;
        if loads.usable.len() <= self.flat_threshold {
            return crate::policies::NetworkLoadAwarePolicy::new().allocate(snap, req);
        }

        // --- coarse pass over groups ---
        let groups = infer_groups(topo, &loads);
        // order groups by a group-level analogue of A_v: compute + intra-network
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by(|&a, &b| {
            let ca = req.alpha * groups[a].mean_cl + req.beta * groups[a].mean_intra_nl;
            let cb = req.alpha * groups[b].mean_cl + req.beta * groups[b].mean_intra_nl;
            ca.total_cmp(&cb).then(a.cmp(&b))
        });
        // shortlist enough groups to cover the request with headroom
        let mut shortlist: Vec<NodeId> = Vec::new();
        let mut capacity: u64 = 0;
        for &gi in &order {
            for &n in &groups[gi].nodes {
                shortlist.push(n);
                capacity += loads.pc_of(n) as u64;
            }
            if capacity >= 2 * req.procs as u64 && shortlist.len() >= 2 {
                break;
            }
        }
        shortlist.sort();

        // --- exact pass on the shortlist ---
        let sub_loads = loads_restricted(&loads, &shortlist);
        let candidates =
            crate::candidate::generate_all_candidates(&sub_loads, req.procs, req.alpha, req.beta);
        if candidates.is_empty() {
            return Err(crate::request::AllocError::NoCapacity);
        }
        let selection = select_best(&sub_loads, &candidates, req.alpha, req.beta);
        let winner = &candidates[selection.best];
        let selected = winner.nodes.clone();
        let mean_cl =
            selected.iter().map(|&u| sub_loads.cl_of(u)).sum::<f64>() / selected.len() as f64;
        Ok(Allocation {
            policy: "network-load-aware/scalable".into(),
            rank_map: Allocation::block_rank_map(&winner.assignment()),
            nodes: winner.assignment(),
            diagnostics: Diagnostics {
                total_cost: selection.best_cost,
                mean_compute_load: mean_cl,
                mean_network_load: group_mean_network_load(&sub_loads, &selected),
                explain: Some(explain_selection(
                    &candidates,
                    &selection,
                    req.alpha,
                    req.beta,
                    3,
                )),
                candidate_costs: selection.costs,
            },
        })
    }
}

/// Restrict a `Loads` to a subset of its usable nodes (network-load matrix
/// is shared; per-node arrays are filtered).
fn loads_restricted(loads: &Loads, subset: &[NodeId]) -> Loads {
    let keep: Vec<usize> = subset
        .iter()
        .map(|&n| loads.index(n).expect("subset must be usable"))
        .collect();
    let usable: Vec<NodeId> = subset.to_vec();
    let cl: Vec<f64> = keep.iter().map(|&i| loads.cl[i]).collect();
    let pc: Vec<u32> = keep.iter().map(|&i| loads.pc[i]).collect();
    Loads::from_parts(usable, cl, loads.nl.clone(), pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{NetworkLoadAwarePolicy, Policy};
    use nlrm_cluster::iitk::{iitk_cluster, small_cluster};
    use nlrm_cluster::{ClusterProfile, ClusterSim, NodeSpec};
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;
    use nlrm_topology::{LinkParams, Topology};

    fn snapshot_of(mut cluster: ClusterSim) -> (Topology, ClusterSnapshot) {
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        (cluster.topology().clone(), snap)
    }

    fn big_cluster(nodes_per_switch: usize, switches: usize, seed: u64) -> ClusterSim {
        let counts = vec![nodes_per_switch; switches];
        let topo =
            Topology::star_of_switches(&counts, LinkParams::gigabit(), LinkParams::gigabit());
        let n = nodes_per_switch * switches;
        let specs = (0..n)
            .map(|i| NodeSpec {
                hostname: format!("big{i}"),
                cores: 8,
                freq_ghz: 3.0,
                total_mem_gb: 16.0,
            })
            .collect();
        ClusterSim::new(topo, specs, ClusterProfile::shared_lab(), seed)
    }

    #[test]
    fn groups_follow_switches() {
        let (topo, snap) = snapshot_of(iitk_cluster(3));
        let loads = Loads::derive(
            &snap,
            &crate::weights::ComputeWeights::paper_default(),
            &crate::weights::NetworkWeights::paper_default(),
            Some(4),
        )
        .unwrap();
        let groups = infer_groups(&topo, &loads);
        assert_eq!(groups.len(), 4, "one group per switch");
        let sizes: Vec<usize> = groups.iter().map(|g| g.nodes.len()).collect();
        assert!(sizes.iter().all(|&s| s == 15), "sizes {sizes:?}");
    }

    #[test]
    fn small_cluster_uses_flat_path() {
        let (topo, snap) = snapshot_of(small_cluster(8, 5));
        let req = AllocationRequest::minimd(16);
        let scalable = ScalableAllocator::new()
            .allocate(&topo, &snap, &req)
            .unwrap();
        let flat = NetworkLoadAwarePolicy::new().allocate(&snap, &req).unwrap();
        assert_eq!(scalable.nodes, flat.nodes);
    }

    #[test]
    fn two_level_handles_large_cluster() {
        // 10 switches × 20 nodes = 200 > flat_threshold
        let (topo, snap) = snapshot_of(big_cluster(20, 10, 11));
        let req = AllocationRequest::minimd(32);
        let alloc = ScalableAllocator::new()
            .allocate(&topo, &snap, &req)
            .unwrap();
        assert_eq!(alloc.total_procs(), 32);
        assert_eq!(alloc.node_list().len(), 8);
        assert!(alloc.policy.contains("scalable"));
    }

    #[test]
    fn inter_group_nl_is_symmetric() {
        let (topo, snap) = snapshot_of(iitk_cluster(3));
        let loads = Loads::derive(
            &snap,
            &crate::weights::ComputeWeights::paper_default(),
            &crate::weights::NetworkWeights::paper_default(),
            Some(4),
        )
        .unwrap();
        let groups = infer_groups(&topo, &loads);
        let ab = inter_group_nl(&loads, &groups[0], &groups[1]);
        let ba = inter_group_nl(&loads, &groups[1], &groups[0]);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab >= 0.0);
    }
}
