//! The allocation policies compared in the paper's §5, plus a brute-force
//! optimum used to validate the greedy heuristic.
//!
//! * **random** — "randomly selects the required number of nodes from active
//!   nodes."
//! * **sequential** — "first selects a random node and adds neighboring
//!   nodes (topologically) as required", i.e. consecutive node numbers.
//! * **load-aware** — "selects the group of nodes with minimal load" (our
//!   Eq. 1 compute load, network ignored).
//! * **network-and-load-aware** — the contribution: Algorithms 1 + 2.

use crate::candidate::generate_all_candidates;
use crate::loads::Loads;
use crate::request::{AllocError, Allocation, AllocationRequest, Diagnostics};
use crate::select::{explain_selection, group_cost, group_mean_network_load, select_best};
use crate::weights::ComputeWeights;
use nlrm_monitor::ClusterSnapshot;
use nlrm_sim_core::rng::RngFactory;
use nlrm_topology::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// An allocation policy: snapshot + request → node group.
pub trait Policy {
    /// Short display name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Allocate nodes for `req` given the monitor's `snap`.
    fn allocate(
        &mut self,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError>;
}

/// Walk `order`, giving each node up to its `pc_v` processes, until `n` are
/// placed; leftover demand round-robins over the selected nodes (the same
/// overflow rule as Algorithm 1).
fn pack(loads: &Loads, order: &[NodeId], n: u32) -> Vec<(NodeId, u32)> {
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut procs: Vec<u32> = Vec::new();
    let mut allocated: u64 = 0;
    for &u in order {
        if allocated >= n as u64 {
            break;
        }
        let take = (loads.pc_of(u) as u64).min(n as u64 - allocated) as u32;
        if take == 0 {
            continue;
        }
        nodes.push(u);
        procs.push(take);
        allocated += take as u64;
    }
    if allocated < n as u64 && !nodes.is_empty() {
        let mut i = 0usize;
        while allocated < n as u64 {
            procs[i] += 1;
            allocated += 1;
            i = (i + 1) % nodes.len();
        }
    }
    nodes.into_iter().zip(procs).collect()
}

fn build_allocation(
    policy: &'static str,
    loads: &Loads,
    assignment: Vec<(NodeId, u32)>,
    extra: Diagnostics,
) -> Allocation {
    let selected: Vec<NodeId> = assignment.iter().map(|&(n, _)| n).collect();
    let mean_cl = if selected.is_empty() {
        0.0
    } else {
        selected.iter().map(|&u| loads.cl_of(u)).sum::<f64>() / selected.len() as f64
    };
    let rank_map = Allocation::block_rank_map(&assignment);
    Allocation {
        policy: policy.to_string(),
        nodes: assignment,
        rank_map,
        diagnostics: Diagnostics {
            mean_compute_load: mean_cl,
            mean_network_load: group_mean_network_load(loads, &selected),
            ..extra
        },
    }
}

fn derive(snap: &ClusterSnapshot, req: &AllocationRequest) -> Result<Loads, AllocError> {
    req.validate()?;
    Loads::derive(snap, &req.compute_weights, &req.network_weights, req.ppn)
}

/// The `random` baseline.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// A random policy with its own seeded RNG stream.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: RngFactory::new(seed).named("policy-random"),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn allocate(
        &mut self,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError> {
        let loads = derive(snap, req)?;
        let mut order = loads.usable.clone();
        order.shuffle(&mut self.rng);
        let assignment = pack(&loads, &order, req.procs);
        Ok(build_allocation(
            "random",
            &loads,
            assignment,
            Diagnostics::default(),
        ))
    }
}

/// The `sequential` baseline: a random start, then consecutive node numbers
/// (node numbering follows physical proximity, so this is "neighbouring
/// nodes topologically").
#[derive(Debug, Clone)]
pub struct SequentialPolicy {
    rng: StdRng,
}

impl SequentialPolicy {
    /// A sequential policy with its own seeded RNG stream.
    pub fn new(seed: u64) -> Self {
        SequentialPolicy {
            rng: RngFactory::new(seed).named("policy-sequential"),
        }
    }
}

impl Policy for SequentialPolicy {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn allocate(
        &mut self,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError> {
        let loads = derive(snap, req)?;
        let start = self.rng.gen_range(0..loads.usable.len());
        let mut order = loads.usable.clone();
        order.rotate_left(start);
        let assignment = pack(&loads, &order, req.procs);
        Ok(build_allocation(
            "sequential",
            &loads,
            assignment,
            Diagnostics::default(),
        ))
    }
}

/// The `load-aware` baseline: minimal compute load, network ignored.
///
/// Faithful to the paper's baseline: it looks only at CPU/memory pressure.
/// The node data-flow-rate attribute is zeroed out of the SAW weights
/// (its weight redistributed proportionally), because a flow-rate-aware
/// baseline would already be partially network-aware — the paper's Table 4
/// shows its load-aware groups had the *worst* bandwidth, i.e. no network
/// signal at all.
#[derive(Debug, Clone, Default)]
pub struct LoadAwarePolicy;

impl LoadAwarePolicy {
    /// A load-aware policy (stateless).
    pub fn new() -> Self {
        LoadAwarePolicy
    }

    /// The request's compute weights with the network-ish attribute
    /// (flow rate) removed and the remainder renormalized to 1.
    fn compute_only_weights(w: &ComputeWeights) -> ComputeWeights {
        let mut out = *w;
        out.flow_rate = 0.0;
        let sum: f64 = out.as_array().iter().sum();
        if sum > 0.0 {
            out.cpu_load /= sum;
            out.cpu_util /= sum;
            out.memory /= sum;
            out.core_count /= sum;
            out.cpu_freq /= sum;
            out.total_mem /= sum;
            out.users /= sum;
        }
        out
    }
}

impl Policy for LoadAwarePolicy {
    fn name(&self) -> &'static str {
        "load-aware"
    }

    fn allocate(
        &mut self,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError> {
        req.validate()?;
        let weights = Self::compute_only_weights(&req.compute_weights);
        let loads = Loads::derive(snap, &weights, &req.network_weights, req.ppn)?;
        let mut order = loads.usable.clone();
        order.sort_by(|&a, &b| loads.cl_of(a).total_cmp(&loads.cl_of(b)).then(a.cmp(&b)));
        let assignment = pack(&loads, &order, req.procs);
        Ok(build_allocation(
            "load-aware",
            &loads,
            assignment,
            Diagnostics::default(),
        ))
    }
}

/// The paper's contribution: network and load-aware allocation
/// (Algorithm 1 candidate generation + Algorithm 2 selection).
#[derive(Debug, Clone, Default)]
pub struct NetworkLoadAwarePolicy;

impl NetworkLoadAwarePolicy {
    /// A network-and-load-aware policy (stateless, deterministic).
    pub fn new() -> Self {
        NetworkLoadAwarePolicy
    }
}

impl Policy for NetworkLoadAwarePolicy {
    fn name(&self) -> &'static str {
        "network-load-aware"
    }

    fn allocate(
        &mut self,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError> {
        let started = std::time::Instant::now();
        let loads = derive(snap, req)?;
        let candidates = generate_all_candidates(&loads, req.procs, req.alpha, req.beta);
        if candidates.is_empty() {
            return Err(AllocError::NoCapacity);
        }
        let selection = select_best(&loads, &candidates, req.alpha, req.beta);
        let explain = explain_selection(&candidates, &selection, req.alpha, req.beta, 3);
        let winner = &candidates[selection.best];
        nlrm_obs::ctx::observe(
            "alloc_decision_seconds",
            crate::scalable::DECISION_SECONDS_BOUNDS,
            started.elapsed().as_secs_f64(),
        );
        Ok(build_allocation(
            "network-load-aware",
            &loads,
            winner.assignment(),
            Diagnostics {
                total_cost: selection.best_cost,
                candidate_costs: selection.costs,
                explain: Some(explain),
                ..Diagnostics::default()
            },
        ))
    }
}

/// Exhaustive optimum over all groups of the minimal node count. Exponential
/// — only for validating the heuristic on small clusters. Requires `ppn`.
#[derive(Debug, Clone)]
pub struct BruteForcePolicy {
    /// Refuse searches beyond this many subsets (safety valve).
    pub max_subsets: u64,
}

impl Default for BruteForcePolicy {
    fn default() -> Self {
        BruteForcePolicy {
            max_subsets: 5_000_000,
        }
    }
}

impl BruteForcePolicy {
    /// A brute-force policy with the default subset budget.
    pub fn new() -> Self {
        Self::default()
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

impl Policy for BruteForcePolicy {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn allocate(
        &mut self,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
    ) -> Result<Allocation, AllocError> {
        let ppn = req
            .ppn
            .ok_or_else(|| AllocError::InvalidRequest("brute force requires ppn".into()))?;
        let loads = derive(snap, req)?;
        let k = (req.procs as usize).div_ceil(ppn as usize);
        if loads.usable.len() < k {
            return Err(AllocError::NotEnoughNodes {
                available: loads.usable.len(),
                needed: k,
            });
        }
        if binomial(loads.usable.len() as u64, k as u64) > self.max_subsets {
            return Err(AllocError::InvalidRequest(format!(
                "brute force over C({}, {k}) subsets exceeds budget",
                loads.usable.len()
            )));
        }
        let mut best: Option<(f64, Vec<NodeId>)> = None;
        let mut subset = Vec::with_capacity(k);
        search(
            &loads,
            &loads.usable,
            0,
            k,
            req.alpha,
            req.beta,
            &mut subset,
            &mut best,
        );
        let (cost, nodes) = best.expect("at least one subset exists");
        let assignment = pack(&loads, &nodes, req.procs);
        Ok(build_allocation(
            "brute-force",
            &loads,
            assignment,
            Diagnostics {
                total_cost: cost,
                ..Diagnostics::default()
            },
        ))
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    loads: &Loads,
    universe: &[NodeId],
    from: usize,
    k: usize,
    alpha: f64,
    beta: f64,
    subset: &mut Vec<NodeId>,
    best: &mut Option<(f64, Vec<NodeId>)>,
) {
    if subset.len() == k {
        let cost = group_cost(loads, subset, alpha, beta);
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            *best = Some((cost, subset.clone()));
        }
        return;
    }
    let remaining = k - subset.len();
    for i in from..=universe.len().saturating_sub(remaining) {
        subset.push(universe[i]);
        search(loads, universe, i + 1, k, alpha, beta, subset, best);
        subset.pop();
    }
}

/// Convenience: run the paper's allocator once with default construction.
pub fn allocate_network_load_aware(
    snap: &ClusterSnapshot,
    req: &AllocationRequest,
) -> Result<Allocation, AllocError> {
    NetworkLoadAwarePolicy::new().allocate(snap, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn snapshot(n: usize, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap()
    }

    fn req(procs: u32) -> AllocationRequest {
        AllocationRequest::new(procs, Some(4), 0.3, 0.7)
    }

    #[test]
    fn every_policy_satisfies_process_count() {
        let snap = snapshot(8, 3);
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(RandomPolicy::new(1)),
            Box::new(SequentialPolicy::new(1)),
            Box::new(LoadAwarePolicy::new()),
            Box::new(NetworkLoadAwarePolicy::new()),
        ];
        for mut p in policies {
            let alloc = p.allocate(&snap, &req(16)).unwrap();
            assert_eq!(alloc.total_procs(), 16, "{}", p.name());
            assert_eq!(alloc.rank_map.len(), 16, "{}", p.name());
            assert_eq!(alloc.node_list().len(), 4, "{}", p.name());
        }
    }

    #[test]
    fn load_aware_picks_least_loaded() {
        let snap = snapshot(8, 3);
        let r = req(8);
        let weights = LoadAwarePolicy::compute_only_weights(&r.compute_weights);
        let loads = Loads::derive(&snap, &weights, &r.network_weights, r.ppn).unwrap();
        let alloc = LoadAwarePolicy::new().allocate(&snap, &r).unwrap();
        let picked = alloc.node_list();
        let mut by_cl = loads.usable.clone();
        by_cl.sort_by(|&a, &b| loads.cl_of(a).total_cmp(&loads.cl_of(b)).then(a.cmp(&b)));
        assert_eq!(picked, by_cl[..2].to_vec());
    }

    #[test]
    fn load_aware_weights_ignore_flow_rate() {
        let w = LoadAwarePolicy::compute_only_weights(&ComputeWeights::paper_default());
        assert_eq!(w.flow_rate, 0.0);
        w.validate().unwrap();
        // cpu_load keeps its dominance after renormalization: 0.3/0.8
        assert!((w.cpu_load - 0.375).abs() < 1e-12);
    }

    #[test]
    fn sequential_allocates_consecutive_ids() {
        let snap = snapshot(8, 3);
        let alloc = SequentialPolicy::new(5).allocate(&snap, &req(12)).unwrap();
        let picked = alloc.node_list();
        for w in picked.windows(2) {
            let step = (w[1].0 as i64 - w[0].0 as i64).rem_euclid(8);
            assert_eq!(step, 1, "non-consecutive pick {picked:?}");
        }
    }

    #[test]
    fn random_differs_across_calls() {
        let snap = snapshot(12, 3);
        let mut p = RandomPolicy::new(7);
        let a = p.allocate(&snap, &req(8)).unwrap().node_list();
        let b = p.allocate(&snap, &req(8)).unwrap().node_list();
        let c = p.allocate(&snap, &req(8)).unwrap().node_list();
        assert!(a != b || b != c, "three identical random draws");
    }

    #[test]
    fn nla_is_deterministic() {
        let snap = snapshot(10, 9);
        let a = NetworkLoadAwarePolicy::new()
            .allocate(&snap, &req(16))
            .unwrap();
        let b = NetworkLoadAwarePolicy::new()
            .allocate(&snap, &req(16))
            .unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.diagnostics.total_cost, b.diagnostics.total_cost);
    }

    #[test]
    fn nla_diagnostics_cover_all_candidates() {
        let snap = snapshot(10, 9);
        let alloc = NetworkLoadAwarePolicy::new()
            .allocate(&snap, &req(16))
            .unwrap();
        assert_eq!(alloc.diagnostics.candidate_costs.len(), 10);
        assert!(alloc.diagnostics.total_cost > 0.0);
    }

    #[test]
    fn nla_beats_or_ties_baselines_on_its_own_objective() {
        let snap = snapshot(12, 21);
        let r = req(16);
        let loads = derive(&snap, &r).unwrap();
        let nla = NetworkLoadAwarePolicy::new().allocate(&snap, &r).unwrap();
        let nla_cost = group_cost(&loads, &nla.node_list(), r.alpha, r.beta);
        for mut p in [
            Box::new(RandomPolicy::new(3)) as Box<dyn Policy>,
            Box::new(SequentialPolicy::new(3)),
        ] {
            let alloc = p.allocate(&snap, &r).unwrap();
            let cost = group_cost(&loads, &alloc.node_list(), r.alpha, r.beta);
            assert!(
                nla_cost <= cost + 1e-9,
                "{} beat NLA on the Eq.4 objective: {cost} < {nla_cost}",
                p.name()
            );
        }
    }

    #[test]
    fn brute_force_matches_or_beats_heuristic() {
        let snap = snapshot(9, 13);
        let r = req(12); // k = 3 of 9 nodes: 84 subsets
        let loads = derive(&snap, &r).unwrap();
        let heuristic = NetworkLoadAwarePolicy::new().allocate(&snap, &r).unwrap();
        let optimal = BruteForcePolicy::new().allocate(&snap, &r).unwrap();
        let h_cost = group_cost(&loads, &heuristic.node_list(), r.alpha, r.beta);
        let o_cost = group_cost(&loads, &optimal.node_list(), r.alpha, r.beta);
        assert!(
            o_cost <= h_cost + 1e-12,
            "optimum {o_cost} worse than heuristic {h_cost}"
        );
        // the greedy heuristic is approximate; typical gaps measured by the
        // heuristic_vs_optimal experiment are 2–8% with a tail to ~40%
        assert!(
            h_cost <= o_cost * 1.5 + 1e-9,
            "heuristic gap too large: {h_cost} vs {o_cost}"
        );
    }

    #[test]
    fn brute_force_requires_ppn() {
        let snap = snapshot(6, 3);
        let mut r = req(8);
        r.ppn = None;
        assert!(matches!(
            BruteForcePolicy::new().allocate(&snap, &r),
            Err(AllocError::InvalidRequest(_))
        ));
    }

    #[test]
    fn oversubscription_still_succeeds() {
        let snap = snapshot(4, 3);
        // 4 nodes × 4 ppn = 16 capacity; ask 20
        let alloc = NetworkLoadAwarePolicy::new()
            .allocate(&snap, &req(20))
            .unwrap();
        assert_eq!(alloc.total_procs(), 20);
        assert_eq!(alloc.node_list().len(), 4);
    }

    #[test]
    fn down_nodes_are_never_selected() {
        let mut cluster = small_cluster(8, 31);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, nlrm_sim_core::time::SimTime::from_secs(360));
        cluster.schedule_failure(
            nlrm_sim_core::time::SimTime::from_secs(400),
            nlrm_topology::NodeId(2),
        );
        rt.run_until(&mut cluster, nlrm_sim_core::time::SimTime::from_secs(500));
        let snap = rt.snapshot(cluster.now()).unwrap();
        for mut p in [
            Box::new(RandomPolicy::new(3)) as Box<dyn Policy>,
            Box::new(SequentialPolicy::new(3)),
            Box::new(LoadAwarePolicy::new()),
            Box::new(NetworkLoadAwarePolicy::new()),
        ] {
            let alloc = p.allocate(&snap, &req(16)).unwrap();
            assert!(
                !alloc.node_list().contains(&nlrm_topology::NodeId(2)),
                "{} picked a down node",
                p.name()
            );
        }
    }
}
