//! Wait-or-allocate advice (paper §6).
//!
//! "If the overall load on the cluster is extremely high, the performance
//! gain will not be significant because there are not enough lightly loaded
//! processors; in that case, our tool should recommend waiting rather than
//! allocating it right away."

use crate::policies::{NetworkLoadAwarePolicy, Policy};
use crate::request::{AllocError, Allocation, AllocationRequest};
use nlrm_monitor::ClusterSnapshot;
use serde::{Deserialize, Serialize};

/// Thresholds for the wait recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Recommend waiting when the best group's mean CPU load per logical
    /// core exceeds this (1.0 ≈ every core already busy).
    pub max_load_per_core: f64,
    /// Recommend waiting when the mean available-bandwidth fraction inside
    /// the best group falls below this.
    pub min_bandwidth_fraction: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            max_load_per_core: 0.9,
            min_bandwidth_fraction: 0.05,
        }
    }
}

/// The advisor's verdict.
#[derive(Debug, Clone)]
pub enum Advice {
    /// The allocation is worth running now.
    Allocate(Allocation),
    /// Better to wait; the allocation is included for inspection.
    Wait {
        /// The best allocation the policy could find anyway.
        best_available: Allocation,
        /// Human-readable explanation.
        reason: String,
    },
}

impl Advice {
    /// True when the advice is to go ahead.
    pub fn should_run(&self) -> bool {
        matches!(self, Advice::Allocate(_))
    }

    /// The allocation either way.
    pub fn allocation(&self) -> &Allocation {
        match self {
            Advice::Allocate(a) => a,
            Advice::Wait { best_available, .. } => best_available,
        }
    }
}

/// Run the network-and-load-aware allocator, then judge whether even its
/// best group is too loaded to be worth running on.
pub fn advise(
    snap: &ClusterSnapshot,
    req: &AllocationRequest,
    config: &AdvisorConfig,
) -> Result<Advice, AllocError> {
    let alloc = NetworkLoadAwarePolicy::new().allocate(snap, req)?;

    // mean CPU load per logical core over the chosen group (1-min means)
    let mut load = 0.0;
    let mut cores = 0.0;
    let mut bw_frac_sum = 0.0;
    let mut bw_pairs = 0usize;
    let selected = alloc.node_list();
    for &u in &selected {
        let info = snap.info(u).expect("selected node has sample");
        load += info.sample.cpu_load.m1;
        cores += info.sample.spec.cores as f64;
    }
    for (i, &u) in selected.iter().enumerate() {
        for &v in &selected[i + 1..] {
            let peak = snap.peak_bandwidth_bps.get(u, v);
            let avail = snap.bandwidth_bps.get(u, v);
            if peak.is_finite() && peak > 0.0 {
                bw_frac_sum += (avail / peak).clamp(0.0, 1.0);
                bw_pairs += 1;
            }
        }
    }
    let load_per_core = if cores > 0.0 { load / cores } else { 0.0 };
    let bw_frac = if bw_pairs > 0 {
        bw_frac_sum / bw_pairs as f64
    } else {
        1.0
    };

    if load_per_core > config.max_load_per_core {
        return Ok(Advice::Wait {
            best_available: alloc,
            reason: format!(
                "best group's CPU load per core is {load_per_core:.2} \
                 (> {:.2}); not enough lightly loaded processors",
                config.max_load_per_core
            ),
        });
    }
    if bw_frac < config.min_bandwidth_fraction {
        return Ok(Advice::Wait {
            best_available: alloc,
            reason: format!(
                "best group's mean available bandwidth is {:.1}% of peak \
                 (< {:.1}%); the network is saturated",
                bw_frac * 100.0,
                config.min_bandwidth_fraction * 100.0
            ),
        });
    }
    Ok(Advice::Allocate(alloc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster_with_profile;
    use nlrm_cluster::ClusterProfile;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn snapshot_with(profile: ClusterProfile, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster_with_profile(8, profile, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(600))
            .unwrap()
    }

    #[test]
    fn quiet_cluster_gets_allocate() {
        let snap = snapshot_with(ClusterProfile::quiet(), 3);
        let advice = advise(
            &snap,
            &AllocationRequest::minimd(16),
            &AdvisorConfig::default(),
        )
        .unwrap();
        assert!(advice.should_run(), "quiet cluster should allocate");
        assert_eq!(advice.allocation().total_procs(), 16);
    }

    #[test]
    fn overloaded_cluster_gets_wait() {
        let snap = snapshot_with(ClusterProfile::overloaded(), 3);
        let advice = advise(
            &snap,
            &AllocationRequest::minimd(16),
            &AdvisorConfig::default(),
        )
        .unwrap();
        match advice {
            Advice::Wait { reason, .. } => {
                assert!(reason.contains("load per core") || reason.contains("bandwidth"));
            }
            Advice::Allocate(_) => panic!("overloaded cluster should recommend waiting"),
        }
    }

    #[test]
    fn wait_still_reports_best_allocation() {
        let snap = snapshot_with(ClusterProfile::overloaded(), 5);
        let advice = advise(
            &snap,
            &AllocationRequest::minimd(16),
            &AdvisorConfig::default(),
        )
        .unwrap();
        assert_eq!(advice.allocation().total_procs(), 16);
    }
}
