//! Weight vectors for the allocator's three weighted sums.

use serde::{Deserialize, Serialize};

/// Tolerance for "weights sum to one" checks.
const SUM_TOL: f64 = 1e-9;

/// SAW weights over the node-attribute groups of Table 1 (Eq. 1).
///
/// Attributes with 1/5/15-minute windows form one group each; the group
/// weight is applied to the *mean of the three windows* so the total weight
/// assigned to, say, CPU load matches the paper's single number.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeWeights {
    /// Average CPU load (minimize).
    pub cpu_load: f64,
    /// CPU utilization (minimize).
    pub cpu_util: f64,
    /// Node data-flow rate (minimize).
    pub flow_rate: f64,
    /// Memory pressure: used memory minimized / available maximized.
    pub memory: f64,
    /// Logical core count (maximize).
    pub core_count: f64,
    /// CPU clock frequency (maximize).
    pub cpu_freq: f64,
    /// Total physical memory (maximize).
    pub total_mem: f64,
    /// Logged-in user count (minimize).
    pub users: f64,
}

impl ComputeWeights {
    /// The weights the paper used in §5: 0.3 CPU load, 0.2 CPU utilization,
    /// 0.2 node bandwidth (flow rate), 0.1 used memory, 0.1 logical core
    /// count, 0.05 clock speed, 0.05 total physical memory. (User count was
    /// not weighted in the evaluation.)
    pub fn paper_default() -> Self {
        ComputeWeights {
            cpu_load: 0.3,
            cpu_util: 0.2,
            flow_rate: 0.2,
            memory: 0.1,
            core_count: 0.1,
            cpu_freq: 0.05,
            total_mem: 0.05,
            users: 0.0,
        }
    }

    /// A compute-intensive job profile: CPU load/utilization dominate.
    pub fn compute_intensive() -> Self {
        ComputeWeights {
            cpu_load: 0.4,
            cpu_util: 0.3,
            flow_rate: 0.05,
            memory: 0.05,
            core_count: 0.1,
            cpu_freq: 0.08,
            total_mem: 0.02,
            users: 0.0,
        }
    }

    /// A memory/network-intensive job profile (paper §3.2.1: "for memory and
    /// network-intensive jobs, higher weights are given to available memory
    /// and node data flow rate").
    pub fn network_intensive() -> Self {
        ComputeWeights {
            cpu_load: 0.15,
            cpu_util: 0.1,
            flow_rate: 0.35,
            memory: 0.25,
            core_count: 0.05,
            cpu_freq: 0.05,
            total_mem: 0.05,
            users: 0.0,
        }
    }

    /// All weights in declaration order.
    pub fn as_array(&self) -> [f64; 8] {
        [
            self.cpu_load,
            self.cpu_util,
            self.flow_rate,
            self.memory,
            self.core_count,
            self.cpu_freq,
            self.total_mem,
            self.users,
        ]
    }

    /// Check weights are non-negative and sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        let arr = self.as_array();
        if arr.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(format!("compute weights must be non-negative: {arr:?}"));
        }
        let sum: f64 = arr.iter().sum();
        if (sum - 1.0).abs() > SUM_TOL {
            return Err(format!("compute weights must sum to 1, got {sum}"));
        }
        Ok(())
    }
}

impl Default for ComputeWeights {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Latency/bandwidth weights for the pairwise network load (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkWeights {
    /// Weight of P2P latency (`w_lt`); raise for chatty low-volume jobs.
    pub latency: f64,
    /// Weight of complement-of-available-bandwidth (`w_bw`); raise for bulky
    /// communication.
    pub bandwidth: f64,
}

impl NetworkWeights {
    /// The paper's §5 values: `w_lt = 0.25`, `w_bw = 0.75`.
    pub fn paper_default() -> Self {
        NetworkWeights {
            latency: 0.25,
            bandwidth: 0.75,
        }
    }

    /// Check weights are non-negative and sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.latency < 0.0 || self.bandwidth < 0.0 {
            return Err("network weights must be non-negative".into());
        }
        let sum = self.latency + self.bandwidth;
        if (sum - 1.0).abs() > SUM_TOL {
            return Err(format!("network weights must sum to 1, got {sum}"));
        }
        Ok(())
    }
}

impl Default for NetworkWeights {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Validate an (α, β) compute/communication mix (Eq. 4): both non-negative,
/// summing to 1.
pub fn validate_alpha_beta(alpha: f64, beta: f64) -> Result<(), String> {
    if alpha < 0.0 || beta < 0.0 || !alpha.is_finite() || !beta.is_finite() {
        return Err(format!(
            "alpha/beta must be non-negative, got ({alpha}, {beta})"
        ));
    }
    if (alpha + beta - 1.0).abs() > SUM_TOL {
        return Err(format!("alpha + beta must equal 1, got {}", alpha + beta));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        ComputeWeights::paper_default().validate().unwrap();
        ComputeWeights::compute_intensive().validate().unwrap();
        ComputeWeights::network_intensive().validate().unwrap();
        NetworkWeights::paper_default().validate().unwrap();
        validate_alpha_beta(0.3, 0.7).unwrap();
    }

    #[test]
    fn paper_default_matches_section5() {
        let w = ComputeWeights::paper_default();
        assert_eq!(w.cpu_load, 0.3);
        assert_eq!(w.cpu_util, 0.2);
        assert_eq!(w.flow_rate, 0.2);
        assert_eq!(w.memory, 0.1);
        assert_eq!(w.core_count, 0.1);
        assert_eq!(w.cpu_freq, 0.05);
        assert_eq!(w.total_mem, 0.05);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let mut w = ComputeWeights::paper_default();
        w.cpu_load = -0.1;
        assert!(w.validate().is_err());
        let mut w = ComputeWeights::paper_default();
        w.cpu_load = 0.5; // breaks the sum
        assert!(w.validate().is_err());
        assert!(NetworkWeights {
            latency: 0.5,
            bandwidth: 0.6
        }
        .validate()
        .is_err());
        assert!(validate_alpha_beta(0.5, 0.6).is_err());
        assert!(validate_alpha_beta(-0.2, 1.2).is_err());
    }
}
