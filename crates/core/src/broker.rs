//! A multi-job resource broker on top of the allocator.
//!
//! The paper deploys its allocator as a *resource broker* users submit MPI
//! jobs to (abstract, §1). One job at a time is what the evaluation runs;
//! this module supplies the broker around it for continuous operation:
//! a priority queue with aging, **reservation accounting** so that
//! concurrently running jobs never double-book the effective processor
//! count, EASY-style backfill behind a capacity-reserved queue head,
//! admission control under overload, and wait-deferral via the §6 advisor
//! thresholds.
//!
//! # The batched scheduling cycle
//!
//! The original broker re-derived [`Loads`] — an O(V²) matrix build — for
//! *every queued job on every tick*, an O(jobs × V²) pass. The batched
//! cycle ([`SchedMode::Batched`]) derives once per distinct *request
//! shape* (ppn + weight vectors) per tick, scores the top-K jobs of the
//! priority order against that shared derivation, and commits starts
//! greedily against the reservation ledger, rebuilding only the cheap
//! reservation-restricted view when the ledger actually changes.
//!
//! # Starvation and the head reservation
//!
//! Conservative backfill ("a later job may start only if the head still
//! cannot") lets a stream of small jobs starve a large queue head forever:
//! each small job grabs the free capacity the head is waiting for. The
//! batched cycle instead reserves capacity for the first capacity-blocked
//! job: from the expected completion times of running jobs it computes the
//! *shadow time* at which the head provably fits, and a later job may
//! start only if it finishes by the shadow time or fits in the capacity
//! left over once the head starts. Priority aging is the second backstop:
//! every second of queue wait adds [`BrokerConfig::aging_rate`] points.

use crate::candidate::generate_all_candidates;
use crate::loads::Loads;
use crate::request::{AllocError, Allocation, AllocationRequest, Diagnostics};
use crate::select::{explain_selection, group_mean_network_load, select_best};
use nlrm_monitor::ClusterSnapshot;
use nlrm_obs::span::{SpanId, TraceId};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Histogram bucket bounds (seconds) for job queue-wait time.
const JOB_WAIT_BOUNDS: &[f64] = &[0.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0, 3600.0];

/// Top-k candidate groups kept in a decision's explain trace.
const EXPLAIN_TOP_K: usize = 3;

/// Broker-assigned job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// The job's trace id: deterministic, so executors and reports can name
    /// a job's trace without the broker in hand.
    pub fn trace(self) -> TraceId {
        TraceId::for_job(self.0)
    }
}

/// Fairness class of a job. Ordered `Batch < Normal < Urgent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PriorityClass {
    /// Throughput work: runs when nothing more pressing waits.
    Batch,
    /// The default interactive class.
    #[default]
    Normal,
    /// Latency-sensitive work: scheduled ahead of everything else.
    Urgent,
}

impl PriorityClass {
    /// Base priority points of the class. Aging adds
    /// [`BrokerConfig::aging_rate`] points per second of queue wait, so a
    /// `Normal` job overtakes a fresh `Urgent` one after
    /// `100 / aging_rate` seconds — classes bias, they never starve.
    pub fn base_priority(self) -> f64 {
        match self {
            PriorityClass::Batch => 0.0,
            PriorityClass::Normal => 100.0,
            PriorityClass::Urgent => 200.0,
        }
    }
}

/// How a scheduling pass walks the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedMode {
    /// Legacy per-job scheduling: re-derive [`Loads`] for every queued job
    /// (O(jobs × V²) per tick). Kept for comparison and for callers that
    /// want the original conservative-backfill semantics.
    PerJob,
    /// The batched cycle: one derivation per request shape per tick,
    /// scoring at most `max_per_tick` jobs of the priority order.
    Batched {
        /// Queue prefix examined per tick; jobs beyond it stay queued
        /// untouched (and unannounced) until the backlog drains.
        max_per_tick: usize,
    },
}

/// What happens to a submission when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Accept everything (the queue grows without bound).
    Unbounded,
    /// Reject new submissions once `max_queue` jobs wait
    /// ([`AllocError::QueueFull`], plus a `job_rejected` journal event).
    Reject {
        /// Queue length at which submissions start bouncing.
        max_queue: usize,
    },
    /// Evict the lowest-class (youngest within the class) queued job to
    /// make room — unless the new job itself is the lowest, in which case
    /// it is rejected instead. Sheds emit a `job_shed` journal event.
    Shed {
        /// Queue length at which shedding starts.
        max_queue: usize,
    },
}

/// Broker configuration.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Try jobs behind a blocked queue head. Under [`SchedMode::Batched`]
    /// this is EASY-style backfill against the head's capacity
    /// reservation; under [`SchedMode::PerJob`] it is the legacy
    /// conservative backfill (which can starve the head).
    pub backfill: bool,
    /// Defer jobs whose best group's mean CPU load per core exceeds this
    /// (§6's "recommend waiting"); `None` disables deferral.
    pub max_load_per_core: Option<f64>,
    /// How the queue is walked each tick.
    pub mode: SchedMode,
    /// What happens to submissions when the queue is full.
    pub admission: AdmissionPolicy,
    /// Priority points added per second of queue wait (virtual time).
    pub aging_rate: f64,
    /// Assumed walltime for jobs submitted without one, used for the
    /// backfill shadow-time forecast. `None` means such jobs make no
    /// completion promise and can never be counted on (nor backfilled
    /// past a reserved head on the finishes-in-time rule).
    pub default_walltime: Option<Duration>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            backfill: true,
            max_load_per_core: Some(1.5),
            mode: SchedMode::Batched { max_per_tick: 64 },
            admission: AdmissionPolicy::Unbounded,
            aging_rate: 1.0,
            default_walltime: Some(Duration::from_hours(1)),
        }
    }
}

/// Per-submission options beyond the allocation request itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Fairness class.
    pub class: PriorityClass,
    /// Declared walltime: feeds the backfill shadow-time forecast.
    pub walltime: Option<Duration>,
    /// Virtual submit time; jobs without one are stamped at their first
    /// batched tick so aging and the wait histogram still work.
    pub submitted_at: Option<SimTime>,
}

/// A queued job.
#[derive(Debug, Clone)]
struct QueuedJob {
    id: JobId,
    name: String,
    request: AllocationRequest,
    class: PriorityClass,
    /// Declared walltime, if any.
    walltime: Option<Duration>,
    /// Virtual submit time, when known; feeds aging and the queue-wait
    /// histogram.
    submitted_at: Option<SimTime>,
    /// Whether an `alloc_requested` event was already journaled.
    announced: bool,
    /// Root span of the job's trace, opened when the job is announced to
    /// an installed observer.
    root_span: Option<SpanId>,
}

/// A running job's lease.
#[derive(Debug, Clone)]
pub struct Lease {
    /// The job.
    pub id: JobId,
    /// Job display name.
    pub name: String,
    /// The job's trace id (always valid; equals `id.trace()`).
    pub trace: TraceId,
    /// Root span of the job's trace, when an observer recorded one — the
    /// parent under which execution spans should hang.
    pub root_span: Option<SpanId>,
    /// The allocation it holds.
    pub allocation: Allocation,
}

/// Broker-side metadata for a running job (kept off the [`Lease`] so
/// externally constructed leases stay plain data).
#[derive(Debug, Clone)]
struct RunMeta {
    #[allow(dead_code)]
    class: PriorityClass,
    /// When the job is expected to release its nodes (start + walltime);
    /// `None` for jobs that declared nothing and have no default.
    expected_end: Option<SimTime>,
}

/// What happened during one scheduling pass.
#[derive(Debug, Clone)]
pub enum BrokerEvent {
    /// A job was granted nodes (boxed: a `Lease` carries a whole
    /// `Allocation` and dwarfs the deferral variant).
    Started(Box<Lease>),
    /// A job stayed queued.
    Deferred {
        /// The job.
        id: JobId,
        /// Why it did not start.
        reason: String,
    },
}

/// Why a placement attempt failed, split by whether freed capacity could
/// cure it: `Capacity` failures arm the head reservation, `Advisory` ones
/// (the §6 "recommend waiting" signal, monitoring gaps) do not.
#[derive(Debug, Clone)]
enum PlaceFailure {
    Capacity(String),
    Advisory(String),
}

impl PlaceFailure {
    fn into_message(self) -> String {
        match self {
            PlaceFailure::Capacity(m) | PlaceFailure::Advisory(m) => m,
        }
    }
}

/// Capacity reserved for the first capacity-blocked job of a batch.
#[derive(Debug, Clone)]
struct HeadReservation {
    job: JobId,
    need: u64,
    /// Earliest virtual time the running set's expected completions free
    /// enough capacity for the head; `None` if no forecast exists.
    shadow: Option<SimTime>,
    /// Capacity beyond the head's need at the shadow time — backfill jobs
    /// that outlive the shadow are charged against this.
    extra: u64,
}

/// Request shape: the inputs of [`Loads::derive`] that vary per job. Two
/// jobs with the same shape share one derivation per tick.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ShapeKey {
    ppn: Option<u32>,
    /// Bit patterns of the 8 compute weights + 2 network weights.
    weights: [u64; 10],
}

impl ShapeKey {
    fn of(req: &AllocationRequest) -> ShapeKey {
        let c = &req.compute_weights;
        let n = &req.network_weights;
        ShapeKey {
            ppn: req.ppn,
            weights: [
                c.cpu_load.to_bits(),
                c.cpu_util.to_bits(),
                c.flow_rate.to_bits(),
                c.memory.to_bits(),
                c.core_count.to_bits(),
                c.cpu_freq.to_bits(),
                c.total_mem.to_bits(),
                c.users.to_bits(),
                n.latency.to_bits(),
                n.bandwidth.to_bits(),
            ],
        }
    }
}

/// Effective priority: class base plus aging.
fn effective_priority(job: &QueuedJob, now: SimTime, aging_rate: f64) -> f64 {
    let waited = match job.submitted_at {
        Some(t) if t <= now => now.since(t).as_secs_f64(),
        _ => 0.0,
    };
    job.class.base_priority() + aging_rate * waited
}

/// Journal the job's arrival and open its root trace span (first
/// examination only; call only with an observer installed). `cycle` is the
/// scheduling cycle that first examined the job, so incident analysis can
/// tie the arrival to a concrete broker pass.
fn announce(job: &mut QueuedJob, now: SimTime, cycle: u64) {
    use nlrm_obs::{EventKind, Severity};
    job.announced = true;
    let at = job.submitted_at.unwrap_or(now);
    job.root_span = nlrm_obs::ctx::span_start_kv(
        job.id.trace(),
        None,
        "job",
        "broker/jobs",
        at,
        vec![
            ("job".into(), job.name.clone()),
            ("procs".into(), job.request.procs.to_string()),
        ],
    );
    nlrm_obs::ctx::emit_kv(
        Severity::Info,
        at,
        EventKind::AllocRequested {
            job: job.name.clone(),
            procs: job.request.procs,
        },
        vec![
            ("trace".into(), job.id.trace().to_string()),
            ("cycle".into(), cycle.to_string()),
        ],
    );
}

/// Journal a grant, close the queue-wait span, and feed the wait histogram
/// (call only with an observer installed).
fn observe_start(job: &QueuedJob, lease: &Lease, now: SimTime, cycle: u64) {
    use nlrm_obs::{EventKind, Severity};
    // the exact placement travels with the grant, so a root-cause walk can
    // correlate a later load spike with the lease that landed on the node
    let placed: Vec<String> = lease
        .allocation
        .node_list()
        .iter()
        .map(|n| n.index().to_string())
        .collect();
    nlrm_obs::ctx::emit_kv(
        Severity::Info,
        now,
        EventKind::AllocGranted {
            job: job.name.clone(),
            nodes: lease.allocation.node_list().len(),
            cost: lease.allocation.diagnostics.total_cost,
        },
        vec![
            ("trace".into(), job.id.trace().to_string()),
            ("cycle".into(), cycle.to_string()),
            ("placed".into(), placed.join(",")),
        ],
    );
    // the queue-wait span covers exactly the interval the wait histogram
    // observes
    nlrm_obs::ctx::span_closed(
        job.id.trace(),
        job.root_span,
        "queue_wait",
        "broker/queue",
        job.submitted_at.unwrap_or(now),
        now,
        vec![("job".into(), job.name.clone())],
    );
    if let Some(at) = job.submitted_at {
        nlrm_obs::ctx::observe(
            "broker_job_wait_secs",
            JOB_WAIT_BOUNDS,
            now.since(at.min(now)).as_secs_f64(),
        );
    }
}

/// Journal a deferral and drop an instant mark on the trace (call only
/// with an observer installed).
fn observe_defer(job: &QueuedJob, reason: &str, now: SimTime, cycle: u64) {
    use nlrm_obs::{EventKind, Severity};
    nlrm_obs::ctx::emit_kv(
        Severity::Warn,
        now,
        EventKind::AllocDeferred {
            job: job.name.clone(),
            reason: reason.to_string(),
        },
        vec![
            ("trace".into(), job.id.trace().to_string()),
            ("cycle".into(), cycle.to_string()),
        ],
    );
    // instant mark on the trace; zero-width, so it never perturbs the
    // critical path
    nlrm_obs::ctx::span_closed(
        job.id.trace(),
        job.root_span,
        "defer",
        "broker/queue",
        now,
        now,
        vec![("reason".into(), reason.to_string())],
    );
}

/// The resource broker.
#[derive(Debug, Clone, Default)]
pub struct Broker {
    config: BrokerConfig,
    queue: VecDeque<QueuedJob>,
    running: BTreeMap<JobId, Lease>,
    run_meta: BTreeMap<JobId, RunMeta>,
    /// Processes reserved per node by running jobs.
    reserved: BTreeMap<NodeId, u32>,
    next_id: u64,
    /// Completed scheduling passes; stamped onto every allocation event so
    /// incident analysis can line decisions up with concrete broker cycles.
    cycles: u64,
}

impl Broker {
    /// A broker with the given configuration.
    pub fn new(config: BrokerConfig) -> Self {
        Broker {
            config,
            ..Broker::default()
        }
    }

    /// Scheduling passes completed so far (the `cycle` stamped onto
    /// allocation journal events).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Enqueue a job; returns its id. The request is validated on submit.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        request: AllocationRequest,
    ) -> Result<JobId, AllocError> {
        self.submit_opts(name, request, SubmitOptions::default())
    }

    /// Enqueue a job stamped with its virtual submit time, so scheduling
    /// passes can report how long it waited in queue.
    pub fn submit_at(
        &mut self,
        name: impl Into<String>,
        request: AllocationRequest,
        now: SimTime,
    ) -> Result<JobId, AllocError> {
        self.submit_opts(
            name,
            request,
            SubmitOptions {
                submitted_at: Some(now),
                ..SubmitOptions::default()
            },
        )
    }

    /// Enqueue a job with explicit class/walltime/submit-time options.
    pub fn submit_opts(
        &mut self,
        name: impl Into<String>,
        request: AllocationRequest,
        opts: SubmitOptions,
    ) -> Result<JobId, AllocError> {
        use nlrm_obs::{EventKind, Severity};
        request.validate()?;
        let name = name.into();
        let at = opts.submitted_at.unwrap_or(SimTime::ZERO);
        match self.config.admission {
            AdmissionPolicy::Unbounded => {}
            AdmissionPolicy::Reject { max_queue } => {
                if self.queue.len() >= max_queue.max(1) {
                    nlrm_obs::ctx::emit(
                        Severity::Warn,
                        at,
                        EventKind::JobRejected {
                            job: name,
                            depth: self.queue.len(),
                        },
                    );
                    nlrm_obs::ctx::inc("broker_jobs_rejected_total");
                    return Err(AllocError::QueueFull {
                        depth: self.queue.len(),
                    });
                }
            }
            AdmissionPolicy::Shed { max_queue } => {
                if self.queue.len() >= max_queue.max(1) {
                    // victim: lowest class, youngest within it (sheds are
                    // judged on class alone — aging protects old waiters
                    // from scheduling starvation, not from overload)
                    let victim = self
                        .queue
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, j)| (j.class, std::cmp::Reverse(j.id)))
                        .map(|(i, j)| (i, j.class))
                        .expect("queue at capacity is non-empty");
                    if opts.class <= victim.1 {
                        // the newcomer is itself the youngest of the lowest
                        // class present — it would be the victim: bounce it
                        nlrm_obs::ctx::emit(
                            Severity::Warn,
                            at,
                            EventKind::JobRejected {
                                job: name,
                                depth: self.queue.len(),
                            },
                        );
                        nlrm_obs::ctx::inc("broker_jobs_rejected_total");
                        return Err(AllocError::QueueFull {
                            depth: self.queue.len(),
                        });
                    }
                    let shed = self.queue.remove(victim.0).expect("victim index valid");
                    if let Some(root) = shed.root_span {
                        nlrm_obs::ctx::span_annotate(root, "shed", "true");
                        nlrm_obs::ctx::span_end(root, at);
                    }
                    nlrm_obs::ctx::emit(
                        Severity::Warn,
                        at,
                        EventKind::JobShed {
                            job: shed.name,
                            depth: self.queue.len(),
                        },
                    );
                    nlrm_obs::ctx::inc("broker_jobs_shed_total");
                }
            }
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(QueuedJob {
            id,
            name,
            request,
            class: opts.class,
            walltime: opts.walltime,
            submitted_at: opts.submitted_at,
            announced: false,
            root_span: None,
        });
        Ok(id)
    }

    /// Jobs waiting, in scheduling order (priority order after a batched
    /// tick, submission order before).
    pub fn queued(&self) -> Vec<JobId> {
        self.queue.iter().map(|j| j.id).collect()
    }

    /// Currently running leases.
    pub fn running(&self) -> Vec<&Lease> {
        self.running.values().collect()
    }

    /// Processes reserved on a node by running jobs.
    pub fn reserved_on(&self, node: NodeId) -> u32 {
        self.reserved.get(&node).copied().unwrap_or(0)
    }

    /// Total processes reserved across all nodes.
    pub fn total_reserved(&self) -> u64 {
        self.reserved.values().map(|&p| p as u64).sum()
    }

    /// Install an externally-constructed lease into the broker's books
    /// (reserving its nodes). Lets callers plug alternative placement
    /// strategies into the same reservation accounting — the baseline
    /// brokers in the `multi_job_broker` experiment use this.
    ///
    /// The lease's id must not collide with a queued or running job, and
    /// `next_id` is bumped past it so no future submission can collide
    /// either (a colliding submit used to overwrite the adopted lease in
    /// `running`, permanently leaking its reservations).
    pub fn adopt_lease(&mut self, lease: Lease) -> Result<(), AllocError> {
        if self.running.contains_key(&lease.id) || self.queue.iter().any(|j| j.id == lease.id) {
            return Err(AllocError::InvalidRequest(format!(
                "cannot adopt lease: job id {} is already known to the broker",
                lease.id.0
            )));
        }
        self.next_id = self.next_id.max(lease.id.0 + 1);
        for &(node, procs) in &lease.allocation.nodes {
            *self.reserved.entry(node).or_insert(0) += procs;
        }
        self.run_meta.insert(
            lease.id,
            RunMeta {
                class: PriorityClass::Normal,
                expected_end: None,
            },
        );
        self.running.insert(lease.id, lease);
        Ok(())
    }

    /// Release a finished job's nodes. Returns the lease, or `None` if the
    /// id is unknown (already completed or never started).
    pub fn complete(&mut self, id: JobId) -> Option<Lease> {
        let lease = self.running.remove(&id)?;
        self.run_meta.remove(&id);
        for &(node, procs) in &lease.allocation.nodes {
            let r = self.reserved.get_mut(&node).expect("reservation exists");
            *r -= procs.min(*r);
            if *r == 0 {
                self.reserved.remove(&node);
            }
        }
        Some(lease)
    }

    /// [`Broker::complete`], additionally closing the job's root trace span
    /// at virtual time `now` so the trace's end-to-end duration matches the
    /// job's actual lifetime.
    pub fn complete_at(&mut self, id: JobId, now: SimTime) -> Option<Lease> {
        let lease = self.complete(id)?;
        if let Some(root) = lease.root_span {
            nlrm_obs::ctx::span_end(root, now);
        }
        Some(lease)
    }

    /// Cancel a job, queued *or running*. A running job's reservations are
    /// released exactly as on completion. Returns whether the id was known.
    pub fn cancel(&mut self, id: JobId) -> bool {
        self.cancel_impl(id, None)
    }

    /// [`Broker::cancel`], additionally closing the job's root trace span
    /// at virtual time `now` (annotated `cancelled`) so a withdrawn job
    /// leaves a complete trace rather than a dangling open span.
    pub fn cancel_at(&mut self, id: JobId, now: SimTime) -> bool {
        self.cancel_impl(id, Some(now))
    }

    fn cancel_impl(&mut self, id: JobId, now: Option<SimTime>) -> bool {
        use nlrm_obs::{EventKind, Severity};
        let (found, name, root, was_running) =
            if let Some(pos) = self.queue.iter().position(|j| j.id == id) {
                let job = self.queue.remove(pos).expect("position valid");
                (true, job.name, job.root_span, false)
            } else if self.running.contains_key(&id) {
                let lease = self.complete(id).expect("running contains id");
                (true, lease.name, lease.root_span, true)
            } else {
                (false, String::new(), None, false)
            };
        if !found {
            return false;
        }
        if let Some(now) = now {
            if let Some(root) = root {
                nlrm_obs::ctx::span_annotate(root, "cancelled", "true");
                nlrm_obs::ctx::span_end(root, now);
            }
            nlrm_obs::ctx::emit(
                Severity::Info,
                now,
                EventKind::JobCancelled {
                    job: name,
                    was_running,
                },
            );
        }
        nlrm_obs::ctx::inc("broker_jobs_cancelled_total");
        true
    }

    /// One scheduling pass against a fresh snapshot: starts whatever fits
    /// and reports what happened to every queued job it examined.
    pub fn tick(&mut self, snap: &ClusterSnapshot) -> Vec<BrokerEvent> {
        match self.config.mode {
            SchedMode::PerJob => self.tick_per_job(snap),
            SchedMode::Batched { max_per_tick } => self.tick_batched(snap, max_per_tick, None),
        }
    }

    /// A batched scheduling pass against a caller-supplied derivation
    /// instead of deriving from the snapshot. For callers that manage the
    /// derivation cadence themselves (e.g. reuse one derivation across
    /// many ticks over a static cluster). The base is used for *every*
    /// request shape in the batch, so streams should be shape-uniform; the
    /// snapshot still supplies virtual time and the §6 per-core load
    /// check, and may legitimately disagree with an older `base` — nodes
    /// missing from it defer the job instead of panicking.
    pub fn tick_with_loads(&mut self, base: &Loads, snap: &ClusterSnapshot) -> Vec<BrokerEvent> {
        let k = match self.config.mode {
            SchedMode::Batched { max_per_tick } => max_per_tick,
            SchedMode::PerJob => usize::MAX,
        };
        self.tick_batched(snap, k, Some(base))
    }

    /// The batched scheduling cycle. See the module docs for the shape of
    /// the pass; `base_override` substitutes a caller-supplied derivation
    /// for every shape.
    fn tick_batched(
        &mut self,
        snap: &ClusterSnapshot,
        max_per_tick: usize,
        base_override: Option<&Loads>,
    ) -> Vec<BrokerEvent> {
        let observed = nlrm_obs::ctx::is_active();
        let now = snap.taken_at;
        self.cycles += 1;
        let cycle = self.cycles;
        let mut events = Vec::new();

        // stamp walk-in submissions so aging and the wait histogram see a
        // consistent clock, then order by effective priority (stable:
        // equal priorities keep id order, i.e. FIFO)
        for job in self.queue.iter_mut() {
            if job.submitted_at.is_none() {
                job.submitted_at = Some(now);
            }
        }
        let mut jobs: Vec<QueuedJob> = self.queue.drain(..).collect();
        let rate = self.config.aging_rate;
        jobs.sort_by(|a, b| {
            effective_priority(b, now, rate)
                .total_cmp(&effective_priority(a, now, rate))
                .then(a.id.cmp(&b.id))
        });

        let batch = jobs.len().min(max_per_tick.max(1));
        // one derivation per request shape per tick…
        let mut bases: HashMap<ShapeKey, Result<Loads, String>> = HashMap::new();
        // …and one reservation-restricted view per shape per ledger state
        // (cleared whenever a start changes the ledger)
        let mut views: HashMap<ShapeKey, Result<Loads, PlaceFailure>> = HashMap::new();
        let mut head_res: Option<HeadReservation> = None;
        let mut started = vec![false; jobs.len()];

        'jobs: for idx in 0..batch {
            if observed && !jobs[idx].announced {
                announce(&mut jobs[idx], now, cycle);
            }

            // EASY gate: while a head reservation is armed, a later job may
            // only start if it provably cannot delay the reserved head
            let mut charge_extra = false;
            if let Some(res) = &head_res {
                let job = &jobs[idx];
                let walltime = job.walltime.or(self.config.default_walltime);
                let ends_by_shadow = matches!(
                    (walltime, res.shadow),
                    (Some(w), Some(s)) if now + w <= s
                );
                let fits_extra = res.shadow.is_some() && (job.request.procs as u64) <= res.extra;
                if !(ends_by_shadow || fits_extra) {
                    let reason = format!(
                        "head reservation: job {} holds {} procs{}; backfill could delay it",
                        res.job.0,
                        res.need,
                        match res.shadow {
                            Some(s) => format!(" until t={s}"),
                            None => " with no completion forecast".to_string(),
                        }
                    );
                    if observed {
                        observe_defer(job, &reason, now, cycle);
                    }
                    events.push(BrokerEvent::Deferred { id: job.id, reason });
                    continue 'jobs;
                }
                charge_extra = !ends_by_shadow;
            }

            // resolve the shared derivation for this job's shape
            let key = ShapeKey::of(&jobs[idx].request);
            let base: &Loads = match base_override {
                Some(b) => b,
                None => {
                    if !bases.contains_key(&key) {
                        let req = &jobs[idx].request;
                        let derived = Loads::derive(
                            snap,
                            &req.compute_weights,
                            &req.network_weights,
                            req.ppn,
                        )
                        .map_err(|e| e.to_string());
                        bases.insert(key.clone(), derived);
                    }
                    match bases.get(&key).expect("just inserted") {
                        Ok(b) => b,
                        Err(e) => {
                            let reason = e.clone();
                            let job = &jobs[idx];
                            if observed {
                                observe_defer(job, &reason, now, cycle);
                            }
                            events.push(BrokerEvent::Deferred { id: job.id, reason });
                            if !self.config.backfill {
                                break 'jobs;
                            }
                            continue 'jobs;
                        }
                    }
                }
            };

            // reservation-restricted view, shared until the ledger changes
            if !views.contains_key(&key) {
                views.insert(key.clone(), self.restrict(base));
            }
            let outcome: Result<Lease, PlaceFailure> = match views.get(&key).expect("just inserted")
            {
                Ok(view) => self.place_on(view, &jobs[idx], snap),
                Err(fail) => Err(fail.clone()),
            };

            match outcome {
                Ok(lease) => {
                    if observed {
                        observe_start(&jobs[idx], &lease, now, cycle);
                        if head_res.is_some() {
                            nlrm_obs::ctx::inc("broker_backfill_started_total");
                        }
                    }
                    if charge_extra {
                        if let Some(res) = head_res.as_mut() {
                            res.extra = res.extra.saturating_sub(jobs[idx].request.procs as u64);
                        }
                    }
                    events.push(BrokerEvent::Started(Box::new(lease.clone())));
                    self.commit_start(&jobs[idx], lease, now);
                    started[idx] = true;
                    views.clear();
                }
                Err(fail) => {
                    let capacity_blocked = matches!(fail, PlaceFailure::Capacity(_));
                    let reason = fail.into_message();
                    let job = &jobs[idx];
                    if observed {
                        observe_defer(job, &reason, now, cycle);
                    }
                    events.push(BrokerEvent::Deferred { id: job.id, reason });
                    // the first capacity-blocked job arms the head
                    // reservation — unless it could never fit even an idle
                    // cluster, which completions cannot cure
                    if head_res.is_none() && capacity_blocked {
                        let need = job.request.procs as u64;
                        if need <= base.total_capacity() {
                            let free = self.free_capacity(base);
                            let (shadow, extra) = self.head_forecast(need, free, now);
                            head_res = Some(HeadReservation {
                                job: job.id,
                                need,
                                shadow,
                                extra,
                            });
                        }
                    }
                    if !self.config.backfill {
                        break 'jobs;
                    }
                }
            }
        }

        self.queue = jobs
            .into_iter()
            .zip(started)
            .filter(|&(_, s)| !s)
            .map(|(j, _)| j)
            .collect();
        if observed {
            nlrm_obs::ctx::set_gauge(
                "broker_head_reserved_procs",
                head_res.map(|r| r.need as f64).unwrap_or(0.0),
            );
            let base = base_override.or_else(|| bases.values().find_map(|r| r.as_ref().ok()));
            self.publish_queue_gauges(now, base);
            nlrm_obs::ctx::telemetry_tick(now);
        }
        events
    }

    /// Legacy per-job scheduling pass: FIFO with conservative backfill,
    /// one fresh derivation per queued job.
    fn tick_per_job(&mut self, snap: &ClusterSnapshot) -> Vec<BrokerEvent> {
        let observed = nlrm_obs::ctx::is_active();
        let now = snap.taken_at;
        self.cycles += 1;
        let cycle = self.cycles;
        let mut events = Vec::new();
        let mut still_queued: VecDeque<QueuedJob> = VecDeque::new();
        let mut head_blocked = false;
        let mut gauge_base: Option<Loads> = None;
        while let Some(mut job) = self.queue.pop_front() {
            if head_blocked && !self.config.backfill {
                still_queued.push_back(job);
                continue;
            }
            if observed && !job.announced {
                announce(&mut job, now, cycle);
            }
            let (base, outcome) = self.try_start(&job, snap);
            if base.is_some() {
                gauge_base = base;
            }
            match outcome {
                Ok(lease) => {
                    if observed {
                        observe_start(&job, &lease, now, cycle);
                    }
                    events.push(BrokerEvent::Started(Box::new(lease.clone())));
                    self.commit_start(&job, lease, now);
                }
                Err(reason) => {
                    if observed {
                        observe_defer(&job, &reason, now, cycle);
                    }
                    events.push(BrokerEvent::Deferred { id: job.id, reason });
                    head_blocked = true;
                    still_queued.push_back(job);
                }
            }
        }
        self.queue = still_queued;
        if observed {
            self.publish_queue_gauges(now, gauge_base.as_ref());
            nlrm_obs::ctx::telemetry_tick(now);
        }
        events
    }

    /// Book a granted lease: reserve its nodes, record run metadata (for
    /// the backfill forecast), move the job to `running`.
    fn commit_start(&mut self, job: &QueuedJob, lease: Lease, now: SimTime) {
        for &(node, procs) in &lease.allocation.nodes {
            *self.reserved.entry(node).or_insert(0) += procs;
        }
        let walltime = job.walltime.or(self.config.default_walltime);
        self.run_meta.insert(
            job.id,
            RunMeta {
                class: job.class,
                expected_end: walltime.map(|w| now + w),
            },
        );
        self.running.insert(job.id, lease);
    }

    /// Publish the queue/capacity gauge family the telemetry layer
    /// derives cluster health from. `base` carries the derived universe
    /// when the scheduling pass produced one; the capacity gauges keep
    /// their previous values otherwise (a tick with nothing queued
    /// derives nothing, and a stale reading beats a fabricated zero).
    fn publish_queue_gauges(&self, now: SimTime, base: Option<&Loads>) {
        nlrm_obs::ctx::set_gauge("broker_queue_depth", self.queue.len() as f64);
        nlrm_obs::ctx::set_gauge("broker_running_jobs", self.running.len() as f64);
        let mut by_class = [0u64; 3];
        let mut oldest = 0.0f64;
        for job in &self.queue {
            let slot = match job.class {
                PriorityClass::Batch => 0,
                PriorityClass::Normal => 1,
                PriorityClass::Urgent => 2,
            };
            by_class[slot] += 1;
            if let Some(at) = job.submitted_at {
                oldest = oldest.max(now.since(at).as_secs_f64());
            }
        }
        nlrm_obs::ctx::set_gauge("broker_queue_depth_batch", by_class[0] as f64);
        nlrm_obs::ctx::set_gauge("broker_queue_depth_normal", by_class[1] as f64);
        nlrm_obs::ctx::set_gauge("broker_queue_depth_urgent", by_class[2] as f64);
        nlrm_obs::ctx::set_gauge("broker_oldest_wait_secs", oldest);
        if let Some(base) = base {
            let mut free = 0u64;
            let mut largest = 0u64;
            for (&n, &pc) in base.usable.iter().zip(&base.pc) {
                let f = pc.saturating_sub(self.reserved_on(n)) as u64;
                free += f;
                largest = largest.max(f);
            }
            nlrm_obs::ctx::set_gauge("broker_total_capacity", base.total_capacity() as f64);
            nlrm_obs::ctx::set_gauge("broker_free_procs", free as f64);
            nlrm_obs::ctx::set_gauge("broker_largest_free_block", largest as f64);
        }
    }

    /// Free capacity across the derived universe under current
    /// reservations.
    fn free_capacity(&self, base: &Loads) -> u64 {
        base.usable
            .iter()
            .zip(&base.pc)
            .map(|(&n, &pc)| pc.saturating_sub(self.reserved_on(n)) as u64)
            .sum()
    }

    /// EASY shadow-time forecast for a head needing `need` procs with
    /// `free` currently available: walk running jobs by expected
    /// completion until enough capacity frees. Returns `(shadow time,
    /// capacity beyond the head's need at that time)`; `(None, 0)` when
    /// the running set makes no sufficient promise.
    fn head_forecast(&self, need: u64, free: u64, now: SimTime) -> (Option<SimTime>, u64) {
        let shortfall = need.saturating_sub(free);
        let mut ends: Vec<(SimTime, u64)> = self
            .running
            .values()
            .filter_map(|l| {
                let end = self.run_meta.get(&l.id)?.expected_end?;
                Some((end.max(now), l.allocation.total_procs() as u64))
            })
            .collect();
        ends.sort_unstable_by_key(|&(t, _)| t);
        let mut freed = 0u64;
        for (end, procs) in ends {
            freed += procs;
            if freed >= shortfall {
                return (Some(end), free + freed - need);
            }
        }
        (None, 0)
    }

    /// Shrink a derivation's capacities by current reservations, dropping
    /// fully-booked nodes.
    fn restrict(&self, base: &Loads) -> Result<Loads, PlaceFailure> {
        let mut usable = Vec::new();
        let mut cl = Vec::new();
        let mut pc = Vec::new();
        for (i, &node) in base.usable.iter().enumerate() {
            let free = base.pc[i].saturating_sub(self.reserved_on(node));
            if free > 0 {
                usable.push(node);
                cl.push(base.cl[i]);
                pc.push(free);
            }
        }
        if usable.is_empty() {
            return Err(PlaceFailure::Capacity("all nodes fully reserved".into()));
        }
        Ok(Loads::from_parts(usable, cl, base.nl.clone(), pc))
    }

    /// Attempt to place one job (legacy path): derive fresh, then place.
    /// Also hands back the unrestricted derivation (when one succeeded)
    /// so the caller can publish capacity gauges without re-deriving.
    fn try_start(
        &self,
        job: &QueuedJob,
        snap: &ClusterSnapshot,
    ) -> (Option<Loads>, Result<Lease, String>) {
        let req = &job.request;
        let loads = match Loads::derive(snap, &req.compute_weights, &req.network_weights, req.ppn) {
            Ok(l) => l,
            Err(e) => return (None, Err(e.to_string())),
        };
        let outcome = match self.restrict(&loads) {
            Ok(adjusted) => self
                .place_on(&adjusted, job, snap)
                .map_err(PlaceFailure::into_message),
            Err(fail) => Err(fail.into_message()),
        };
        (Some(loads), outcome)
    }

    /// Score and place one job against a reservation-restricted view.
    fn place_on(
        &self,
        adjusted: &Loads,
        job: &QueuedJob,
        snap: &ClusterSnapshot,
    ) -> Result<Lease, PlaceFailure> {
        let req = &job.request;
        let free_capacity = adjusted.total_capacity();
        if free_capacity < req.procs as u64 {
            return Err(PlaceFailure::Capacity(format!(
                "insufficient free capacity: {free_capacity} < {}",
                req.procs
            )));
        }
        let candidates = generate_all_candidates(adjusted, req.procs, req.alpha, req.beta);
        if candidates.is_empty() {
            return Err(PlaceFailure::Capacity(
                "no candidate group can host the request".into(),
            ));
        }
        let selection = select_best(adjusted, &candidates, req.alpha, req.beta);
        let winner = &candidates[selection.best];

        // §6 deferral: is even the best group too loaded? A winner node
        // missing from the snapshot (its node-state record vanished after
        // the universe was derived) defers rather than panics.
        if let Some(limit) = self.config.max_load_per_core {
            let mut load = 0.0;
            let mut cores = 0.0;
            for &node in &winner.nodes {
                let Some(info) = snap.info(node) else {
                    return Err(PlaceFailure::Advisory(format!(
                        "node {node} has no sample in the snapshot (stale or partial view)"
                    )));
                };
                load += info.sample.cpu_load.m1;
                cores += info.sample.spec.cores as f64;
            }
            let per_core = if cores > 0.0 { load / cores } else { 0.0 };
            if per_core > limit {
                return Err(PlaceFailure::Advisory(format!(
                    "cluster too loaded: best group at {per_core:.2} load/core (> {limit})"
                )));
            }
        }

        let selected = winner.nodes.clone();
        let mean_cl =
            selected.iter().map(|&u| adjusted.cl_of(u)).sum::<f64>() / selected.len() as f64;
        if nlrm_obs::ctx::is_active() {
            let now = snap.taken_at;
            // instant marks: scoring and placement consume no virtual time
            // in this simulation, but their attributes record what the
            // decision saw (candidate count, winning cost, data freshness)
            nlrm_obs::ctx::span_closed(
                job.id.trace(),
                job.root_span,
                "scoring",
                "broker/alloc",
                now,
                now,
                vec![
                    ("candidates".into(), candidates.len().to_string()),
                    ("best_cost".into(), format!("{:.6}", selection.best_cost)),
                    (
                        "snapshot_age_s".into(),
                        format!(
                            "{:.3}",
                            snap.max_sample_age().unwrap_or_default().as_secs_f64()
                        ),
                    ),
                ],
            );
            let node_list: Vec<String> = selected.iter().map(|n| n.to_string()).collect();
            nlrm_obs::ctx::span_closed(
                job.id.trace(),
                job.root_span,
                "placement",
                "broker/alloc",
                now,
                now,
                vec![
                    ("nodes".into(), node_list.join(",")),
                    ("mean_compute_load".into(), format!("{mean_cl:.4}")),
                ],
            );
        }
        Ok(Lease {
            id: job.id,
            name: job.name.clone(),
            trace: job.id.trace(),
            root_span: job.root_span,
            allocation: Allocation {
                policy: "network-load-aware/broker".into(),
                rank_map: Allocation::block_rank_map(&winner.assignment()),
                nodes: winner.assignment(),
                diagnostics: Diagnostics {
                    total_cost: selection.best_cost,
                    mean_compute_load: mean_cl,
                    mean_network_load: group_mean_network_load(adjusted, &selected),
                    explain: Some(explain_selection(
                        &candidates,
                        &selection,
                        req.alpha,
                        req.beta,
                        EXPLAIN_TOP_K,
                    )),
                    candidate_costs: selection.costs,
                },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_obs::{install, Obs};

    fn snapshot(n: usize, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap()
    }

    fn req(procs: u32) -> AllocationRequest {
        AllocationRequest::new(procs, Some(4), 0.3, 0.7)
    }

    /// Move a snapshot's clock forward without staling its samples (tests
    /// that span virtual minutes would otherwise trip staleness exclusion).
    fn advance(snap: &mut ClusterSnapshot, now: SimTime) {
        snap.taken_at = now;
        for n in snap.nodes.iter_mut() {
            n.sample.taken_at = now;
        }
    }

    fn no_defer() -> BrokerConfig {
        BrokerConfig {
            backfill: true,
            max_load_per_core: None,
            ..BrokerConfig::default()
        }
    }

    fn external_lease(id: u64, nodes: Vec<(NodeId, u32)>) -> Lease {
        Lease {
            id: JobId(id),
            name: format!("external-{id}"),
            trace: JobId(id).trace(),
            root_span: None,
            allocation: Allocation {
                policy: "external".into(),
                rank_map: Allocation::block_rank_map(&nodes),
                nodes,
                diagnostics: Diagnostics::default(),
            },
        }
    }

    #[test]
    fn jobs_start_and_complete() {
        let snap = snapshot(8, 3);
        let mut broker = Broker::new(no_defer());
        let a = broker.submit("job-a", req(16)).unwrap();
        let events = broker.tick(&snap);
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], BrokerEvent::Started(l) if l.id == a));
        assert_eq!(broker.running().len(), 1);
        assert!(broker.queued().is_empty());
        let lease = broker.complete(a).unwrap();
        assert_eq!(lease.allocation.total_procs(), 16);
        assert!(broker.running().is_empty());
        // reservations cleared
        for node in lease.allocation.node_list() {
            assert_eq!(broker.reserved_on(node), 0);
        }
    }

    #[test]
    fn concurrent_jobs_never_double_book() {
        // 8 nodes × 4 ppn = 32 capacity; two 16-proc jobs fill it exactly
        let snap = snapshot(8, 3);
        let mut broker = Broker::new(no_defer());
        broker.submit("a", req(16)).unwrap();
        broker.submit("b", req(16)).unwrap();
        broker.submit("c", req(16)).unwrap();
        let events = broker.tick(&snap);
        let started: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, BrokerEvent::Started(_)))
            .collect();
        assert_eq!(started.len(), 2, "only two jobs fit");
        assert_eq!(broker.queued().len(), 1);
        // per-node reservations never exceed ppn
        for i in 0..8u32 {
            assert!(broker.reserved_on(NodeId(i)) <= 4);
        }
        // total reserved == 32
        let total: u32 = (0..8u32).map(|i| broker.reserved_on(NodeId(i))).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn queued_job_starts_after_completion() {
        let snap = snapshot(4, 5); // 16 capacity
        let mut broker = Broker::new(no_defer());
        let a = broker.submit("a", req(16)).unwrap();
        let b = broker.submit("b", req(16)).unwrap();
        broker.tick(&snap);
        assert_eq!(broker.queued(), vec![b]);
        broker.complete(a);
        let events = broker.tick(&snap);
        assert!(matches!(&events[0], BrokerEvent::Started(l) if l.id == b));
    }

    #[test]
    fn backfill_lets_small_jobs_jump_a_blocked_head() {
        let snap = snapshot(4, 5); // 16 capacity
        let mut broker = Broker::new(no_defer());
        broker.submit("big-running", req(12)).unwrap();
        broker.tick(&snap); // 12 reserved, 4 free
        let big = broker.submit("big-blocked", req(16)).unwrap();
        let small = broker.submit("small", req(4)).unwrap();
        let events = broker.tick(&snap);
        // head deferred with a capacity reservation; the small job ends by
        // the shadow time (same default walltime, same start), so EASY
        // lets it jump
        assert!(matches!(&events[0], BrokerEvent::Deferred { id, .. } if *id == big));
        assert!(matches!(&events[1], BrokerEvent::Started(l) if l.id == small));
        assert_eq!(broker.queued(), vec![big]);
    }

    #[test]
    fn no_backfill_preserves_strict_fifo() {
        let snap = snapshot(4, 5);
        let mut broker = Broker::new(BrokerConfig {
            backfill: false,
            max_load_per_core: None,
            ..BrokerConfig::default()
        });
        broker.submit("running", req(12)).unwrap();
        broker.tick(&snap);
        let big = broker.submit("big", req(16)).unwrap();
        let small = broker.submit("small", req(4)).unwrap();
        let events = broker.tick(&snap);
        assert_eq!(events.len(), 1, "only the head is examined");
        assert!(matches!(&events[0], BrokerEvent::Deferred { id, .. } if *id == big));
        assert_eq!(broker.queued(), vec![big, small]);
    }

    #[test]
    fn overloaded_cluster_defers_jobs() {
        let mut cluster = nlrm_cluster::iitk::small_cluster_with_profile(
            6,
            nlrm_cluster::ClusterProfile::overloaded(),
            7,
        );
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(600))
            .unwrap();
        let mut broker = Broker::new(BrokerConfig {
            backfill: true,
            max_load_per_core: Some(0.9),
            ..BrokerConfig::default()
        });
        broker.submit("urgent", req(8)).unwrap();
        let events = broker.tick(&snap);
        assert!(
            matches!(&events[0], BrokerEvent::Deferred { reason, .. } if reason.contains("too loaded")),
            "expected load deferral, got {events:?}"
        );
    }

    #[test]
    fn cancel_removes_from_queue() {
        let snap = snapshot(4, 5);
        let mut broker = Broker::new(no_defer());
        broker.submit("running", req(16)).unwrap();
        broker.tick(&snap);
        let z = broker.submit("doomed", req(8)).unwrap();
        assert!(broker.cancel(z));
        assert!(!broker.cancel(z));
        assert!(broker.queued().is_empty());
    }

    #[test]
    fn cancel_running_job_releases_reservations() {
        let snap = snapshot(4, 5); // 16 capacity
        let mut broker = Broker::new(no_defer());
        let a = broker.submit("doomed-runner", req(12)).unwrap();
        broker.tick(&snap);
        assert_eq!(broker.running().len(), 1);
        assert_eq!(broker.total_reserved(), 12);
        // cancelling a *running* job must release its nodes (it used to be
        // silently ignored, leaking the reservation forever)
        assert!(broker.cancel(a));
        assert!(broker.running().is_empty());
        assert_eq!(
            broker.total_reserved(),
            0,
            "reservations must drain to zero"
        );
        assert!(!broker.cancel(a), "second cancel finds nothing");
        // the freed capacity is immediately schedulable again
        let b = broker.submit("next", req(16)).unwrap();
        let events = broker.tick(&snap);
        assert!(matches!(&events[0], BrokerEvent::Started(l) if l.id == b));
    }

    #[test]
    fn cancel_at_closes_running_jobs_root_span() {
        let snap = snapshot(4, 5);
        let now = snap.taken_at;
        let obs = Obs::new();
        let _g = install(&obs);
        let mut broker = Broker::new(no_defer());
        let a = broker.submit_at("traced-runner", req(8), now).unwrap();
        broker.tick(&snap);
        let later = now + Duration::from_secs(50);
        assert!(broker.cancel_at(a, later));
        let spans = obs.spans.trace_spans(a.trace());
        let root = spans.iter().find(|s| s.kind == "job").unwrap();
        assert_eq!(root.end, Some(later), "root span must be closed");
        assert!(root
            .attrs
            .iter()
            .any(|(k, v)| k == "cancelled" && v == "true"));
        assert_eq!(obs.journal.count_of("job_cancelled"), 1);
        assert_eq!(broker.total_reserved(), 0);
    }

    #[test]
    fn adopted_lease_ids_never_collide_with_submissions() {
        let snap = snapshot(8, 3);
        let mut broker = Broker::new(no_defer());
        // a lease adopted under the id the broker would assign next
        let _ = broker.adopt_lease(external_lease(0, vec![(NodeId(0), 4)]));
        assert_eq!(broker.total_reserved(), 4);
        let id = broker.submit("mine", req(4)).unwrap();
        assert_ne!(
            id,
            JobId(0),
            "submit must never reuse an adopted lease's id"
        );
        broker.tick(&snap);
        broker.complete(id).expect("submitted job ran");
        broker.complete(JobId(0)).expect("adopted lease still held");
        assert_eq!(
            broker.total_reserved(),
            0,
            "an id collision leaks reservations"
        );
    }

    #[test]
    fn duplicate_adoption_rejected() {
        let mut broker = Broker::new(no_defer());
        broker
            .adopt_lease(external_lease(7, vec![(NodeId(1), 2)]))
            .unwrap();
        let err = broker
            .adopt_lease(external_lease(7, vec![(NodeId(2), 2)]))
            .unwrap_err();
        assert!(matches!(err, AllocError::InvalidRequest(_)));
        // the rejected duplicate reserved nothing
        assert_eq!(broker.total_reserved(), 2);
        // and ids resume past the adopted one
        let id = broker.submit("next", req(4)).unwrap();
        assert_eq!(id, JobId(8));
    }

    #[test]
    fn missing_snapshot_sample_defers_instead_of_panicking() {
        // derive a universe, then drop one node's record from the snapshot
        // — the §6 check used to hit `.expect("usable node has sample")`
        let mut snap = snapshot(2, 7);
        let shape = req(8);
        let base = Loads::derive(
            &snap,
            &shape.compute_weights,
            &shape.network_weights,
            shape.ppn,
        )
        .unwrap();
        let gone = *base.usable.last().unwrap();
        snap.nodes.retain(|n| n.node != gone);
        let mut broker = Broker::new(BrokerConfig {
            max_load_per_core: Some(100.0),
            ..BrokerConfig::default()
        });
        broker.submit("wants-both-nodes", req(8)).unwrap();
        let events = broker.tick_with_loads(&base, &snap);
        assert!(
            matches!(&events[0], BrokerEvent::Deferred { reason, .. } if reason.contains("no sample")),
            "expected a deferral naming the missing sample, got {events:?}"
        );
        assert!(broker.running().is_empty());
    }

    #[test]
    fn batched_cycle_derives_at_least_10x_fewer_times() {
        let snap = snapshot(8, 3);
        let derives_for = |mode: SchedMode| {
            let mut broker = Broker::new(BrokerConfig { mode, ..no_defer() });
            for i in 0..40 {
                broker.submit(format!("j{i}"), req(4)).unwrap();
            }
            let obs = Obs::new();
            let g = install(&obs);
            broker.tick(&snap);
            drop(g);
            obs.metrics.counter_value("loads_derive_total")
        };
        let per_job = derives_for(SchedMode::PerJob);
        let batched = derives_for(SchedMode::Batched { max_per_tick: 64 });
        assert!(batched >= 1, "batched tick derives at least once");
        assert!(
            per_job >= 10 * batched,
            "batched cycle must derive ≥10x fewer times per tick: per-job {per_job}, batched {batched}"
        );
    }

    #[test]
    fn reserved_head_starts_under_continuous_small_arrivals() {
        // 4 nodes × 4 ppn = 16 capacity. A 12-proc job runs with a 600 s
        // walltime; a 16-proc head blocks behind it while a small job
        // arrives every minute. Conservative backfill starved the head
        // forever (each small job grabbed the 4 free procs); the head
        // reservation defers them instead.
        let mut snap = snapshot(4, 5);
        let t0 = snap.taken_at;
        let mut broker = Broker::new(no_defer());
        let runner = broker
            .submit_opts(
                "runner",
                req(12),
                SubmitOptions {
                    walltime: Some(Duration::from_secs(600)),
                    submitted_at: Some(t0),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        broker.tick(&snap);
        let head = broker.submit_at("head-16", req(16), t0).unwrap();
        let mut head_started = false;
        for minute in 1..=12u64 {
            let now = t0 + Duration::from_secs(60 * minute);
            advance(&mut snap, now);
            broker
                .submit_opts(
                    format!("small-{minute}"),
                    req(4),
                    SubmitOptions {
                        walltime: Some(Duration::from_secs(600)),
                        submitted_at: Some(now),
                        ..SubmitOptions::default()
                    },
                )
                .unwrap();
            if minute == 10 {
                // the runner completes on schedule
                broker.complete(runner).unwrap();
            }
            let events = broker.tick(&snap);
            for ev in &events {
                if let BrokerEvent::Started(l) = ev {
                    if l.id == head {
                        head_started = true;
                    }
                    assert!(
                        l.id == head || head_started,
                        "no small job may start while it could delay the reserved head"
                    );
                }
            }
        }
        assert!(head_started, "the reserved head must eventually start");
    }

    #[test]
    fn easy_backfill_rejects_jobs_that_would_outlive_the_shadow() {
        // 12-proc runner with 600 s walltime; 16-proc head blocked. A
        // small job promising 2000 s cannot finish by the shadow time and
        // does not fit the extra capacity (16 - 16 = 0), so it must wait.
        let snap = snapshot(4, 5);
        let t0 = snap.taken_at;
        let mut broker = Broker::new(no_defer());
        broker
            .submit_opts(
                "runner",
                req(12),
                SubmitOptions {
                    walltime: Some(Duration::from_secs(600)),
                    submitted_at: Some(t0),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        broker.tick(&snap);
        broker.submit_at("head-16", req(16), t0).unwrap();
        let slow = broker
            .submit_opts(
                "slow-small",
                req(4),
                SubmitOptions {
                    walltime: Some(Duration::from_secs(2000)),
                    submitted_at: Some(t0),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let events = broker.tick(&snap);
        assert!(
            matches!(&events[1], BrokerEvent::Deferred { id, reason }
                if *id == slow && reason.contains("head reservation")),
            "a job outliving the shadow must defer, got {events:?}"
        );
    }

    #[test]
    fn priority_classes_order_the_batch() {
        // 16 capacity, jobs of 8: only two fit. The urgent job submitted
        // last must start; the batch job submitted first must wait.
        let snap = snapshot(4, 5);
        let mut broker = Broker::new(no_defer());
        let batch = broker
            .submit_opts(
                "batch",
                req(8),
                SubmitOptions {
                    class: PriorityClass::Batch,
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let normal = broker.submit("normal", req(8)).unwrap();
        let urgent = broker
            .submit_opts(
                "urgent",
                req(8),
                SubmitOptions {
                    class: PriorityClass::Urgent,
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let events = broker.tick(&snap);
        let started: Vec<JobId> = events
            .iter()
            .filter_map(|e| match e {
                BrokerEvent::Started(l) => Some(l.id),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![urgent, normal]);
        assert_eq!(broker.queued(), vec![batch]);
    }

    #[test]
    fn aging_promotes_long_waiters_over_fresh_higher_classes() {
        // a Batch job that has waited 150 s (150 points at the default
        // aging rate) outranks a fresh Normal job (100 points)
        let mut snap = snapshot(4, 5);
        let t0 = snap.taken_at;
        let mut broker = Broker::new(no_defer());
        // fill the cluster so the first tick starts nothing
        let filler = broker.submit_at("filler", req(16), t0).unwrap();
        broker.tick(&snap);
        let old_batch = broker
            .submit_opts(
                "old-batch",
                req(16),
                SubmitOptions {
                    class: PriorityClass::Batch,
                    submitted_at: Some(t0),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let now = t0 + Duration::from_secs(150);
        advance(&mut snap, now);
        let fresh_normal = broker.submit_at("fresh-normal", req(16), now).unwrap();
        broker.complete(filler);
        let events = broker.tick(&snap);
        assert!(
            matches!(&events[0], BrokerEvent::Started(l) if l.id == old_batch),
            "the aged batch job must outrank the fresh normal one, got {events:?}"
        );
        assert_eq!(broker.queued(), vec![fresh_normal]);
    }

    #[test]
    fn admission_reject_bounds_the_queue() {
        let mut broker = Broker::new(BrokerConfig {
            admission: AdmissionPolicy::Reject { max_queue: 2 },
            ..no_defer()
        });
        let obs = Obs::new();
        let _g = install(&obs);
        broker.submit("a", req(4)).unwrap();
        broker.submit("b", req(4)).unwrap();
        let err = broker.submit("c", req(4)).unwrap_err();
        assert!(matches!(err, AllocError::QueueFull { depth: 2 }));
        assert_eq!(broker.queued().len(), 2);
        assert_eq!(obs.journal.count_of("job_rejected"), 1);
        assert_eq!(obs.metrics.counter_value("broker_jobs_rejected_total"), 1);
    }

    #[test]
    fn admission_shed_evicts_the_lowest_class() {
        let mut broker = Broker::new(BrokerConfig {
            admission: AdmissionPolicy::Shed { max_queue: 2 },
            ..no_defer()
        });
        let obs = Obs::new();
        let _g = install(&obs);
        let low = broker
            .submit_opts(
                "low",
                req(4),
                SubmitOptions {
                    class: PriorityClass::Batch,
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let keep = broker.submit("keep", req(4)).unwrap();
        let urgent = broker
            .submit_opts(
                "urgent",
                req(4),
                SubmitOptions {
                    class: PriorityClass::Urgent,
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        assert_eq!(broker.queued(), vec![keep, urgent], "batch job shed");
        assert!(!broker.cancel(low), "shed job is gone");
        assert_eq!(obs.journal.count_of("job_shed"), 1);
        // a newcomer lower than every queued job bounces instead
        let err = broker
            .submit_opts(
                "too-low",
                req(4),
                SubmitOptions {
                    class: PriorityClass::Batch,
                    ..SubmitOptions::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, AllocError::QueueFull { .. }));
    }

    #[test]
    fn traces_follow_the_job_lifecycle() {
        let snap = snapshot(8, 3);
        let now = snap.taken_at;
        let submit = SimTime::from_micros(now.as_micros().saturating_sub(60_000_000));
        let obs = Obs::new();
        let _g = install(&obs);
        let mut broker = Broker::new(no_defer());
        let a = broker.submit_at("traced", req(16), submit).unwrap();
        let events = broker.tick(&snap);
        assert!(matches!(&events[0], BrokerEvent::Started(l)
            if l.trace == a.trace() && l.root_span.is_some()));
        let done = now + Duration::from_secs(100);
        let lease = broker.complete_at(a, done).unwrap();
        assert_eq!(lease.id, a);

        let spans = obs.spans.trace_spans(a.trace());
        let root = spans.iter().find(|s| s.kind == "job").unwrap();
        assert_eq!(root.start, submit);
        assert_eq!(root.end, Some(done));
        let kinds: Vec<&str> = spans.iter().map(|s| s.kind.as_str()).collect();
        for k in ["queue_wait", "scoring", "placement"] {
            assert!(kinds.contains(&k), "missing {k} span in {kinds:?}");
        }
        let wait = spans.iter().find(|s| s.kind == "queue_wait").unwrap();
        assert_eq!(wait.parent, Some(root.id));
        assert_eq!(wait.duration(), now - submit);
        // the span and the histogram tell the same story
        let h = obs
            .metrics
            .histogram_snapshot("broker_job_wait_secs")
            .unwrap();
        assert_eq!(h.sum(), wait.duration().as_secs_f64());
        // every child nests inside the root
        for s in &spans {
            assert!(s.start >= root.start);
            assert!(s.end.unwrap() <= done);
        }
        // critical path tiles the whole trace
        let path = obs.spans.critical_path(a.trace()).unwrap();
        assert_eq!(path.total(), done - submit);
        // alloc events are greppable by trace id
        let granted = &obs.journal.events_of("alloc_granted")[0];
        assert!(granted
            .fields
            .iter()
            .any(|(k, v)| k == "trace" && v == &a.trace().to_string()));
    }

    #[test]
    fn invalid_submission_rejected() {
        let mut broker = Broker::new(no_defer());
        assert!(broker
            .submit("bad", AllocationRequest::new(0, None, 0.5, 0.5))
            .is_err());
    }
}
