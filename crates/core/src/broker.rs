//! A multi-job resource broker on top of the allocator.
//!
//! The paper deploys its allocator as a *resource broker* users submit MPI
//! jobs to (abstract, §1). One job at a time is what the evaluation runs;
//! this module supplies the broker around it for continuous operation:
//! a FIFO queue with optional backfill, **reservation accounting** so that
//! concurrently running jobs never double-book the effective processor
//! count, and wait-deferral via the §6 advisor thresholds.

use crate::candidate::generate_all_candidates;
use crate::loads::Loads;
use crate::request::{AllocError, Allocation, AllocationRequest, Diagnostics};
use crate::select::{explain_selection, group_mean_network_load, select_best};
use nlrm_monitor::ClusterSnapshot;
use nlrm_obs::span::{SpanId, TraceId};
use nlrm_sim_core::time::SimTime;
use nlrm_topology::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// Histogram bucket bounds (seconds) for job queue-wait time.
const JOB_WAIT_BOUNDS: &[f64] = &[0.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0, 3600.0];

/// Top-k candidate groups kept in a decision's explain trace.
const EXPLAIN_TOP_K: usize = 3;

/// Broker-assigned job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// The job's trace id: deterministic, so executors and reports can name
    /// a job's trace without the broker in hand.
    pub fn trace(self) -> TraceId {
        TraceId::for_job(self.0)
    }
}

/// Broker configuration.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Try jobs behind a blocked queue head (conservative backfill: a later
    /// job may start only if the head still cannot).
    pub backfill: bool,
    /// Defer jobs whose best group's mean CPU load per core exceeds this
    /// (§6's "recommend waiting"); `None` disables deferral.
    pub max_load_per_core: Option<f64>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            backfill: true,
            max_load_per_core: Some(1.5),
        }
    }
}

/// A queued job.
#[derive(Debug, Clone)]
struct QueuedJob {
    id: JobId,
    name: String,
    request: AllocationRequest,
    /// Virtual submit time, when known (`submit_at`); feeds the
    /// queue-wait histogram.
    submitted_at: Option<SimTime>,
    /// Whether an `alloc_requested` event was already journaled.
    announced: bool,
    /// Root span of the job's trace, opened when the job is announced to
    /// an installed observer.
    root_span: Option<SpanId>,
}

/// A running job's lease.
#[derive(Debug, Clone)]
pub struct Lease {
    /// The job.
    pub id: JobId,
    /// Job display name.
    pub name: String,
    /// The job's trace id (always valid; equals `id.trace()`).
    pub trace: TraceId,
    /// Root span of the job's trace, when an observer recorded one — the
    /// parent under which execution spans should hang.
    pub root_span: Option<SpanId>,
    /// The allocation it holds.
    pub allocation: Allocation,
}

/// What happened during one scheduling pass.
#[derive(Debug, Clone)]
pub enum BrokerEvent {
    /// A job was granted nodes (boxed: a `Lease` carries a whole
    /// `Allocation` and dwarfs the deferral variant).
    Started(Box<Lease>),
    /// A job stayed queued.
    Deferred {
        /// The job.
        id: JobId,
        /// Why it did not start.
        reason: String,
    },
}

/// The resource broker.
#[derive(Debug, Clone, Default)]
pub struct Broker {
    config: BrokerConfig,
    queue: VecDeque<QueuedJob>,
    running: BTreeMap<JobId, Lease>,
    /// Processes reserved per node by running jobs.
    reserved: BTreeMap<NodeId, u32>,
    next_id: u64,
}

impl Broker {
    /// A broker with the given configuration.
    pub fn new(config: BrokerConfig) -> Self {
        Broker {
            config,
            ..Broker::default()
        }
    }

    /// Enqueue a job; returns its id. The request is validated on submit.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        request: AllocationRequest,
    ) -> Result<JobId, AllocError> {
        self.enqueue(name.into(), request, None)
    }

    /// Enqueue a job stamped with its virtual submit time, so scheduling
    /// passes can report how long it waited in queue.
    pub fn submit_at(
        &mut self,
        name: impl Into<String>,
        request: AllocationRequest,
        now: SimTime,
    ) -> Result<JobId, AllocError> {
        self.enqueue(name.into(), request, Some(now))
    }

    fn enqueue(
        &mut self,
        name: String,
        request: AllocationRequest,
        submitted_at: Option<SimTime>,
    ) -> Result<JobId, AllocError> {
        request.validate()?;
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(QueuedJob {
            id,
            name,
            request,
            submitted_at,
            announced: false,
            root_span: None,
        });
        Ok(id)
    }

    /// Jobs waiting, in queue order.
    pub fn queued(&self) -> Vec<JobId> {
        self.queue.iter().map(|j| j.id).collect()
    }

    /// Currently running leases.
    pub fn running(&self) -> Vec<&Lease> {
        self.running.values().collect()
    }

    /// Processes reserved on a node by running jobs.
    pub fn reserved_on(&self, node: NodeId) -> u32 {
        self.reserved.get(&node).copied().unwrap_or(0)
    }

    /// Install an externally-constructed lease into the broker's books
    /// (reserving its nodes). Lets callers plug alternative placement
    /// strategies into the same reservation accounting — the baseline
    /// brokers in the `multi_job_broker` experiment use this.
    pub fn adopt_lease(&mut self, lease: Lease) {
        for &(node, procs) in &lease.allocation.nodes {
            *self.reserved.entry(node).or_insert(0) += procs;
        }
        self.running.insert(lease.id, lease);
    }

    /// Release a finished job's nodes. Returns the lease, or `None` if the
    /// id is unknown (already completed or never started).
    pub fn complete(&mut self, id: JobId) -> Option<Lease> {
        let lease = self.running.remove(&id)?;
        for &(node, procs) in &lease.allocation.nodes {
            let r = self.reserved.get_mut(&node).expect("reservation exists");
            *r -= procs.min(*r);
            if *r == 0 {
                self.reserved.remove(&node);
            }
        }
        Some(lease)
    }

    /// [`Broker::complete`], additionally closing the job's root trace span
    /// at virtual time `now` so the trace's end-to-end duration matches the
    /// job's actual lifetime.
    pub fn complete_at(&mut self, id: JobId, now: SimTime) -> Option<Lease> {
        let lease = self.complete(id)?;
        if let Some(root) = lease.root_span {
            nlrm_obs::ctx::span_end(root, now);
        }
        Some(lease)
    }

    /// Cancel a queued job. Returns whether it was found in the queue.
    pub fn cancel(&mut self, id: JobId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|j| j.id != id);
        self.queue.len() != before
    }

    /// [`Broker::cancel`], additionally closing the job's root trace span
    /// at virtual time `now` (annotated `cancelled`) so a withdrawn job
    /// leaves a complete trace rather than a dangling open span.
    pub fn cancel_at(&mut self, id: JobId, now: SimTime) -> bool {
        let root = self
            .queue
            .iter()
            .find(|j| j.id == id)
            .and_then(|j| j.root_span);
        let found = self.cancel(id);
        if let Some(root) = root.filter(|_| found) {
            nlrm_obs::ctx::span_annotate(root, "cancelled", "true");
            nlrm_obs::ctx::span_end(root, now);
        }
        found
    }

    /// One scheduling pass against a fresh snapshot: starts whatever fits
    /// (FIFO, with conservative backfill if configured) and reports what
    /// happened to every queued job it looked at.
    pub fn tick(&mut self, snap: &ClusterSnapshot) -> Vec<BrokerEvent> {
        use nlrm_obs::{EventKind, Severity};
        let observed = nlrm_obs::ctx::is_active();
        let now = snap.taken_at;
        let mut events = Vec::new();
        let mut still_queued: VecDeque<QueuedJob> = VecDeque::new();
        let mut head_blocked = false;
        while let Some(mut job) = self.queue.pop_front() {
            if head_blocked && !self.config.backfill {
                still_queued.push_back(job);
                continue;
            }
            if observed && !job.announced {
                job.announced = true;
                let at = job.submitted_at.unwrap_or(now);
                job.root_span = nlrm_obs::ctx::span_start_kv(
                    job.id.trace(),
                    None,
                    "job",
                    "broker/jobs",
                    at,
                    vec![
                        ("job".into(), job.name.clone()),
                        ("procs".into(), job.request.procs.to_string()),
                    ],
                );
                nlrm_obs::ctx::emit_kv(
                    Severity::Info,
                    at,
                    EventKind::AllocRequested {
                        job: job.name.clone(),
                        procs: job.request.procs,
                    },
                    vec![("trace".into(), job.id.trace().to_string())],
                );
            }
            match self.try_start(&job, snap) {
                Ok(lease) => {
                    if observed {
                        nlrm_obs::ctx::emit_kv(
                            Severity::Info,
                            now,
                            EventKind::AllocGranted {
                                job: job.name.clone(),
                                nodes: lease.allocation.node_list().len(),
                                cost: lease.allocation.diagnostics.total_cost,
                            },
                            vec![("trace".into(), job.id.trace().to_string())],
                        );
                        // the queue-wait span covers exactly the interval the
                        // wait histogram observes
                        nlrm_obs::ctx::span_closed(
                            job.id.trace(),
                            job.root_span,
                            "queue_wait",
                            "broker/queue",
                            job.submitted_at.unwrap_or(now),
                            now,
                            vec![("job".into(), job.name.clone())],
                        );
                        if let Some(at) = job.submitted_at {
                            nlrm_obs::ctx::observe(
                                "broker_job_wait_secs",
                                JOB_WAIT_BOUNDS,
                                (now - at).as_secs_f64(),
                            );
                        }
                    }
                    events.push(BrokerEvent::Started(Box::new(lease.clone())));
                    for &(node, procs) in &lease.allocation.nodes {
                        *self.reserved.entry(node).or_insert(0) += procs;
                    }
                    self.running.insert(job.id, lease);
                }
                Err(reason) => {
                    if observed {
                        nlrm_obs::ctx::emit_kv(
                            Severity::Warn,
                            now,
                            EventKind::AllocDeferred {
                                job: job.name.clone(),
                                reason: reason.clone(),
                            },
                            vec![("trace".into(), job.id.trace().to_string())],
                        );
                        // instant mark on the trace; zero-width, so it never
                        // perturbs the critical path
                        nlrm_obs::ctx::span_closed(
                            job.id.trace(),
                            job.root_span,
                            "defer",
                            "broker/queue",
                            now,
                            now,
                            vec![("reason".into(), reason.clone())],
                        );
                    }
                    events.push(BrokerEvent::Deferred { id: job.id, reason });
                    head_blocked = true;
                    still_queued.push_back(job);
                }
            }
        }
        self.queue = still_queued;
        if observed {
            nlrm_obs::ctx::set_gauge("broker_queue_depth", self.queue.len() as f64);
            nlrm_obs::ctx::set_gauge("broker_running_jobs", self.running.len() as f64);
        }
        events
    }

    /// Attempt to place one job, respecting current reservations.
    fn try_start(&self, job: &QueuedJob, snap: &ClusterSnapshot) -> Result<Lease, String> {
        let req = &job.request;
        let loads = Loads::derive(snap, &req.compute_weights, &req.network_weights, req.ppn)
            .map_err(|e| e.to_string())?;
        // shrink capacities by reservations; drop fully-booked nodes
        let mut usable = Vec::new();
        let mut cl = Vec::new();
        let mut pc = Vec::new();
        for (i, &node) in loads.usable.iter().enumerate() {
            let free = loads.pc[i].saturating_sub(self.reserved_on(node));
            if free > 0 {
                usable.push(node);
                cl.push(loads.cl[i]);
                pc.push(free);
            }
        }
        if usable.is_empty() {
            return Err("all nodes fully reserved".into());
        }
        let free_capacity: u64 = pc.iter().map(|&p| p as u64).sum();
        if free_capacity < req.procs as u64 {
            return Err(format!(
                "insufficient free capacity: {free_capacity} < {}",
                req.procs
            ));
        }
        let adjusted = Loads::from_parts(usable, cl, loads.nl.clone(), pc);
        let candidates = generate_all_candidates(&adjusted, req.procs, req.alpha, req.beta);
        if candidates.is_empty() {
            return Err("no candidate group can host the request".into());
        }
        let selection = select_best(&adjusted, &candidates, req.alpha, req.beta);
        let winner = &candidates[selection.best];

        // §6 deferral: is even the best group too loaded?
        if let Some(limit) = self.config.max_load_per_core {
            let mut load = 0.0;
            let mut cores = 0.0;
            for &node in &winner.nodes {
                let info = snap.info(node).expect("usable node has sample");
                load += info.sample.cpu_load.m1;
                cores += info.sample.spec.cores as f64;
            }
            let per_core = if cores > 0.0 { load / cores } else { 0.0 };
            if per_core > limit {
                return Err(format!(
                    "cluster too loaded: best group at {per_core:.2} load/core (> {limit})"
                ));
            }
        }

        let selected = winner.nodes.clone();
        let mean_cl =
            selected.iter().map(|&u| adjusted.cl_of(u)).sum::<f64>() / selected.len() as f64;
        if nlrm_obs::ctx::is_active() {
            let now = snap.taken_at;
            // instant marks: scoring and placement consume no virtual time
            // in this simulation, but their attributes record what the
            // decision saw (candidate count, winning cost, data freshness)
            nlrm_obs::ctx::span_closed(
                job.id.trace(),
                job.root_span,
                "scoring",
                "broker/alloc",
                now,
                now,
                vec![
                    ("candidates".into(), candidates.len().to_string()),
                    ("best_cost".into(), format!("{:.6}", selection.best_cost)),
                    (
                        "snapshot_age_s".into(),
                        format!(
                            "{:.3}",
                            snap.max_sample_age().unwrap_or_default().as_secs_f64()
                        ),
                    ),
                ],
            );
            let node_list: Vec<String> = selected.iter().map(|n| n.to_string()).collect();
            nlrm_obs::ctx::span_closed(
                job.id.trace(),
                job.root_span,
                "placement",
                "broker/alloc",
                now,
                now,
                vec![
                    ("nodes".into(), node_list.join(",")),
                    ("mean_compute_load".into(), format!("{mean_cl:.4}")),
                ],
            );
        }
        Ok(Lease {
            id: job.id,
            name: job.name.clone(),
            trace: job.id.trace(),
            root_span: job.root_span,
            allocation: Allocation {
                policy: "network-load-aware/broker".into(),
                rank_map: Allocation::block_rank_map(&winner.assignment()),
                nodes: winner.assignment(),
                diagnostics: Diagnostics {
                    total_cost: selection.best_cost,
                    mean_compute_load: mean_cl,
                    mean_network_load: group_mean_network_load(&adjusted, &selected),
                    explain: Some(explain_selection(
                        &candidates,
                        &selection,
                        req.alpha,
                        req.beta,
                        EXPLAIN_TOP_K,
                    )),
                    candidate_costs: selection.costs,
                },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn snapshot(n: usize, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap()
    }

    fn req(procs: u32) -> AllocationRequest {
        AllocationRequest::new(procs, Some(4), 0.3, 0.7)
    }

    fn no_defer() -> BrokerConfig {
        BrokerConfig {
            backfill: true,
            max_load_per_core: None,
        }
    }

    #[test]
    fn jobs_start_and_complete() {
        let snap = snapshot(8, 3);
        let mut broker = Broker::new(no_defer());
        let a = broker.submit("job-a", req(16)).unwrap();
        let events = broker.tick(&snap);
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], BrokerEvent::Started(l) if l.id == a));
        assert_eq!(broker.running().len(), 1);
        assert!(broker.queued().is_empty());
        let lease = broker.complete(a).unwrap();
        assert_eq!(lease.allocation.total_procs(), 16);
        assert!(broker.running().is_empty());
        // reservations cleared
        for node in lease.allocation.node_list() {
            assert_eq!(broker.reserved_on(node), 0);
        }
    }

    #[test]
    fn concurrent_jobs_never_double_book() {
        // 8 nodes × 4 ppn = 32 capacity; two 16-proc jobs fill it exactly
        let snap = snapshot(8, 3);
        let mut broker = Broker::new(no_defer());
        broker.submit("a", req(16)).unwrap();
        broker.submit("b", req(16)).unwrap();
        broker.submit("c", req(16)).unwrap();
        let events = broker.tick(&snap);
        let started: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, BrokerEvent::Started(_)))
            .collect();
        assert_eq!(started.len(), 2, "only two jobs fit");
        assert_eq!(broker.queued().len(), 1);
        // per-node reservations never exceed ppn
        for i in 0..8u32 {
            assert!(broker.reserved_on(NodeId(i)) <= 4);
        }
        // total reserved == 32
        let total: u32 = (0..8u32).map(|i| broker.reserved_on(NodeId(i))).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn queued_job_starts_after_completion() {
        let snap = snapshot(4, 5); // 16 capacity
        let mut broker = Broker::new(no_defer());
        let a = broker.submit("a", req(16)).unwrap();
        let b = broker.submit("b", req(16)).unwrap();
        broker.tick(&snap);
        assert_eq!(broker.queued(), vec![b]);
        broker.complete(a);
        let events = broker.tick(&snap);
        assert!(matches!(&events[0], BrokerEvent::Started(l) if l.id == b));
    }

    #[test]
    fn backfill_lets_small_jobs_jump_a_blocked_head() {
        let snap = snapshot(4, 5); // 16 capacity
        let mut broker = Broker::new(no_defer());
        broker.submit("big-running", req(12)).unwrap();
        broker.tick(&snap); // 12 reserved, 4 free
        let big = broker.submit("big-blocked", req(16)).unwrap();
        let small = broker.submit("small", req(4)).unwrap();
        let events = broker.tick(&snap);
        // head deferred, small started via backfill
        assert!(matches!(&events[0], BrokerEvent::Deferred { id, .. } if *id == big));
        assert!(matches!(&events[1], BrokerEvent::Started(l) if l.id == small));
        assert_eq!(broker.queued(), vec![big]);
    }

    #[test]
    fn no_backfill_preserves_strict_fifo() {
        let snap = snapshot(4, 5);
        let mut broker = Broker::new(BrokerConfig {
            backfill: false,
            max_load_per_core: None,
        });
        broker.submit("running", req(12)).unwrap();
        broker.tick(&snap);
        let big = broker.submit("big", req(16)).unwrap();
        let small = broker.submit("small", req(4)).unwrap();
        let events = broker.tick(&snap);
        assert_eq!(events.len(), 1, "only the head is examined");
        assert!(matches!(&events[0], BrokerEvent::Deferred { id, .. } if *id == big));
        assert_eq!(broker.queued(), vec![big, small]);
    }

    #[test]
    fn overloaded_cluster_defers_jobs() {
        let mut cluster = nlrm_cluster::iitk::small_cluster_with_profile(
            6,
            nlrm_cluster::ClusterProfile::overloaded(),
            7,
        );
        let mut rt = MonitorRuntime::new(&cluster);
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(600))
            .unwrap();
        let mut broker = Broker::new(BrokerConfig {
            backfill: true,
            max_load_per_core: Some(0.9),
        });
        broker.submit("urgent", req(8)).unwrap();
        let events = broker.tick(&snap);
        assert!(
            matches!(&events[0], BrokerEvent::Deferred { reason, .. } if reason.contains("too loaded")),
            "expected load deferral, got {events:?}"
        );
    }

    #[test]
    fn cancel_removes_from_queue() {
        let snap = snapshot(4, 5);
        let mut broker = Broker::new(no_defer());
        broker.submit("running", req(16)).unwrap();
        broker.tick(&snap);
        let z = broker.submit("doomed", req(8)).unwrap();
        assert!(broker.cancel(z));
        assert!(!broker.cancel(z));
        assert!(broker.queued().is_empty());
    }

    #[test]
    fn traces_follow_the_job_lifecycle() {
        let snap = snapshot(8, 3);
        let now = snap.taken_at;
        let submit = SimTime::from_micros(now.as_micros().saturating_sub(60_000_000));
        let obs = nlrm_obs::Obs::new();
        let _g = nlrm_obs::install(&obs);
        let mut broker = Broker::new(no_defer());
        let a = broker.submit_at("traced", req(16), submit).unwrap();
        let events = broker.tick(&snap);
        assert!(matches!(&events[0], BrokerEvent::Started(l)
            if l.trace == a.trace() && l.root_span.is_some()));
        let done = now + Duration::from_secs(100);
        let lease = broker.complete_at(a, done).unwrap();
        assert_eq!(lease.id, a);

        let spans = obs.spans.trace_spans(a.trace());
        let root = spans.iter().find(|s| s.kind == "job").unwrap();
        assert_eq!(root.start, submit);
        assert_eq!(root.end, Some(done));
        let kinds: Vec<&str> = spans.iter().map(|s| s.kind.as_str()).collect();
        for k in ["queue_wait", "scoring", "placement"] {
            assert!(kinds.contains(&k), "missing {k} span in {kinds:?}");
        }
        let wait = spans.iter().find(|s| s.kind == "queue_wait").unwrap();
        assert_eq!(wait.parent, Some(root.id));
        assert_eq!(wait.duration(), now - submit);
        // the span and the histogram tell the same story
        let h = obs
            .metrics
            .histogram_snapshot("broker_job_wait_secs")
            .unwrap();
        assert_eq!(h.sum(), wait.duration().as_secs_f64());
        // every child nests inside the root
        for s in &spans {
            assert!(s.start >= root.start);
            assert!(s.end.unwrap() <= done);
        }
        // critical path tiles the whole trace
        let path = obs.spans.critical_path(a.trace()).unwrap();
        assert_eq!(path.total(), done - submit);
        // alloc events are greppable by trace id
        let granted = &obs.journal.events_of("alloc_granted")[0];
        assert!(granted
            .fields
            .iter()
            .any(|(k, v)| k == "trace" && v == &a.trace().to_string()));
    }

    #[test]
    fn invalid_submission_rejected() {
        let mut broker = Broker::new(no_defer());
        assert!(broker
            .submit("bad", AllocationRequest::new(0, None, 0.5, 0.5))
            .is_err());
    }
}
