//! Deterministic data-parallel helpers over scoped OS threads.
//!
//! The vendored dependency set has no `rayon`, so candidate evaluation
//! parallelizes with `std::thread::scope`: the input is split into one
//! contiguous chunk per worker, each worker maps its chunk in order, and
//! the per-chunk outputs are concatenated back in input order. Because
//! every output lands at the position of its input — regardless of thread
//! scheduling — callers observe exactly the serial result, which is what
//! lets `select_best` keep its winner byte-for-byte identical to the
//! serial path.

/// `NLRM_THREADS` when set and parseable (≥ 1).
fn thread_override() -> Option<usize> {
    let v = std::env::var("NLRM_THREADS").ok()?;
    v.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Number of worker threads to use: `NLRM_THREADS` when set (≥ 1),
/// otherwise the machine's available parallelism.
pub fn worker_threads() -> usize {
    thread_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Minimum items per worker before parallelism pays for thread spawn.
const MIN_CHUNK: usize = 256;

/// Map `f` over `0..len` deterministically, possibly in parallel.
///
/// `f(i)` must be pure with respect to ordering: the output vector holds
/// `f(0), f(1), …, f(len-1)` exactly as the serial loop would produce.
///
/// An explicit `NLRM_THREADS` bypasses the minimum-chunk heuristic, so
/// small inputs can still exercise (and tests can pin) the threaded path.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = match thread_override() {
        Some(n) => n.min(len),
        None => worker_threads().min(len.div_ceil(MIN_CHUNK)),
    }
    .max(1);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(len);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Map `f` over a slice deterministically, possibly in parallel.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_serial() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let parallel = par_map(&items, |&x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_small_inputs() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(3, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn thread_env_override_respected() {
        // worker_threads is a positive number regardless of env
        assert!(worker_threads() >= 1);
    }
}
