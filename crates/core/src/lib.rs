//! # nlrm-core
//!
//! The paper's contribution: the **network and load-aware node allocator**
//! (§3). Given a [`ClusterSnapshot`](nlrm_monitor::ClusterSnapshot) from the
//! monitoring subsystem and an [`AllocationRequest`],
//! it picks the group of nodes minimizing a weighted sum of compute and
//! network load.
//!
//! Pipeline (paper section in parentheses):
//!
//! 1. [`weights`] — attribute weight vectors: the SAW weights of Eq. 1, the
//!    latency/bandwidth weights of Eq. 2, and the α/β job mix of Eq. 4.
//! 2. [`saw`] — Simple Additive Weighting machinery (§3.2.1): sum
//!    normalization and complementing of maximization attributes.
//! 3. [`loads`] — per-node compute load `CL_v` (Eq. 1), pairwise network
//!    load `NL_(u,v)` (Eq. 2), and effective processor counts `pc_v` (Eq. 3).
//! 4. [`candidate`] — Algorithm 1: greedy candidate sub-graph per start node.
//! 5. [`select`] — Algorithm 2: total cost `T_G` (Eq. 4) and best-candidate
//!    selection.
//! 6. [`policies`] — the four allocation policies compared in §5 (random,
//!    sequential, load-aware, network-and-load-aware) plus a brute-force
//!    optimum for validating the heuristic on small clusters.
//! 7. [`advisor`] — the §6 extension: recommend *waiting* when the cluster
//!    is too loaded for any allocation to help; [`broker`] — the multi-job
//!    resource broker with reservation accounting and backfill.
//! 8. [`groups`] — the §3.3.2 scaling note: switch-level grouping so the
//!    algorithm scales past a few hundred nodes; [`slurm`] — the §6
//!    integration path: the allocator behind a SLURM-select-plugin-shaped
//!    interface.

pub mod advisor;
pub mod broker;
pub mod candidate;
pub mod groups;
pub mod loads;
pub mod par;
pub mod policies;
pub mod request;
pub mod saw;
pub mod scalable;
pub mod select;
pub mod slurm;
pub mod tiered;
pub mod weights;

pub use loads::{Loads, StalenessPolicy};
pub use policies::{
    BruteForcePolicy, LoadAwarePolicy, NetworkLoadAwarePolicy, Policy, RandomPolicy,
    SequentialPolicy,
};
pub use request::{AllocError, Allocation, AllocationRequest};
pub use scalable::{allocate_pruned, PrunedSelection};
pub use tiered::{EstimatedNl, NlRep, TieredNl};
pub use weights::{ComputeWeights, NetworkWeights};
