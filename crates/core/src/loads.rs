//! Deriving the allocator's inputs from a monitoring snapshot:
//! compute load `CL_v` (Eq. 1), network load `NL_(u,v)` (Eq. 2), and
//! effective processor count `pc_v` (Eq. 3).

use crate::request::AllocError;
use crate::saw::{saw_scores, Column, Criterion};
use crate::weights::{ComputeWeights, NetworkWeights};
use nlrm_monitor::{ClusterSnapshot, SymMatrix};
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::NodeId;
use std::collections::HashMap;

/// Everything Algorithms 1–2 need, derived once per allocation.
#[derive(Debug, Clone)]
pub struct Loads {
    /// Usable nodes (live, with fresh samples), ascending id order.
    pub usable: Vec<NodeId>,
    /// Compute load per usable node (parallel to `usable`). Lower is better.
    pub cl: Vec<f64>,
    /// Pairwise network load over the full node-id space; only entries
    /// between usable nodes are meaningful. Lower is better.
    pub nl: SymMatrix<f64>,
    /// Effective processor count per usable node (parallel to `usable`).
    pub pc: Vec<u32>,
    index_of: HashMap<NodeId, usize>,
}

/// Representative value of a windowed attribute: the mean of the 1/5/15-min
/// running means. Folding the windows keeps the paper's per-group weights
/// intact while still using all three histories.
fn windowed_rep(w: &WindowedValue) -> f64 {
    (w.m1 + w.m5 + w.m15) / 3.0
}

impl Loads {
    /// Derive loads from a snapshot.
    ///
    /// * `ppn` — when given, overrides `pc_v` for every node (paper §3.3.1).
    pub fn derive(
        snap: &ClusterSnapshot,
        compute_weights: &ComputeWeights,
        network_weights: &NetworkWeights,
        ppn: Option<u32>,
    ) -> Result<Loads, AllocError> {
        compute_weights
            .validate()
            .map_err(AllocError::InvalidRequest)?;
        network_weights
            .validate()
            .map_err(AllocError::InvalidRequest)?;
        let usable = snap.usable_nodes();
        if usable.is_empty() {
            return Err(AllocError::NoUsableNodes);
        }
        let infos: Vec<_> = usable
            .iter()
            .map(|&n| snap.info(n).expect("usable implies sample"))
            .collect();

        // --- Eq. 1: compute load via SAW over Table 1 attributes ---
        let w = compute_weights;
        let columns = vec![
            Column {
                values: infos.iter().map(|i| windowed_rep(&i.sample.cpu_load)).collect(),
                criterion: Criterion::Minimize,
                weight: w.cpu_load,
            },
            Column {
                values: infos.iter().map(|i| windowed_rep(&i.sample.cpu_util)).collect(),
                criterion: Criterion::Minimize,
                weight: w.cpu_util,
            },
            Column {
                values: infos
                    .iter()
                    .map(|i| windowed_rep(&i.sample.flow_rate_mbps))
                    .collect(),
                criterion: Criterion::Minimize,
                weight: w.flow_rate,
            },
            Column {
                values: infos
                    .iter()
                    .map(|i| {
                        i.sample
                            .available_mem_gb(windowed_rep(&i.sample.mem_used_frac))
                    })
                    .collect(),
                criterion: Criterion::Maximize,
                weight: w.memory,
            },
            Column {
                values: infos.iter().map(|i| i.sample.spec.cores as f64).collect(),
                criterion: Criterion::Maximize,
                weight: w.core_count,
            },
            Column {
                values: infos.iter().map(|i| i.sample.spec.freq_ghz).collect(),
                criterion: Criterion::Maximize,
                weight: w.cpu_freq,
            },
            Column {
                values: infos
                    .iter()
                    .map(|i| i.sample.spec.total_mem_gb)
                    .collect(),
                criterion: Criterion::Maximize,
                weight: w.total_mem,
            },
            Column {
                values: infos.iter().map(|i| i.sample.users as f64).collect(),
                criterion: Criterion::Minimize,
                weight: w.users,
            },
        ];
        let mut cl = saw_scores(&columns);

        // --- Eq. 2: pairwise network load ---
        let mut nl = derive_network_load(snap, &usable, network_weights);

        // Rescale both loads to mean 1 over their own domains. Sum
        // normalization alone leaves CL ~ 1/V and NL ~ 1/V², so in
        // `A_v(u) = α·CL(u) + β·NL(v,u)` (Algorithm 1) the network term
        // would be a factor V smaller than α/β intends. Rescaling is
        // invariant for every ranking that normalizes per-term anyway
        // (Algorithm 2, group_cost, load-aware ordering) but makes the
        // candidate-generation trade-off mean what the paper's α/β say.
        rescale_to_unit_mean(&mut cl);
        let mut pair_vals: Vec<f64> = Vec::new();
        for (i, &u) in usable.iter().enumerate() {
            for &v in &usable[i + 1..] {
                pair_vals.push(nl.get(u, v));
            }
        }
        let pair_mean = if pair_vals.is_empty() {
            0.0
        } else {
            pair_vals.iter().sum::<f64>() / pair_vals.len() as f64
        };
        if pair_mean > 0.0 {
            for (i, &u) in usable.iter().enumerate() {
                for &v in usable[i + 1..].iter() {
                    let scaled = nl.get(u, v) / pair_mean;
                    nl.set(u, v, scaled);
                }
            }
        }

        // --- Eq. 3: effective processor count ---
        let pc: Vec<u32> = infos
            .iter()
            .map(|i| match ppn {
                Some(p) => p,
                None => effective_pc(i.sample.spec.cores, i.sample.cpu_load.m1),
            })
            .collect();

        let index_of = usable.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        Ok(Loads {
            usable,
            cl,
            nl,
            pc,
            index_of,
        })
    }

    /// Assemble a `Loads` from precomputed parts (used by the two-level
    /// scalable allocator to restrict the universe to a shortlist).
    pub fn from_parts(
        usable: Vec<NodeId>,
        cl: Vec<f64>,
        nl: SymMatrix<f64>,
        pc: Vec<u32>,
    ) -> Loads {
        assert_eq!(usable.len(), cl.len());
        assert_eq!(usable.len(), pc.len());
        let index_of = usable.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        Loads {
            usable,
            cl,
            nl,
            pc,
            index_of,
        }
    }

    /// Index of `node` in the usable arrays.
    pub fn index(&self, node: NodeId) -> Option<usize> {
        self.index_of.get(&node).copied()
    }

    /// Compute load of a usable node.
    pub fn cl_of(&self, node: NodeId) -> f64 {
        self.cl[self.index_of[&node]]
    }

    /// Network load between two usable nodes (0 for `u == v`).
    pub fn nl_between(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            0.0
        } else {
            self.nl.get(u, v)
        }
    }

    /// Effective processor count of a usable node.
    pub fn pc_of(&self, node: NodeId) -> u32 {
        self.pc[self.index_of[&node]]
    }

    /// Total processes the usable universe can host.
    pub fn total_capacity(&self) -> u64 {
        self.pc.iter().map(|&p| p as u64).sum()
    }
}

/// Scale a vector so its mean is 1 (no-op for all-zero input).
fn rescale_to_unit_mean(values: &mut [f64]) {
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    if mean > 0.0 {
        for v in values.iter_mut() {
            *v /= mean;
        }
    }
}

/// Eq. 3: `pc_v = coreCount_v − ⌈Load_v⌉ % coreCount_v`, using the 1-minute
/// mean load. The modulo keeps `pc_v` in `[1, coreCount]` even on heavily
/// loaded nodes, exactly as the paper writes it.
pub fn effective_pc(core_count: u32, load_m1: f64) -> u32 {
    assert!(core_count > 0);
    let load = load_m1.max(0.0).ceil() as u32;
    core_count - load % core_count
}

/// Eq. 2 over all usable pairs: normalized latency and normalized complement
/// of available bandwidth, combined with `w_lt`/`w_bw`.
fn derive_network_load(
    snap: &ClusterSnapshot,
    usable: &[NodeId],
    weights: &NetworkWeights,
) -> SymMatrix<f64> {
    let n = snap.latency.len();
    let mut out = SymMatrix::new(n, 0.0);
    let pairs: Vec<(NodeId, NodeId)> = usable
        .iter()
        .enumerate()
        .flat_map(|(i, &u)| usable[i + 1..].iter().map(move |&v| (u, v)))
        .collect();
    if pairs.is_empty() {
        return out;
    }

    // Latency column: prefer the 1-minute mean, fall back to the instant.
    let mut lat: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| {
            let st = snap.latency.get(u, v);
            if st.m1.is_finite() {
                st.m1
            } else {
                st.instant
            }
        })
        .collect();
    // Unmeasured pairs (∞) are clamped to a strong finite penalty so
    // normalization stays meaningful: 10× the worst measured latency.
    let max_finite = lat
        .iter()
        .cloned()
        .filter(|l| l.is_finite())
        .fold(0.0f64, f64::max);
    let penalty = if max_finite > 0.0 { max_finite * 10.0 } else { 1.0 };
    for l in &mut lat {
        if !l.is_finite() {
            *l = penalty;
        }
    }

    // Complement-of-available-bandwidth column: peak − available.
    let cbw: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| {
            let peak = snap.peak_bandwidth_bps.get(u, v);
            let avail = snap.bandwidth_bps.get(u, v);
            if !peak.is_finite() || peak <= 0.0 {
                // never measured: assume the worst (everything unavailable)
                return 1e9;
            }
            (peak - avail).max(0.0)
        })
        .collect();

    let lat_n = crate::saw::normalize_sum(&lat);
    let cbw_n = crate::saw::normalize_sum(&cbw);
    for (k, &(u, v)) in pairs.iter().enumerate() {
        out.set(u, v, weights.latency * lat_n[k] + weights.bandwidth * cbw_n[k]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn snapshot(n: usize, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap()
    }

    fn derive(snap: &ClusterSnapshot) -> Loads {
        Loads::derive(
            snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
        )
        .unwrap()
    }

    #[test]
    fn effective_pc_matches_equation3() {
        // zero load: all cores
        assert_eq!(effective_pc(8, 0.0), 8);
        // load 1 → 8 − 1 = 7
        assert_eq!(effective_pc(8, 0.2), 7);
        // load 8 → 8 − (8 % 8) = 8 (the paper's modulo wraps)
        assert_eq!(effective_pc(8, 7.5), 8);
        // load 9 → 8 − 1 = 7
        assert_eq!(effective_pc(8, 8.5), 7);
        // 12-core node under load 3
        assert_eq!(effective_pc(12, 2.4), 9);
    }

    #[test]
    fn derive_produces_consistent_shapes() {
        let snap = snapshot(6, 3);
        let loads = derive(&snap);
        assert_eq!(loads.usable.len(), 6);
        assert_eq!(loads.cl.len(), 6);
        assert_eq!(loads.pc, vec![4; 6]);
        assert_eq!(loads.total_capacity(), 24);
    }

    #[test]
    fn compute_load_is_nonnegative_and_discriminates() {
        let snap = snapshot(8, 5);
        let loads = derive(&snap);
        assert!(loads.cl.iter().all(|&c| c >= 0.0 && c.is_finite()));
        // a shared-lab cluster is heterogeneous: loads must differ
        let min = loads.cl.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = loads.cl.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "all CL equal: {:?}", loads.cl);
    }

    #[test]
    fn network_load_is_symmetric_and_nonnegative() {
        let snap = snapshot(6, 7);
        let loads = derive(&snap);
        for (u, v, nl) in loads.nl.pairs() {
            assert!(nl >= 0.0, "nl({u},{v}) = {nl}");
            assert_eq!(loads.nl_between(u, v), loads.nl_between(v, u));
        }
        assert_eq!(loads.nl_between(NodeId(2), NodeId(2)), 0.0);
    }

    #[test]
    fn without_ppn_pc_follows_load() {
        let snap = snapshot(6, 3);
        let loads = Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            None,
        )
        .unwrap();
        for (i, &node) in loads.usable.iter().enumerate() {
            let info = snap.info(node).unwrap();
            assert_eq!(
                loads.pc[i],
                effective_pc(info.sample.spec.cores, info.sample.cpu_load.m1)
            );
        }
    }

    #[test]
    fn congested_pair_has_higher_network_load() {
        let snap = snapshot(6, 11);
        let loads = derive(&snap);
        // find the pair with min available bandwidth and compare with max
        let mut worst = (NodeId(0), NodeId(1));
        let mut best = (NodeId(0), NodeId(1));
        for (u, v, bw) in snap.bandwidth_bps.pairs() {
            if bw < snap.bandwidth_bps.get(worst.0, worst.1) {
                worst = (u, v);
            }
            if bw > snap.bandwidth_bps.get(best.0, best.1) {
                best = (u, v);
            }
        }
        assert!(
            loads.nl_between(worst.0, worst.1) >= loads.nl_between(best.0, best.1),
            "NL should rank congested pairs worse"
        );
    }

    #[test]
    fn bad_weights_rejected() {
        let snap = snapshot(4, 3);
        let mut w = ComputeWeights::paper_default();
        w.cpu_load = 0.9;
        assert!(matches!(
            Loads::derive(&snap, &w, &NetworkWeights::paper_default(), Some(4)),
            Err(AllocError::InvalidRequest(_))
        ));
    }
}
