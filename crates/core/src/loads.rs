//! Deriving the allocator's inputs from a monitoring snapshot:
//! compute load `CL_v` (Eq. 1), network load `NL_(u,v)` (Eq. 2), and
//! effective processor count `pc_v` (Eq. 3).

use crate::request::AllocError;
use crate::saw::{saw_scores, Column, Criterion};
use crate::tiered::{EstimatedNl, TieredNl};
use crate::weights::{ComputeWeights, NetworkWeights};
use nlrm_monitor::{ClusterSnapshot, InterEstimate, SymMatrix};
use nlrm_sim_core::time::Duration;
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::{NodeId, SwitchIndex};
use std::collections::HashMap;

pub use crate::tiered::NlRep;

/// How load derivation degrades when monitoring data has gone stale
/// (daemons crashed, hung, or their writes were delayed).
///
/// Staleness is judged against the snapshot's own assembly time, so a
/// frozen snapshot stays internally consistent no matter how far reality
/// has moved on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessPolicy {
    /// A node whose newest sample is older than this is dropped from the
    /// usable universe: its compute load is pure fiction.
    pub max_sample_age: Duration,
    /// A pair whose latency or bandwidth row is older than this keeps its
    /// last value but is blended toward the unmeasured penalty.
    pub max_pair_age: Duration,
    /// Blend factor in `[0, 1]`: 0 trusts stale pair values as-is, 1 treats
    /// them as unmeasured. Fresh < stale < unmeasured holds for any value
    /// strictly between.
    pub stale_blend: f64,
}

impl Default for StalenessPolicy {
    /// Conservative defaults sized to the daemon periods: samples survive
    /// 12 missed 5-second publications, pair rows survive 3 missed
    /// 5-minute bandwidth sweeps.
    fn default() -> Self {
        StalenessPolicy {
            max_sample_age: Duration::from_secs(60),
            max_pair_age: Duration::from_secs(900),
            stale_blend: 0.5,
        }
    }
}

impl StalenessPolicy {
    /// Never degrade anything (pre-staleness-awareness behaviour).
    pub fn off() -> Self {
        StalenessPolicy {
            max_sample_age: Duration::MAX,
            max_pair_age: Duration::MAX,
            stale_blend: 0.0,
        }
    }

    fn validate(&self) -> Result<(), AllocError> {
        if !(0.0..=1.0).contains(&self.stale_blend) {
            return Err(AllocError::InvalidRequest(format!(
                "stale_blend must be in [0, 1], got {}",
                self.stale_blend
            )));
        }
        Ok(())
    }
}

/// Everything Algorithms 1–2 need, derived once per allocation.
#[derive(Debug, Clone)]
pub struct Loads {
    /// Usable nodes (live, with fresh samples), ascending id order.
    pub usable: Vec<NodeId>,
    /// Compute load per usable node (parallel to `usable`). Lower is better.
    pub cl: Vec<f64>,
    /// Pairwise network load over the node-id space — dense (exact V×V) or
    /// tiered (exact intra-switch, aggregated inter-switch). Only entries
    /// between usable nodes are meaningful. Lower is better.
    pub nl: NlRep,
    /// Effective processor count per usable node (parallel to `usable`).
    pub pc: Vec<u32>,
    index_of: HashMap<NodeId, usize>,
    /// Σ CL over the usable universe, cached at construction so per-group
    /// scoring doesn't re-walk the whole universe.
    c_all: f64,
    /// Σ NL over all usable pairs, cached at construction (recomputing it
    /// per `group_cost` call was O(V²) each time).
    n_all: f64,
}

/// Histogram bucket bounds (seconds) for snapshot sample age.
const SAMPLE_AGE_BOUNDS: &[f64] = &[5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0, 3600.0];

/// Representative value of a windowed attribute: the mean of the 1/5/15-min
/// running means. Folding the windows keeps the paper's per-group weights
/// intact while still using all three histories.
fn windowed_rep(w: &WindowedValue) -> f64 {
    (w.m1 + w.m5 + w.m15) / 3.0
}

impl Loads {
    /// Derive loads from a snapshot with the default [`StalenessPolicy`].
    ///
    /// * `ppn` — when given, overrides `pc_v` for every node (paper §3.3.1).
    pub fn derive(
        snap: &ClusterSnapshot,
        compute_weights: &ComputeWeights,
        network_weights: &NetworkWeights,
        ppn: Option<u32>,
    ) -> Result<Loads, AllocError> {
        Self::derive_with_policy(
            snap,
            compute_weights,
            network_weights,
            ppn,
            &StalenessPolicy::default(),
        )
    }

    /// Derive loads from a snapshot under an explicit staleness policy:
    /// nodes with over-age samples leave the usable universe, over-age
    /// pair measurements are blended toward the unmeasured penalty.
    pub fn derive_with_policy(
        snap: &ClusterSnapshot,
        compute_weights: &ComputeWeights,
        network_weights: &NetworkWeights,
        ppn: Option<u32>,
        policy: &StalenessPolicy,
    ) -> Result<Loads, AllocError> {
        Self::derive_core(snap, compute_weights, network_weights, ppn, policy)
            .map(|(loads, _)| loads)
    }

    /// The shared derivation body: everything `derive_with_policy` does,
    /// plus the [`NlNorm`] map that turned raw pair metrics into the final
    /// normalized NL values. `derive_sharded` reuses the map to push the
    /// estimator's raw error bands through the *same* normalization, so
    /// the bounds live on the same scale as the point matrix.
    fn derive_core(
        snap: &ClusterSnapshot,
        compute_weights: &ComputeWeights,
        network_weights: &NetworkWeights,
        ppn: Option<u32>,
        policy: &StalenessPolicy,
    ) -> Result<(Loads, NlNorm), AllocError> {
        compute_weights
            .validate()
            .map_err(AllocError::InvalidRequest)?;
        network_weights
            .validate()
            .map_err(AllocError::InvalidRequest)?;
        policy.validate()?;
        // counted so schedulers can prove how often they pay for the
        // O(V²) matrix build (the broker's batched-cycle test relies on it)
        nlrm_obs::ctx::inc("loads_derive_total");
        let mut usable: Vec<NodeId> = Vec::new();
        let mut excluded = 0usize;
        let observed = nlrm_obs::ctx::is_active();
        for n in snap.usable_nodes() {
            let age = snap.sample_age(n);
            if age.is_some_and(|a| a <= policy.max_sample_age) {
                usable.push(n);
            } else {
                excluded += 1;
                if observed {
                    // over-age (or missing) sample: the node leaves the
                    // universe
                    nlrm_obs::ctx::emit(
                        nlrm_obs::Severity::Warn,
                        snap.taken_at,
                        nlrm_obs::EventKind::StaleNodeExcluded {
                            node: n,
                            age: age.unwrap_or(Duration::MAX),
                        },
                    );
                    nlrm_obs::ctx::inc("loads_stale_node_excluded_total");
                }
            }
        }
        if observed {
            if let Some(age) = snap.max_sample_age() {
                nlrm_obs::ctx::observe(
                    "snapshot_sample_age_secs",
                    SAMPLE_AGE_BOUNDS,
                    age.as_secs_f64(),
                );
            }
            // health inputs: how much of the monitored universe is usable,
            // and what fraction of it was dropped as stale this derivation
            let monitored = usable.len() + excluded;
            nlrm_obs::ctx::set_gauge("loads_usable_nodes", usable.len() as f64);
            nlrm_obs::ctx::set_gauge(
                "loads_stale_fraction",
                if monitored > 0 {
                    excluded as f64 / monitored as f64
                } else {
                    0.0
                },
            );
        }
        if usable.is_empty() {
            return Err(AllocError::NoUsableNodes);
        }
        let infos: Vec<_> = usable
            .iter()
            .map(|&n| snap.info(n).expect("usable implies sample"))
            .collect();
        if observed {
            let mean_load = infos
                .iter()
                .map(|i| windowed_rep(&i.sample.cpu_load))
                .sum::<f64>()
                / infos.len() as f64;
            nlrm_obs::ctx::set_gauge("cluster_mean_cpu_load", mean_load);
        }

        // --- Eq. 1: compute load via SAW over Table 1 attributes ---
        let w = compute_weights;
        let columns = vec![
            Column {
                values: infos
                    .iter()
                    .map(|i| windowed_rep(&i.sample.cpu_load))
                    .collect(),
                criterion: Criterion::Minimize,
                weight: w.cpu_load,
            },
            Column {
                values: infos
                    .iter()
                    .map(|i| windowed_rep(&i.sample.cpu_util))
                    .collect(),
                criterion: Criterion::Minimize,
                weight: w.cpu_util,
            },
            Column {
                values: infos
                    .iter()
                    .map(|i| windowed_rep(&i.sample.flow_rate_mbps))
                    .collect(),
                criterion: Criterion::Minimize,
                weight: w.flow_rate,
            },
            Column {
                values: infos
                    .iter()
                    .map(|i| {
                        i.sample
                            .available_mem_gb(windowed_rep(&i.sample.mem_used_frac))
                    })
                    .collect(),
                criterion: Criterion::Maximize,
                weight: w.memory,
            },
            Column {
                values: infos.iter().map(|i| i.sample.spec.cores as f64).collect(),
                criterion: Criterion::Maximize,
                weight: w.core_count,
            },
            Column {
                values: infos.iter().map(|i| i.sample.spec.freq_ghz).collect(),
                criterion: Criterion::Maximize,
                weight: w.cpu_freq,
            },
            Column {
                values: infos.iter().map(|i| i.sample.spec.total_mem_gb).collect(),
                criterion: Criterion::Maximize,
                weight: w.total_mem,
            },
            Column {
                values: infos.iter().map(|i| i.sample.users as f64).collect(),
                criterion: Criterion::Minimize,
                weight: w.users,
            },
        ];
        let mut cl = saw_scores(&columns);

        // --- Eq. 2: pairwise network load ---
        let (mut nl, mut norm) = derive_network_load(snap, &usable, network_weights, policy);

        // Rescale both loads to mean 1 over their own domains. Sum
        // normalization alone leaves CL ~ 1/V and NL ~ 1/V², so in
        // `A_v(u) = α·CL(u) + β·NL(v,u)` (Algorithm 1) the network term
        // would be a factor V smaller than α/β intends. Rescaling is
        // invariant for every ranking that normalizes per-term anyway
        // (Algorithm 2, group_cost, load-aware ordering) but makes the
        // candidate-generation trade-off mean what the paper's α/β say.
        rescale_to_unit_mean(&mut cl);
        let mut pair_vals: Vec<f64> = Vec::new();
        for (i, &u) in usable.iter().enumerate() {
            for &v in &usable[i + 1..] {
                pair_vals.push(nl.get(u, v));
            }
        }
        let pair_mean = if pair_vals.is_empty() {
            0.0
        } else {
            pair_vals.iter().sum::<f64>() / pair_vals.len() as f64
        };
        if pair_mean > 0.0 {
            for (i, &u) in usable.iter().enumerate() {
                for &v in usable[i + 1..].iter() {
                    let scaled = nl.get(u, v) / pair_mean;
                    nl.set(u, v, scaled);
                }
            }
        }
        norm.pair_mean = pair_mean;

        // --- Eq. 3: effective processor count ---
        let pc: Vec<u32> = infos
            .iter()
            .map(|i| match ppn {
                Some(p) => p,
                None => effective_pc(i.sample.spec.cores, i.sample.cpu_load.m1),
            })
            .collect();

        let nl = NlRep::Dense(nl);
        let index_of = usable.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let (c_all, n_all) = universe_totals(&usable, &cl, &nl);
        Ok((
            Loads {
                usable,
                cl,
                nl,
                pc,
                index_of,
                c_all,
                n_all,
            },
            norm,
        ))
    }

    /// Derive loads from a *sharded* snapshot whose inter-shard pairs were
    /// filled in by the sampling estimator, keeping the estimator's error
    /// bands attached to the result.
    ///
    /// The point matrix is derived exactly as [`Loads::derive_with_policy`]
    /// would (inter-shard cells carry the estimator's point values, which
    /// the sharded snapshot assembly wrote into the dense matrices), then
    /// collapsed to the tiered form over `index`. The estimator's raw
    /// `[lo, hi]` bands per switch pair are mapped through the same
    /// monotone normalization that produced the point matrix, yielding NL
    /// bounds on the same scale. Switch pairs the estimate does not cover
    /// get the vacuous band `[0, ∞)`, so pruning over the lower bounds
    /// stays sound: [`EstimatedNl::min_incident`] never exceeds the point
    /// answer, and `allocate_pruned` can never discard a candidate the
    /// exhaustive search over this `Loads` would keep.
    pub fn derive_sharded(
        snap: &ClusterSnapshot,
        est: &InterEstimate,
        index: &SwitchIndex,
        compute_weights: &ComputeWeights,
        network_weights: &NetworkWeights,
        ppn: Option<u32>,
        policy: &StalenessPolicy,
    ) -> Result<Loads, AllocError> {
        let (loads, norm) = Self::derive_core(snap, compute_weights, network_weights, ppn, policy)?;
        let dense = match &loads.nl {
            NlRep::Dense(d) => d,
            _ => unreachable!("derive_core always builds a dense matrix"),
        };
        let point = TieredNl::from_dense(dense, &loads.usable, index);
        let s_count = index.num_switches();
        let mut inter_lo = vec![0.0f64; s_count * s_count];
        let mut inter_hi = vec![f64::INFINITY; s_count * s_count];
        for s in 0..s_count {
            let k_diag = s * s_count + s;
            inter_lo[k_diag] = 0.0;
            inter_hi[k_diag] = 0.0;
            for t in (s + 1)..s_count {
                let (su, tu) = (s as u32, t as u32);
                if !est.covers(su) || !est.covers(tu) {
                    continue; // vacuous [0, ∞) band
                }
                let (lat, cbw) = match (est.latency_s(su, tu), est.cbw_bps(su, tu)) {
                    (Some(l), Some(c)) => (l, c),
                    _ => continue,
                };
                let lo = norm.map(network_weights, lat.lo, cbw.lo);
                let hi = norm.map(network_weights, lat.hi, cbw.hi);
                inter_lo[s * s_count + t] = lo;
                inter_lo[t * s_count + s] = lo;
                inter_hi[s * s_count + t] = hi;
                inter_hi[t * s_count + s] = hi;
            }
        }
        let nl = NlRep::Estimated(EstimatedNl::new(point, inter_lo, inter_hi));
        Ok(Loads::from_parts(loads.usable, loads.cl, nl, loads.pc))
    }

    /// Assemble a `Loads` from precomputed parts (used by the two-level
    /// scalable allocator to restrict the universe to a shortlist, and by
    /// the scale benches to synthesize tiered universes directly).
    pub fn from_parts(
        usable: Vec<NodeId>,
        cl: Vec<f64>,
        nl: impl Into<NlRep>,
        pc: Vec<u32>,
    ) -> Loads {
        assert_eq!(usable.len(), cl.len());
        assert_eq!(usable.len(), pc.len());
        let nl = nl.into();
        let index_of = usable.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let (c_all, n_all) = universe_totals(&usable, &cl, &nl);
        Loads {
            usable,
            cl,
            nl,
            pc,
            index_of,
            c_all,
            n_all,
        }
    }

    /// Convert the network-load representation to the tiered form using a
    /// topology's switch assignment: intra-switch pairs keep their exact
    /// values, inter-switch cells aggregate to the per-switch-pair mean.
    /// A no-op when the representation is already tiered.
    pub fn into_tiered(self, index: &SwitchIndex) -> Loads {
        let nl = match self.nl {
            NlRep::Tiered(t) => NlRep::Tiered(t),
            NlRep::Estimated(e) => NlRep::Estimated(e),
            NlRep::Dense(d) => NlRep::Tiered(TieredNl::from_dense(&d, &self.usable, index)),
        };
        Loads::from_parts(self.usable, self.cl, nl, self.pc)
    }

    /// Index of `node` in the usable arrays.
    pub fn index(&self, node: NodeId) -> Option<usize> {
        self.index_of.get(&node).copied()
    }

    /// Compute load of a usable node.
    pub fn cl_of(&self, node: NodeId) -> f64 {
        self.cl[self.index_of[&node]]
    }

    /// Network load between two usable nodes (0 for `u == v`).
    pub fn nl_between(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            0.0
        } else {
            self.nl.get(u, v)
        }
    }

    /// Effective processor count of a usable node.
    pub fn pc_of(&self, node: NodeId) -> u32 {
        self.pc[self.index_of[&node]]
    }

    /// Total processes the usable universe can host.
    pub fn total_capacity(&self) -> u64 {
        self.pc.iter().map(|&p| p as u64).sum()
    }

    /// Σ CL over the whole usable universe (cached at construction).
    pub fn total_compute_load(&self) -> f64 {
        self.c_all
    }

    /// Σ NL over all usable pairs (cached at construction).
    pub fn total_network_load(&self) -> f64 {
        self.n_all
    }
}

/// The universe-wide totals `group_cost` normalizes by: Σ CL and Σ NL over
/// all usable pairs. Computed once per `Loads` construction. The tiered
/// representation sums switch blocks analytically instead of walking V²
/// pairs.
fn universe_totals(usable: &[NodeId], cl: &[f64], nl: &NlRep) -> (f64, f64) {
    (cl.iter().sum(), nl.pair_sum(usable))
}

/// Scale a vector so its mean is 1 (no-op for all-zero input).
fn rescale_to_unit_mean(values: &mut [f64]) {
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    if mean > 0.0 {
        for v in values.iter_mut() {
            *v /= mean;
        }
    }
}

/// Eq. 3: `pc_v = coreCount_v − ⌈Load_v⌉ % coreCount_v`, using the 1-minute
/// mean load. The modulo keeps `pc_v` in `[1, coreCount]` even on heavily
/// loaded nodes, exactly as the paper writes it.
pub fn effective_pc(core_count: u32, load_m1: f64) -> u32 {
    assert!(core_count > 0);
    let load = load_m1.max(0.0).ceil() as u32;
    core_count - load % core_count
}

/// The monotone affine map from raw pair metrics — latency in seconds and
/// complement-of-available-bandwidth in bps — to the final normalized NL
/// value that `derive_network_load` plus the unit-mean rescale produce:
/// `NL = (w_lt·lat·lat_scale + w_bw·cbw·cbw_scale) / pair_mean`. Both
/// scales are non-negative, so the map is monotone non-decreasing in each
/// argument: pushing an interval's endpoints through it yields a valid
/// interval for the mapped value. That is what lets `derive_sharded` turn
/// the estimator's raw error bands into sound NL bounds.
#[derive(Debug, Clone, Copy)]
struct NlNorm {
    /// `1 / Σ` of the latency column (0 when the column summed to 0,
    /// matching `normalize_sum`'s all-zero output).
    lat_scale: f64,
    /// `1 / Σ` of the cbw column.
    cbw_scale: f64,
    /// Mean combined NL over usable pairs; filled in by the caller after
    /// the rescale pass. 0 means "no rescale was applied".
    pair_mean: f64,
}

impl NlNorm {
    fn map(&self, weights: &NetworkWeights, lat_raw: f64, cbw_raw: f64) -> f64 {
        if !lat_raw.is_finite() || !cbw_raw.is_finite() {
            return f64::INFINITY;
        }
        let nl = weights.latency * lat_raw * self.lat_scale
            + weights.bandwidth * cbw_raw * self.cbw_scale;
        if self.pair_mean > 0.0 {
            nl / self.pair_mean
        } else {
            nl
        }
    }
}

/// Eq. 2 over all usable pairs: normalized latency and normalized complement
/// of available bandwidth, combined with `w_lt`/`w_bw`. Pairs whose backing
/// rows have aged past `policy.max_pair_age` are blended toward the
/// unmeasured penalty, so fresh < stale < unmeasured in each column.
/// Also returns the [`NlNorm`] scales the normalization applied (with
/// `pair_mean` left at 0 for the caller to fill in).
fn derive_network_load(
    snap: &ClusterSnapshot,
    usable: &[NodeId],
    weights: &NetworkWeights,
    policy: &StalenessPolicy,
) -> (SymMatrix<f64>, NlNorm) {
    let n = snap.latency.len();
    let mut out = SymMatrix::new(n, 0.0);
    let mut norm = NlNorm {
        lat_scale: 0.0,
        cbw_scale: 0.0,
        pair_mean: 0.0,
    };
    let pairs: Vec<(NodeId, NodeId)> = usable
        .iter()
        .enumerate()
        .flat_map(|(i, &u)| usable[i + 1..].iter().map(move |&v| (u, v)))
        .collect();
    if pairs.is_empty() {
        return (out, norm);
    }

    // Latency column: prefer the 1-minute mean, fall back to the instant.
    let mut lat: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| {
            let st = snap.latency.get(u, v);
            if st.m1.is_finite() {
                st.m1
            } else {
                st.instant
            }
        })
        .collect();
    // Unmeasured pairs (∞) are clamped to a strong finite penalty so
    // normalization stays meaningful: 10× the worst measured latency.
    let max_finite = lat
        .iter()
        .cloned()
        .filter(|l| l.is_finite())
        .fold(0.0f64, f64::max);
    let penalty = if max_finite > 0.0 {
        max_finite * 10.0
    } else {
        1.0
    };
    let mut blended = vec![false; pairs.len()];
    for (k, l) in lat.iter_mut().enumerate() {
        if !l.is_finite() {
            *l = penalty;
        } else {
            let (u, v) = pairs[k];
            let stale = snap
                .latency_age(u, v)
                .is_none_or(|a| a > policy.max_pair_age);
            if stale {
                *l += policy.stale_blend * (penalty - *l).max(0.0);
                blended[k] = true;
            }
        }
    }

    // Complement-of-available-bandwidth column: peak − available.
    let mut cbw: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| {
            let peak = snap.peak_bandwidth_bps.get(u, v);
            let avail = snap.bandwidth_bps.get(u, v);
            if !peak.is_finite() || peak <= 0.0 {
                // never measured: penalized relative to the measured pairs
                // below (an absolute sentinel in bps can rank *better* than
                // a congested measured pair on fast links)
                return f64::INFINITY;
            }
            (peak - avail).max(0.0)
        })
        .collect();
    // Same convention as the latency column: 10× the worst measured value.
    let max_cbw = cbw
        .iter()
        .cloned()
        .filter(|c| c.is_finite())
        .fold(0.0f64, f64::max);
    let cbw_penalty = if max_cbw > 0.0 { max_cbw * 10.0 } else { 1.0 };
    for (k, c) in cbw.iter_mut().enumerate() {
        if !c.is_finite() {
            *c = cbw_penalty;
        } else {
            let (u, v) = pairs[k];
            let stale = snap
                .bandwidth_age(u, v)
                .is_none_or(|a| a > policy.max_pair_age);
            if stale {
                *c += policy.stale_blend * (cbw_penalty - *c).max(0.0);
                blended[k] = true;
            }
        }
    }

    let blended_count = blended.iter().filter(|&&b| b).count();
    if blended_count > 0 && nlrm_obs::ctx::is_active() {
        nlrm_obs::ctx::emit(
            nlrm_obs::Severity::Warn,
            snap.taken_at,
            nlrm_obs::EventKind::StalePairsBlended {
                count: blended_count,
            },
        );
        nlrm_obs::ctx::add("loads_stale_pairs_blended_total", blended_count as u64);
    }

    let lat_n = crate::saw::normalize_sum(&lat);
    let cbw_n = crate::saw::normalize_sum(&cbw);
    let sum_scale = |raw: &[f64]| {
        let s: f64 = raw.iter().sum();
        if s > 0.0 && s.is_finite() {
            1.0 / s
        } else {
            0.0
        }
    };
    norm.lat_scale = sum_scale(&lat);
    norm.cbw_scale = sum_scale(&cbw);
    for (k, &(u, v)) in pairs.iter().enumerate() {
        out.set(
            u,
            v,
            weights.latency * lat_n[k] + weights.bandwidth * cbw_n[k],
        );
    }
    (out, norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::{Duration, SimTime};

    fn snapshot(n: usize, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap()
    }

    fn derive(snap: &ClusterSnapshot) -> Loads {
        Loads::derive(
            snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
        )
        .unwrap()
    }

    #[test]
    fn effective_pc_matches_equation3() {
        // zero load: all cores
        assert_eq!(effective_pc(8, 0.0), 8);
        // load 1 → 8 − 1 = 7
        assert_eq!(effective_pc(8, 0.2), 7);
        // load 8 → 8 − (8 % 8) = 8 (the paper's modulo wraps)
        assert_eq!(effective_pc(8, 7.5), 8);
        // load 9 → 8 − 1 = 7
        assert_eq!(effective_pc(8, 8.5), 7);
        // 12-core node under load 3
        assert_eq!(effective_pc(12, 2.4), 9);
    }

    #[test]
    fn derive_produces_consistent_shapes() {
        let snap = snapshot(6, 3);
        let loads = derive(&snap);
        assert_eq!(loads.usable.len(), 6);
        assert_eq!(loads.cl.len(), 6);
        assert_eq!(loads.pc, vec![4; 6]);
        assert_eq!(loads.total_capacity(), 24);
    }

    #[test]
    fn compute_load_is_nonnegative_and_discriminates() {
        let snap = snapshot(8, 5);
        let loads = derive(&snap);
        assert!(loads.cl.iter().all(|&c| c >= 0.0 && c.is_finite()));
        // a shared-lab cluster is heterogeneous: loads must differ
        let min = loads.cl.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = loads.cl.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "all CL equal: {:?}", loads.cl);
    }

    #[test]
    fn network_load_is_symmetric_and_nonnegative() {
        let snap = snapshot(6, 7);
        let loads = derive(&snap);
        for (i, &u) in loads.usable.iter().enumerate() {
            for &v in &loads.usable[i + 1..] {
                let nl = loads.nl_between(u, v);
                assert!(nl >= 0.0, "nl({u},{v}) = {nl}");
                assert_eq!(loads.nl_between(u, v), loads.nl_between(v, u));
            }
        }
        assert_eq!(loads.nl_between(NodeId(2), NodeId(2)), 0.0);
    }

    #[test]
    fn without_ppn_pc_follows_load() {
        let snap = snapshot(6, 3);
        let loads = Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            None,
        )
        .unwrap();
        for (i, &node) in loads.usable.iter().enumerate() {
            let info = snap.info(node).unwrap();
            assert_eq!(
                loads.pc[i],
                effective_pc(info.sample.spec.cores, info.sample.cpu_load.m1)
            );
        }
    }

    #[test]
    fn congested_pair_has_higher_network_load() {
        let snap = snapshot(6, 11);
        let loads = derive(&snap);
        // find the pair with min available bandwidth and compare with max
        let mut worst = (NodeId(0), NodeId(1));
        let mut best = (NodeId(0), NodeId(1));
        for (u, v, bw) in snap.bandwidth_bps.pairs() {
            if bw < snap.bandwidth_bps.get(worst.0, worst.1) {
                worst = (u, v);
            }
            if bw > snap.bandwidth_bps.get(best.0, best.1) {
                best = (u, v);
            }
        }
        assert!(
            loads.nl_between(worst.0, worst.1) >= loads.nl_between(best.0, best.1),
            "NL should rank congested pairs worse"
        );
    }

    #[test]
    fn unmeasured_bandwidth_ranks_worse_than_any_measured_pair() {
        // Regression: the unmeasured sentinel used to be an absolute
        // 1e9 bps, so on fast links a congested *measured* pair (complement
        // 99 Gbps here) ranked worse than a pair we know nothing about.
        let mut snap = snapshot(6, 13);
        snap.peak_bandwidth_bps.set(NodeId(2), NodeId(3), 100e9);
        snap.bandwidth_bps.set(NodeId(2), NodeId(3), 1e9);
        // a never-measured pair (daemons publish 0.0 until first probe)
        snap.peak_bandwidth_bps.set(NodeId(0), NodeId(1), 0.0);
        snap.bandwidth_bps.set(NodeId(0), NodeId(1), 0.0);
        let loads = Loads::derive(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights {
                latency: 0.0,
                bandwidth: 1.0,
            },
            Some(4),
        )
        .unwrap();
        let unmeasured = loads.nl_between(NodeId(0), NodeId(1));
        for (u, v, _) in snap.bandwidth_bps.pairs() {
            if (u, v) != (NodeId(0), NodeId(1)) {
                assert!(
                    unmeasured > loads.nl_between(u, v),
                    "unmeasured pair must rank worse than measured ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn stale_nodes_are_excluded_at_the_boundary() {
        let mut snap = snapshot(6, 3);
        let policy = StalenessPolicy::default();
        // node 2's sampler went silent: its sample ages past the bound
        snap.nodes[2].sample.taken_at =
            SimTime::from_micros(snap.taken_at.as_micros() - policy.max_sample_age.as_micros() - 1);
        // node 3 sits exactly on the bound: still usable (inclusive)
        snap.nodes[3].sample.taken_at =
            SimTime::from_micros(snap.taken_at.as_micros() - policy.max_sample_age.as_micros());
        let loads = Loads::derive_with_policy(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
            &policy,
        )
        .unwrap();
        assert!(!loads.usable.contains(&NodeId(2)), "over-age node kept");
        assert!(loads.usable.contains(&NodeId(3)), "boundary node dropped");
        assert_eq!(loads.usable.len(), 5);
        // the permissive policy keeps everything
        let all = Loads::derive_with_policy(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
            &StalenessPolicy::off(),
        )
        .unwrap();
        assert_eq!(all.usable.len(), 6);
    }

    #[test]
    fn stale_pairs_rank_between_fresh_and_unmeasured() {
        let mut snap = snapshot(6, 7);
        // pair (0,1): never measured
        snap.latency.set(
            NodeId(0),
            NodeId(1),
            nlrm_monitor::LatencyStat::constant(f64::INFINITY),
        );
        // pair (2,3): measured, but both endpoints' rows have gone stale
        snap.latency_row_age[2] = Some(Duration::from_secs(2000));
        snap.latency_row_age[3] = Some(Duration::from_secs(2000));
        let loads = Loads::derive_with_policy(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights {
                latency: 1.0,
                bandwidth: 0.0,
            },
            Some(4),
            &StalenessPolicy::default(),
        )
        .unwrap();
        let unmeasured = loads.nl_between(NodeId(0), NodeId(1));
        let stale = loads.nl_between(NodeId(2), NodeId(3));
        let fresh = loads.nl_between(NodeId(4), NodeId(5));
        assert!(
            fresh < stale,
            "stale pair should be penalized: fresh={fresh} stale={stale}"
        );
        assert!(
            stale < unmeasured,
            "stale pair still beats unmeasured: stale={stale} unmeasured={unmeasured}"
        );
    }

    #[test]
    fn default_policy_is_transparent_for_fresh_snapshots() {
        let snap = snapshot(6, 5);
        let a = derive(&snap);
        let b = Loads::derive_with_policy(
            &snap,
            &ComputeWeights::paper_default(),
            &NetworkWeights::paper_default(),
            Some(4),
            &StalenessPolicy::off(),
        )
        .unwrap();
        assert_eq!(a.usable, b.usable);
        assert_eq!(a.cl, b.cl);
        for (i, &u) in a.usable.iter().enumerate() {
            for &v in &a.usable[i + 1..] {
                assert_eq!(a.nl_between(u, v), b.nl_between(u, v));
            }
        }
    }

    #[test]
    fn invalid_blend_rejected() {
        let snap = snapshot(4, 3);
        let policy = StalenessPolicy {
            stale_blend: 1.5,
            ..StalenessPolicy::default()
        };
        assert!(matches!(
            Loads::derive_with_policy(
                &snap,
                &ComputeWeights::paper_default(),
                &NetworkWeights::paper_default(),
                Some(4),
                &policy,
            ),
            Err(AllocError::InvalidRequest(_))
        ));
    }

    #[test]
    fn bad_weights_rejected() {
        let snap = snapshot(4, 3);
        let mut w = ComputeWeights::paper_default();
        w.cpu_load = 0.9;
        assert!(matches!(
            Loads::derive(&snap, &w, &NetworkWeights::paper_default(), Some(4)),
            Err(AllocError::InvalidRequest(_))
        ));
    }
}
