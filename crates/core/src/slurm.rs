//! A SLURM select-plugin-shaped adapter (paper §6: "we also intend to
//! explore integrating our tool as a plugin for the SLURM job scheduler").
//!
//! SLURM's *select* plugins answer one question: given a job description
//! and a bitmap of currently-available nodes, which nodes should the job
//! get? This module mirrors that interface — [`JobDescriptor`] carries the
//! fields a `job_desc_msg_t` would, [`NodeBitmap`] plays the role of the
//! availability bitmap, and [`SelectPlugin`] is the `select_p_job_test`
//! entry point — and [`NlrmSelect`] implements it with the paper's
//! allocator, so the same decision logic could sit behind a real
//! `select/nlrm` plugin.

use crate::loads::Loads;
use crate::request::{AllocError, Allocation, AllocationRequest};
use crate::select::{explain_selection, group_mean_network_load, select_best};
use nlrm_monitor::ClusterSnapshot;
use nlrm_topology::NodeId;

/// The subset of a SLURM job description the selector consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDescriptor {
    /// Total task count (`--ntasks`).
    pub num_tasks: u32,
    /// Tasks per node (`--ntasks-per-node`), if pinned.
    pub ntasks_per_node: Option<u32>,
    /// Minimum distinct nodes (`--nodes=<min>`), 0 = no constraint.
    pub min_nodes: u32,
    /// Maximum distinct nodes (`--nodes=<min>-<max>`), 0 = no constraint.
    pub max_nodes: u32,
    /// Excluded hostnames (`--exclude`).
    pub excluded_hosts: Vec<String>,
    /// Required hostnames (`--nodelist`); all must be in the result.
    pub required_hosts: Vec<String>,
    /// The α/β job mix (a site would wire this to a QOS or comment field).
    pub alpha: f64,
}

impl JobDescriptor {
    /// A plain `--ntasks=n --ntasks-per-node=ppn` job with the miniMD mix.
    pub fn tasks(num_tasks: u32, ppn: u32) -> Self {
        JobDescriptor {
            num_tasks,
            ntasks_per_node: Some(ppn),
            min_nodes: 0,
            max_nodes: 0,
            excluded_hosts: Vec::new(),
            required_hosts: Vec::new(),
            alpha: 0.3,
        }
    }
}

/// A set of selectable nodes, indexed by node id (SLURM's node bitmap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBitmap {
    bits: Vec<bool>,
}

impl NodeBitmap {
    /// All `n` nodes available.
    pub fn all(n: usize) -> Self {
        NodeBitmap {
            bits: vec![true; n],
        }
    }

    /// No nodes available.
    pub fn none(n: usize) -> Self {
        NodeBitmap {
            bits: vec![false; n],
        }
    }

    /// Bitmap size.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }

    /// Whether `node` is set.
    pub fn contains(&self, node: NodeId) -> bool {
        self.bits.get(node.index()).copied().unwrap_or(false)
    }

    /// Set or clear a node.
    pub fn set(&mut self, node: NodeId, value: bool) {
        self.bits[node.index()] = value;
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterate set nodes.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId(i as u32))
    }
}

/// The select-plugin entry point (`select_p_job_test` in SLURM terms).
pub trait SelectPlugin {
    /// Pick nodes for `job` out of `avail`; on success returns the chosen
    /// bitmap and the full allocation (rank map included).
    fn select_nodes(
        &mut self,
        job: &JobDescriptor,
        avail: &NodeBitmap,
        snap: &ClusterSnapshot,
    ) -> Result<(NodeBitmap, Allocation), AllocError>;
}

/// The paper's allocator behind the SLURM-shaped interface.
#[derive(Debug, Clone, Default)]
pub struct NlrmSelect;

impl NlrmSelect {
    /// A fresh selector.
    pub fn new() -> Self {
        NlrmSelect
    }

    fn resolve_hosts(snap: &ClusterSnapshot, hosts: &[String]) -> Result<Vec<NodeId>, AllocError> {
        hosts
            .iter()
            .map(|h| {
                snap.nodes
                    .iter()
                    .find(|i| &i.sample.spec.hostname == h)
                    .map(|i| i.node)
                    .ok_or_else(|| AllocError::InvalidRequest(format!("unknown host '{h}'")))
            })
            .collect()
    }
}

impl SelectPlugin for NlrmSelect {
    fn select_nodes(
        &mut self,
        job: &JobDescriptor,
        avail: &NodeBitmap,
        snap: &ClusterSnapshot,
    ) -> Result<(NodeBitmap, Allocation), AllocError> {
        if job.num_tasks == 0 {
            return Err(AllocError::InvalidRequest("num_tasks must be > 0".into()));
        }
        let req = AllocationRequest::new(
            job.num_tasks,
            job.ntasks_per_node,
            job.alpha,
            1.0 - job.alpha,
        );
        req.validate()?;
        let excluded = Self::resolve_hosts(snap, &job.excluded_hosts)?;
        let required = Self::resolve_hosts(snap, &job.required_hosts)?;
        for &r in &required {
            if !avail.contains(r) || excluded.contains(&r) {
                return Err(AllocError::InvalidRequest(format!(
                    "required node {r} is not available"
                )));
            }
        }

        // restrict the universe to the bitmap minus exclusions
        let loads = Loads::derive(snap, &req.compute_weights, &req.network_weights, req.ppn)?;
        let mut usable = Vec::new();
        let mut cl = Vec::new();
        let mut pc = Vec::new();
        for (i, &node) in loads.usable.iter().enumerate() {
            if avail.contains(node) && !excluded.contains(&node) {
                usable.push(node);
                cl.push(loads.cl[i]);
                pc.push(loads.pc[i]);
            }
        }
        if usable.is_empty() {
            return Err(AllocError::NoUsableNodes);
        }
        let restricted = Loads::from_parts(usable, cl, loads.nl.clone(), pc);

        // candidate search; required hosts pin the start nodes
        let candidates: Vec<_> = if required.is_empty() {
            crate::candidate::generate_all_candidates(&restricted, req.procs, req.alpha, req.beta)
        } else {
            required
                .iter()
                .map(|&r| {
                    crate::candidate::generate_candidate(
                        &restricted,
                        r,
                        req.procs,
                        req.alpha,
                        req.beta,
                    )
                })
                // a pinned start on a zero-capacity universe yields a
                // candidate that places nothing; it must not reach selection
                .filter(|c| c.total_procs() as u64 >= req.procs as u64)
                .collect()
        };
        if candidates.is_empty() {
            return Err(AllocError::NoCapacity);
        }
        let selection = select_best(&restricted, &candidates, req.alpha, req.beta);
        let winner = &candidates[selection.best];

        // node-count window (SLURM's --nodes=<min>-<max>)
        let n_nodes = winner.nodes.len() as u32;
        if job.min_nodes > 0 && n_nodes < job.min_nodes {
            return Err(AllocError::NotEnoughNodes {
                available: n_nodes as usize,
                needed: job.min_nodes as usize,
            });
        }
        if job.max_nodes > 0 && n_nodes > job.max_nodes {
            return Err(AllocError::InvalidRequest(format!(
                "placement needs {n_nodes} nodes, above --nodes max {}",
                job.max_nodes
            )));
        }
        if !required.is_empty() {
            for &r in &required {
                if !winner.nodes.contains(&r) {
                    return Err(AllocError::InvalidRequest(format!(
                        "required node {r} could not be honoured"
                    )));
                }
            }
        }

        let mut bitmap = NodeBitmap::none(snap.latency.len());
        for &n in &winner.nodes {
            bitmap.set(n, true);
        }
        let selected = winner.nodes.clone();
        let mean_cl =
            selected.iter().map(|&u| restricted.cl_of(u)).sum::<f64>() / selected.len() as f64;
        let allocation = Allocation {
            policy: "network-load-aware/select-plugin".into(),
            rank_map: Allocation::block_rank_map(&winner.assignment()),
            nodes: winner.assignment(),
            diagnostics: crate::request::Diagnostics {
                total_cost: selection.best_cost,
                mean_compute_load: mean_cl,
                mean_network_load: group_mean_network_load(&restricted, &selected),
                explain: Some(explain_selection(
                    &candidates,
                    &selection,
                    req.alpha,
                    req.beta,
                    3,
                )),
                candidate_costs: selection.costs,
            },
        };
        Ok((bitmap, allocation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{NetworkLoadAwarePolicy, Policy};
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_monitor::MonitorRuntime;
    use nlrm_sim_core::time::Duration;

    fn snapshot(n: usize, seed: u64) -> ClusterSnapshot {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap()
    }

    #[test]
    fn plain_job_matches_the_native_allocator() {
        let snap = snapshot(8, 3);
        let job = JobDescriptor::tasks(16, 4);
        let (bitmap, alloc) = NlrmSelect::new()
            .select_nodes(&job, &NodeBitmap::all(8), &snap)
            .unwrap();
        let native = NetworkLoadAwarePolicy::new()
            .allocate(&snap, &AllocationRequest::new(16, Some(4), 0.3, 0.7))
            .unwrap();
        assert_eq!(alloc.nodes, native.nodes);
        assert_eq!(bitmap.count(), 4);
        for n in alloc.node_list() {
            assert!(bitmap.contains(n));
        }
    }

    #[test]
    fn bitmap_restricts_the_universe() {
        let snap = snapshot(8, 3);
        let mut avail = NodeBitmap::all(8);
        // only nodes 4..8 available
        for i in 0..4u32 {
            avail.set(NodeId(i), false);
        }
        let (bitmap, alloc) = NlrmSelect::new()
            .select_nodes(&JobDescriptor::tasks(16, 4), &avail, &snap)
            .unwrap();
        for n in alloc.node_list() {
            assert!(n.0 >= 4, "picked unavailable node {n}");
        }
        assert_eq!(bitmap.count(), 4);
    }

    #[test]
    fn excluded_hosts_are_avoided() {
        let snap = snapshot(6, 5);
        let mut job = JobDescriptor::tasks(8, 4);
        job.excluded_hosts = vec!["test0".into(), "test1".into()];
        let (_, alloc) = NlrmSelect::new()
            .select_nodes(&job, &NodeBitmap::all(6), &snap)
            .unwrap();
        for n in alloc.node_list() {
            assert!(n.0 >= 2, "picked excluded node {n}");
        }
    }

    #[test]
    fn required_host_is_honoured() {
        let snap = snapshot(6, 5);
        let mut job = JobDescriptor::tasks(8, 4);
        job.required_hosts = vec!["test3".into()];
        let (_, alloc) = NlrmSelect::new()
            .select_nodes(&job, &NodeBitmap::all(6), &snap)
            .unwrap();
        assert!(alloc.node_list().contains(&NodeId(3)));
    }

    #[test]
    fn node_window_is_enforced() {
        let snap = snapshot(8, 3);
        let mut job = JobDescriptor::tasks(16, 4); // needs 4 nodes
        job.max_nodes = 3;
        assert!(matches!(
            NlrmSelect::new().select_nodes(&job, &NodeBitmap::all(8), &snap),
            Err(AllocError::InvalidRequest(_))
        ));
        job.max_nodes = 0;
        job.min_nodes = 5;
        assert!(matches!(
            NlrmSelect::new().select_nodes(&job, &NodeBitmap::all(8), &snap),
            Err(AllocError::NotEnoughNodes { .. })
        ));
    }

    #[test]
    fn unknown_and_unavailable_hosts_error() {
        let snap = snapshot(4, 5);
        let mut job = JobDescriptor::tasks(4, 4);
        job.required_hosts = vec!["nonexistent".into()];
        assert!(NlrmSelect::new()
            .select_nodes(&job, &NodeBitmap::all(4), &snap)
            .is_err());
        let mut job = JobDescriptor::tasks(4, 4);
        job.required_hosts = vec!["test2".into()];
        let mut avail = NodeBitmap::all(4);
        avail.set(NodeId(2), false);
        assert!(NlrmSelect::new().select_nodes(&job, &avail, &snap).is_err());
    }

    #[test]
    fn empty_bitmap_errors() {
        let snap = snapshot(4, 5);
        assert!(matches!(
            NlrmSelect::new().select_nodes(
                &JobDescriptor::tasks(4, 4),
                &NodeBitmap::none(4),
                &snap
            ),
            Err(AllocError::NoUsableNodes)
        ));
        assert!(NodeBitmap::none(4).is_empty());
        assert_eq!(NodeBitmap::all(4).len(), 4);
        assert_eq!(NodeBitmap::all(4).iter().count(), 4);
    }
}
