//! Tiered network-load representation: exact intra-switch pairs, aggregated
//! per-switch-pair values across switches.
//!
//! The paper assumes a tree of switches where every node pair crossing the
//! same pair of switches sees the same trunk (§5's 4-switch testbed). Under
//! that model a dense V×V pair matrix is redundant: the network load between
//! two nodes on *different* switches is a property of the switch pair, not
//! of the nodes. [`TieredNl`] stores
//!
//! * one small exact matrix per switch (intra-switch pairs keep their
//!   measured values), and
//! * one S×S matrix of aggregated (mean) inter-switch values,
//!
//! which is O(Σ m_s² + S²) memory instead of O(V²) — at 100k nodes in
//! 48-node switches, ~75 MB instead of ~80 GB. The mean aggregation is
//! *sum-preserving* per switch pair, so group network loads summed over
//! many cross pairs stay close to the dense value, and are exactly equal
//! whenever the tree-topology model holds (all cross pairs equal).
//!
//! [`NlRep`] is the dispatch enum the allocator's [`Loads`](crate::loads::Loads)
//! carries behind its existing `nl_between` API.

use nlrm_monitor::SymMatrix;
use nlrm_topology::{NodeId, SwitchIndex};

/// Tiered pairwise network load: exact within a switch, aggregated across.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredNl {
    /// Switch index per node id (dense over the node-id space);
    /// `u32::MAX` marks nodes the representation does not cover.
    switch_of: Vec<u32>,
    /// Position of a node within its switch's `members` list.
    local_of: Vec<u32>,
    /// Covered nodes per switch, ascending node id.
    members: Vec<Vec<NodeId>>,
    /// Per-switch exact matrix, `m×m` row-major by local index.
    intra: Vec<Vec<f64>>,
    /// `S×S` row-major aggregated inter-switch values (diagonal unused).
    inter: Vec<f64>,
}

const UNCOVERED: u32 = u32::MAX;

impl TieredNl {
    /// Build from explicit per-pair functions.
    ///
    /// * `nodes` — the covered node set (ascending ids recommended).
    /// * `switch_of` — switch bucket of each node in `nodes` (parallel).
    /// * `num_switches` — switch-id space bound.
    /// * `intra` — exact value for a same-switch pair.
    /// * `inter` — aggregated value for a switch pair `(s, t)`, `s ≠ t`.
    pub fn from_fns(
        nodes: &[NodeId],
        switch_of: &[u32],
        num_switches: usize,
        mut intra: impl FnMut(NodeId, NodeId) -> f64,
        mut inter: impl FnMut(u32, u32) -> f64,
    ) -> TieredNl {
        assert_eq!(nodes.len(), switch_of.len());
        let max_id = nodes.iter().map(|n| n.index()).max().map_or(0, |m| m + 1);
        let mut switch_map = vec![UNCOVERED; max_id];
        let mut local_of = vec![0u32; max_id];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_switches];
        for (&n, &s) in nodes.iter().zip(switch_of) {
            assert!((s as usize) < num_switches, "switch {s} out of range");
            assert_eq!(switch_map[n.index()], UNCOVERED, "duplicate node {n}");
            switch_map[n.index()] = s;
            local_of[n.index()] = members[s as usize].len() as u32;
            members[s as usize].push(n);
        }
        let intra_mats: Vec<Vec<f64>> = members
            .iter()
            .map(|ms| {
                let m = ms.len();
                let mut mat = vec![0.0; m * m];
                for (i, &u) in ms.iter().enumerate() {
                    for (j, &v) in ms.iter().enumerate().skip(i + 1) {
                        let val = intra(u, v);
                        mat[i * m + j] = val;
                        mat[j * m + i] = val;
                    }
                }
                mat
            })
            .collect();
        let mut inter_mat = vec![0.0; num_switches * num_switches];
        for s in 0..num_switches as u32 {
            for t in (s + 1)..num_switches as u32 {
                if members[s as usize].is_empty() || members[t as usize].is_empty() {
                    continue;
                }
                let val = inter(s, t);
                inter_mat[s as usize * num_switches + t as usize] = val;
                inter_mat[t as usize * num_switches + s as usize] = val;
            }
        }
        TieredNl {
            switch_of: switch_map,
            local_of,
            members,
            intra: intra_mats,
            inter: inter_mat,
        }
    }

    /// Collapse a dense matrix into the tiered form: intra-switch pairs are
    /// copied exactly; each inter-switch cell becomes the *mean* over the
    /// member cross pairs (sum-preserving, so group sums stay calibrated).
    pub fn from_dense(dense: &SymMatrix<f64>, nodes: &[NodeId], index: &SwitchIndex) -> TieredNl {
        let switch_of: Vec<u32> = nodes.iter().map(|&n| index.switch_of(n).0).collect();
        // mean per switch pair, computed over the covered node set
        let s_count = index.num_switches();
        let mut sums = vec![0.0f64; s_count * s_count];
        let mut counts = vec![0u64; s_count * s_count];
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                let (su, sv) = (index.switch_of(u).0 as usize, index.switch_of(v).0 as usize);
                if su != sv {
                    sums[su * s_count + sv] += dense.get(u, v);
                    counts[su * s_count + sv] += 1;
                    sums[sv * s_count + su] = sums[su * s_count + sv];
                    counts[sv * s_count + su] = counts[su * s_count + sv];
                }
            }
        }
        TieredNl::from_fns(
            nodes,
            &switch_of,
            s_count,
            |u, v| dense.get(u, v),
            |s, t| {
                let k = s as usize * s_count + t as usize;
                if counts[k] == 0 {
                    0.0
                } else {
                    sums[k] / counts[k] as f64
                }
            },
        )
    }

    /// Number of switch buckets.
    pub fn num_switches(&self) -> usize {
        self.members.len()
    }

    /// Switch bucket of a covered node.
    pub fn switch_of_node(&self, n: NodeId) -> u32 {
        let s = self.switch_of[n.index()];
        debug_assert_ne!(s, UNCOVERED, "node {n} not covered by tiered NL");
        s
    }

    /// Covered nodes of switch `s`, ascending id.
    pub fn switch_members(&self, s: u32) -> &[NodeId] {
        &self.members[s as usize]
    }

    /// Aggregated value for a switch pair (`s ≠ t`).
    pub fn inter_value(&self, s: u32, t: u32) -> f64 {
        debug_assert_ne!(s, t);
        self.inter[s as usize * self.members.len() + t as usize]
    }

    /// Network load between two distinct covered nodes.
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        let (su, sv) = (self.switch_of[u.index()], self.switch_of[v.index()]);
        debug_assert!(su != UNCOVERED && sv != UNCOVERED);
        if su == sv {
            let m = self.members[su as usize].len();
            self.intra[su as usize]
                [self.local_of[u.index()] as usize * m + self.local_of[v.index()] as usize]
        } else {
            self.inter[su as usize * self.members.len() + sv as usize]
        }
    }

    /// Σ over all unordered pairs of `usable` (a subset of the covered
    /// nodes), in O(Σ m_s² + S²) instead of O(|usable|²): intra pairs are
    /// summed exactly, inter pairs contribute `count_s · count_t · inter`.
    pub fn pair_sum(&self, usable: &[NodeId]) -> f64 {
        let s_count = self.members.len();
        let mut by_switch: Vec<Vec<NodeId>> = vec![Vec::new(); s_count];
        for &n in usable {
            by_switch[self.switch_of_node(n) as usize].push(n);
        }
        let mut total = 0.0;
        for ms in &by_switch {
            for (i, &u) in ms.iter().enumerate() {
                for &v in &ms[i + 1..] {
                    total += self.get(u, v);
                }
            }
        }
        for s in 0..s_count {
            let cs = by_switch[s].len() as f64;
            if cs == 0.0 {
                continue;
            }
            for (t, mt) in by_switch.iter().enumerate().skip(s + 1) {
                let ct = mt.len() as f64;
                if ct > 0.0 {
                    total += cs * ct * self.inter[s * s_count + t];
                }
            }
        }
        total
    }

    /// For every node of `usable`, the minimum NL to any *other* usable
    /// node (`f64::INFINITY` when `usable` is a singleton). Used as the
    /// network term of the pruning lower bound.
    pub fn min_incident(&self, usable: &[NodeId]) -> Vec<f64> {
        let s_count = self.members.len();
        let mut counts = vec![0usize; s_count];
        for &n in usable {
            counts[self.switch_of_node(n) as usize] += 1;
        }
        // per switch: min inter value to any other switch with usable nodes
        let min_inter: Vec<f64> = (0..s_count)
            .map(|s| {
                let mut m = f64::INFINITY;
                for (t, &ct) in counts.iter().enumerate() {
                    if t != s && ct > 0 {
                        m = m.min(self.inter[s * s_count + t]);
                    }
                }
                m
            })
            .collect();
        // group usable nodes by switch for intra row scans
        let mut by_switch: Vec<Vec<NodeId>> = vec![Vec::new(); s_count];
        for &n in usable {
            by_switch[self.switch_of_node(n) as usize].push(n);
        }
        usable
            .iter()
            .map(|&u| {
                let s = self.switch_of_node(u) as usize;
                let mut m = min_inter[s];
                for &v in &by_switch[s] {
                    if v != u {
                        m = m.min(self.get(u, v));
                    }
                }
                m
            })
            .collect()
    }
}

/// A tiered network load whose inter-switch values are *estimates* with
/// per-switch-pair error bounds (from the sharded monitor's landmark
/// sampling, see `nlrm-monitor`'s `estimate` module).
///
/// Point queries delegate to the inner [`TieredNl`]; the extra `inter_lo`
/// matrix gives a certified lower bound per switch pair, which
/// [`EstimatedNl::min_incident`] uses so Alg. 2's pruning bound stays a
/// true lower bound — an estimate-driven prune can never discard the exact
/// optimum. Intra-switch pairs are directly measured, so their bounds are
/// the value itself.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedNl {
    point: TieredNl,
    /// `S×S` row-major lower bounds for inter-switch values.
    inter_lo: Vec<f64>,
    /// `S×S` row-major upper bounds.
    inter_hi: Vec<f64>,
}

impl EstimatedNl {
    /// Wrap a point estimate with inter-switch bound matrices (`S×S`
    /// row-major, diagonal unused). Bounds are clamped so that
    /// `lo ≤ point ≤ hi` always holds, even if normalization or staleness
    /// blending nudged the point outside the raw measurement bands.
    pub fn new(point: TieredNl, mut inter_lo: Vec<f64>, mut inter_hi: Vec<f64>) -> EstimatedNl {
        let s_count = point.num_switches();
        assert_eq!(inter_lo.len(), s_count * s_count, "lo matrix shape");
        assert_eq!(inter_hi.len(), s_count * s_count, "hi matrix shape");
        for s in 0..s_count {
            for t in 0..s_count {
                if s == t {
                    continue;
                }
                let k = s * s_count + t;
                let p = point.inter[k];
                inter_lo[k] = inter_lo[k].min(p);
                inter_hi[k] = inter_hi[k].max(p);
            }
        }
        EstimatedNl {
            point,
            inter_lo,
            inter_hi,
        }
    }

    /// The point-estimate tiered structure.
    pub fn point(&self) -> &TieredNl {
        &self.point
    }

    /// `[lo, hi]` bounds for a distinct covered pair. Same-switch pairs
    /// are measured, so both bounds equal the value.
    pub fn bounds(&self, u: NodeId, v: NodeId) -> (f64, f64) {
        let (su, sv) = (
            self.point.switch_of_node(u) as usize,
            self.point.switch_of_node(v) as usize,
        );
        if su == sv {
            let p = self.point.get(u, v);
            (p, p)
        } else {
            let s_count = self.point.num_switches();
            (
                self.inter_lo[su * s_count + sv],
                self.inter_hi[su * s_count + sv],
            )
        }
    }

    /// Point value for a distinct pair.
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.point.get(u, v)
    }

    /// Σ point values over all unordered pairs of `usable`.
    pub fn pair_sum(&self, usable: &[NodeId]) -> f64 {
        self.point.pair_sum(usable)
    }

    /// Per-node minimum *lower-bound* NL to any other usable node: intra
    /// pairs use their exact values, inter pairs the `inter_lo` bound. The
    /// result underestimates the point-value answer, keeping the pruning
    /// bound sound under estimation error.
    pub fn min_incident(&self, usable: &[NodeId]) -> Vec<f64> {
        let s_count = self.point.num_switches();
        let mut counts = vec![0usize; s_count];
        for &n in usable {
            counts[self.point.switch_of_node(n) as usize] += 1;
        }
        let min_inter: Vec<f64> = (0..s_count)
            .map(|s| {
                let mut m = f64::INFINITY;
                for (t, &ct) in counts.iter().enumerate() {
                    if t != s && ct > 0 {
                        m = m.min(self.inter_lo[s * s_count + t]);
                    }
                }
                m
            })
            .collect();
        let mut by_switch: Vec<Vec<NodeId>> = vec![Vec::new(); s_count];
        for &n in usable {
            by_switch[self.point.switch_of_node(n) as usize].push(n);
        }
        usable
            .iter()
            .map(|&u| {
                let s = self.point.switch_of_node(u) as usize;
                let mut m = min_inter[s];
                for &v in &by_switch[s] {
                    if v != u {
                        m = m.min(self.point.get(u, v));
                    }
                }
                m
            })
            .collect()
    }
}

/// The network-load representation carried by `Loads`, behind `nl_between`.
#[derive(Debug, Clone, PartialEq)]
pub enum NlRep {
    /// Exact V×V pair matrix (the original representation).
    Dense(SymMatrix<f64>),
    /// Exact intra-switch, aggregated inter-switch.
    Tiered(TieredNl),
    /// Tiered point estimate with inter-switch error bounds (sharded
    /// monitoring); pruning consumes the lower bounds.
    Estimated(EstimatedNl),
}

impl NlRep {
    /// Value for a distinct pair.
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        match self {
            NlRep::Dense(m) => m.get(u, v),
            NlRep::Tiered(t) => t.get(u, v),
            NlRep::Estimated(e) => e.get(u, v),
        }
    }

    /// Σ over all unordered pairs of `usable`.
    pub fn pair_sum(&self, usable: &[NodeId]) -> f64 {
        match self {
            NlRep::Dense(m) => {
                let mut total = 0.0;
                for (i, &u) in usable.iter().enumerate() {
                    for &v in &usable[i + 1..] {
                        total += m.get(u, v);
                    }
                }
                total
            }
            NlRep::Tiered(t) => t.pair_sum(usable),
            NlRep::Estimated(e) => e.pair_sum(usable),
        }
    }

    /// Per-node minimum NL to any other usable node (∞ for singletons).
    /// For the `Estimated` representation this is a certified *lower
    /// bound* (inter pairs use their lower bands), so pruning bounds built
    /// on it never exceed the true cost.
    pub fn min_incident(&self, usable: &[NodeId]) -> Vec<f64> {
        match self {
            NlRep::Dense(m) => usable
                .iter()
                .map(|&u| {
                    let mut best = f64::INFINITY;
                    for &v in usable {
                        if v != u {
                            best = best.min(m.get(u, v));
                        }
                    }
                    best
                })
                .collect(),
            NlRep::Tiered(t) => t.min_incident(usable),
            NlRep::Estimated(e) => e.min_incident(usable),
        }
    }

    /// The tiered structure, when this representation has one (the
    /// `Estimated` variant exposes its point estimate).
    pub fn as_tiered(&self) -> Option<&TieredNl> {
        match self {
            NlRep::Tiered(t) => Some(t),
            NlRep::Estimated(e) => Some(e.point()),
            NlRep::Dense(_) => None,
        }
    }
}

impl From<SymMatrix<f64>> for NlRep {
    fn from(m: SymMatrix<f64>) -> NlRep {
        NlRep::Dense(m)
    }
}

impl From<TieredNl> for NlRep {
    fn from(t: TieredNl) -> NlRep {
        NlRep::Tiered(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_topology::SwitchId;

    fn index_2x3() -> SwitchIndex {
        // nodes 0..3 on switch 0, 3..6 on switch 1
        SwitchIndex::from_assignment(
            vec![
                SwitchId(0),
                SwitchId(0),
                SwitchId(0),
                SwitchId(1),
                SwitchId(1),
                SwitchId(1),
            ],
            2,
        )
    }

    fn dense_6() -> SymMatrix<f64> {
        let mut m = SymMatrix::new(6, 0.0);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                m.set(NodeId(u), NodeId(v), (u * 10 + v) as f64);
            }
        }
        m
    }

    #[test]
    fn intra_pairs_are_exact() {
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            assert_eq!(t.get(NodeId(u), NodeId(v)), dense.get(NodeId(u), NodeId(v)));
            assert_eq!(t.get(NodeId(v), NodeId(u)), t.get(NodeId(u), NodeId(v)));
        }
    }

    #[test]
    fn inter_pairs_are_the_mean() {
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        let mut sum = 0.0;
        for u in 0..3u32 {
            for v in 3..6u32 {
                sum += dense.get(NodeId(u), NodeId(v));
            }
        }
        let mean = sum / 9.0;
        for u in 0..3u32 {
            for v in 3..6u32 {
                assert!((t.get(NodeId(u), NodeId(v)) - mean).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pair_sum_matches_dense_exactly() {
        // mean aggregation preserves per-switch-pair sums, so the total
        // over the whole universe is identical (up to rounding)
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        let dense_rep = NlRep::Dense(dense);
        let want = dense_rep.pair_sum(&nodes);
        assert!((t.pair_sum(&nodes) - want).abs() < 1e-9);
    }

    #[test]
    fn uniform_cross_pairs_reproduce_dense_everywhere() {
        // the tree-topology model: every cross pair sees the same trunk
        let idx = index_2x3();
        let mut dense = SymMatrix::new(6, 0.0);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                let same = (u < 3) == (v < 3);
                dense.set(
                    NodeId(u),
                    NodeId(v),
                    if same { (u + v) as f64 } else { 7.5 },
                );
            }
        }
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                assert_eq!(t.get(NodeId(u), NodeId(v)), dense.get(NodeId(u), NodeId(v)));
            }
        }
    }

    #[test]
    fn min_incident_matches_bruteforce() {
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        let tiered_rep = NlRep::Tiered(t.clone());
        let mins = tiered_rep.min_incident(&nodes);
        for (i, &u) in nodes.iter().enumerate() {
            let mut want = f64::INFINITY;
            for &v in &nodes {
                if v != u {
                    want = want.min(t.get(u, v));
                }
            }
            assert_eq!(mins[i], want);
        }
    }

    #[test]
    fn restricted_pair_sum_uses_only_the_subset() {
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = NlRep::Tiered(TieredNl::from_dense(&dense, &nodes, &idx));
        // subset spanning both switches
        let subset = [NodeId(0), NodeId(2), NodeId(4)];
        let manual =
            t.get(NodeId(0), NodeId(2)) + t.get(NodeId(0), NodeId(4)) + t.get(NodeId(2), NodeId(4));
        assert!((t.pair_sum(&subset) - manual).abs() < 1e-12);
    }

    #[test]
    fn singleton_min_incident_is_infinite() {
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = NlRep::Tiered(TieredNl::from_dense(&dense, &nodes, &idx));
        assert_eq!(t.min_incident(&[NodeId(1)]), vec![f64::INFINITY]);
    }

    fn estimated_6(margin: f64) -> EstimatedNl {
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        let s = t.num_switches();
        let mut lo = vec![0.0; s * s];
        let mut hi = vec![0.0; s * s];
        for a in 0..s {
            for b in 0..s {
                if a != b {
                    lo[a * s + b] = t.inter_value(a as u32, b as u32) - margin;
                    hi[a * s + b] = t.inter_value(a as u32, b as u32) + margin;
                }
            }
        }
        EstimatedNl::new(t, lo, hi)
    }

    #[test]
    fn estimated_point_queries_match_tiered() {
        let e = estimated_6(3.0);
        let t = e.point().clone();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let rep = NlRep::Estimated(e);
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                assert_eq!(rep.get(u, v), t.get(u, v));
            }
        }
        assert_eq!(rep.pair_sum(&nodes), t.pair_sum(&nodes));
        assert!(rep.as_tiered().is_some());
    }

    #[test]
    fn estimated_bounds_bracket_the_point() {
        let e = estimated_6(3.0);
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                let (lo, hi) = e.bounds(u, v);
                let p = e.get(u, v);
                assert!(lo <= p && p <= hi, "bounds({u},{v}) = [{lo},{hi}] ∌ {p}");
                if e.point().switch_of_node(u) == e.point().switch_of_node(v) {
                    assert_eq!(lo, hi, "intra pairs are exact");
                }
            }
        }
    }

    #[test]
    fn estimated_min_incident_is_a_lower_bound() {
        let e = estimated_6(3.0);
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let point_mins = NlRep::Tiered(e.point().clone()).min_incident(&nodes);
        let est_mins = NlRep::Estimated(e).min_incident(&nodes);
        for (lo, p) in est_mins.iter().zip(&point_mins) {
            assert!(lo <= p, "estimated min_incident {lo} above point {p}");
        }
    }

    #[test]
    fn estimated_new_clamps_inverted_bounds() {
        // hand the constructor bounds that exclude the point: they must be
        // widened to contain it
        let idx = index_2x3();
        let dense = dense_6();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let t = TieredNl::from_dense(&dense, &nodes, &idx);
        let s = t.num_switches();
        let e = EstimatedNl::new(t, vec![1e9; s * s], vec![-1e9; s * s]);
        let (lo, hi) = e.bounds(NodeId(0), NodeId(4));
        let p = e.get(NodeId(0), NodeId(4));
        assert!(lo <= p && p <= hi);
    }
}
