//! Property-based tests for the broker's reservation accounting: under any
//! interleaving of submissions, scheduling passes, and completions, the
//! books must balance.

use nlrm_cluster::iitk::small_cluster;
use nlrm_core::broker::{Broker, BrokerConfig, BrokerEvent, JobId};
use nlrm_core::AllocationRequest;
use nlrm_monitor::{ClusterSnapshot, MonitorRuntime};
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;
use proptest::prelude::*;

const NODES: usize = 6;
const PPN: u32 = 4;

fn snapshot(seed: u64) -> ClusterSnapshot {
    let mut cluster = small_cluster(NODES, seed);
    let mut rt = MonitorRuntime::new(&cluster);
    rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
        .unwrap()
}

/// A random broker action.
#[derive(Debug, Clone)]
enum Action {
    Submit(u32),
    Tick,
    CompleteOldest,
    CancelNewestQueued,
    CancelOldestRunning,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u32..20).prop_map(Action::Submit),
        Just(Action::Tick),
        Just(Action::CompleteOldest),
        Just(Action::CancelNewestQueued),
        Just(Action::CancelOldestRunning),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sequence of actions runs, per-node reservations never
    /// exceed the node's capacity, totals balance against running leases,
    /// and completing everything returns the books to zero.
    #[test]
    fn reservations_always_balance(
        actions in proptest::collection::vec(arb_action(), 1..40),
        seed in 0u64..50,
    ) {
        let snap = snapshot(seed);
        let mut broker = Broker::new(BrokerConfig {
            backfill: true,
            max_load_per_core: None,
            ..BrokerConfig::default()
        });
        let mut running: Vec<JobId> = Vec::new();
        for action in actions {
            match action {
                Action::Submit(procs) => {
                    broker
                        .submit("j", AllocationRequest::new(procs, Some(PPN), 0.3, 0.7))
                        .unwrap();
                }
                Action::Tick => {
                    for ev in broker.tick(&snap) {
                        if let BrokerEvent::Started(l) = ev {
                            running.push(l.id);
                        }
                    }
                }
                Action::CompleteOldest => {
                    if !running.is_empty() {
                        let id = running.remove(0);
                        prop_assert!(broker.complete(id).is_some());
                    }
                }
                Action::CancelNewestQueued => {
                    if let Some(&id) = broker.queued().last() {
                        prop_assert!(broker.cancel(id));
                    }
                }
                Action::CancelOldestRunning => {
                    if !running.is_empty() {
                        let id = running.remove(0);
                        prop_assert!(broker.cancel(id), "running job must be cancellable");
                        prop_assert!(broker.complete(id).is_none(), "cancel released the lease");
                    }
                }
            }
            // invariants after every step
            let mut total_reserved = 0u32;
            for i in 0..NODES as u32 {
                let r = broker.reserved_on(NodeId(i));
                prop_assert!(r <= PPN, "node {i} over-reserved: {r}");
                total_reserved += r;
            }
            let lease_total: u32 = broker
                .running()
                .iter()
                .map(|l| l.allocation.total_procs())
                .collect::<Vec<_>>()
                .iter()
                .sum();
            prop_assert_eq!(total_reserved, lease_total, "books out of balance");
            prop_assert_eq!(broker.running().len(), running.len());
        }
        // drain: completing everything zeroes the books
        for id in running {
            broker.complete(id);
        }
        for i in 0..NODES as u32 {
            prop_assert_eq!(broker.reserved_on(NodeId(i)), 0);
        }
    }

    /// Started leases never overlap: no node is simultaneously leased past
    /// its capacity even across many concurrent jobs.
    #[test]
    fn concurrent_leases_are_capacity_disjoint(
        jobs in proptest::collection::vec(1u32..16, 1..8),
        seed in 0u64..50,
    ) {
        let snap = snapshot(seed);
        let mut broker = Broker::new(BrokerConfig {
            backfill: true,
            max_load_per_core: None,
            ..BrokerConfig::default()
        });
        for procs in &jobs {
            broker
                .submit("j", AllocationRequest::new(*procs, Some(PPN), 0.3, 0.7))
                .unwrap();
        }
        broker.tick(&snap);
        let mut per_node = vec![0u32; NODES];
        for lease in broker.running() {
            for &(node, procs) in &lease.allocation.nodes {
                per_node[node.index()] += procs;
            }
        }
        for (i, &used) in per_node.iter().enumerate() {
            prop_assert!(used <= PPN, "node {i} leased {used} > {PPN}");
        }
        // started + queued == submitted
        prop_assert_eq!(broker.running().len() + broker.queued().len(), jobs.len());
    }
}
