//! Property-based tests for the allocator's building blocks, driven by
//! synthetic `Loads` so the whole input space is explored (not just states
//! the simulator happens to produce).

use nlrm_core::candidate::{generate_all_candidates, generate_candidate};
use nlrm_core::loads::{effective_pc, Loads};
use nlrm_core::saw::{normalize_sum, saw_scores, unidirectional, Column, Criterion};
use nlrm_core::select::{group_cost, select_best};
use nlrm_monitor::SymMatrix;
use nlrm_topology::NodeId;
use proptest::prelude::*;

/// Strategy: a synthetic `Loads` with n usable nodes, arbitrary CL values,
/// an arbitrary symmetric NL matrix, and per-node capacities.
fn arb_loads() -> impl Strategy<Value = Loads> {
    (2usize..12)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0.0f64..10.0, n),
                proptest::collection::vec(0.0f64..10.0, n * n),
                proptest::collection::vec(1u32..8, n),
            )
        })
        .prop_map(|(n, cl, nl_raw, pc)| {
            let usable: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
            let mut nl = SymMatrix::new(n, 0.0);
            for i in 0..n {
                for j in (i + 1)..n {
                    nl.set(NodeId(i as u32), NodeId(j as u32), nl_raw[i * n + j]);
                }
            }
            Loads::from_parts(usable, cl, nl, pc)
        })
}

proptest! {
    /// Eq. 3 bounds: `pc_v` is always in `[1, coreCount]`.
    #[test]
    fn effective_pc_bounds(cores in 1u32..256, load in 0.0f64..1e4) {
        let pc = effective_pc(cores, load);
        prop_assert!(pc >= 1 && pc <= cores);
        // idle node gets everything
        prop_assert_eq!(effective_pc(cores, 0.0), cores);
    }

    /// Sum normalization produces a probability-like vector.
    #[test]
    fn normalization_is_a_distribution(values in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let n = normalize_sum(&values);
        prop_assert!(n.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        let sum: f64 = n.iter().sum();
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9);
    }

    /// Complementing preserves scores ≥ 0 and reverses the ordering.
    #[test]
    fn complement_reverses_order(values in proptest::collection::vec(0.0f64..1e6, 2..50)) {
        let norm = normalize_sum(&values);
        let comp = unidirectional(&norm, Criterion::Maximize);
        prop_assert!(comp.iter().all(|&x| x >= -1e-12));
        for i in 0..values.len() {
            for j in 0..values.len() {
                if norm[i] < norm[j] {
                    prop_assert!(comp[i] >= comp[j] - 1e-12);
                }
            }
        }
    }

    /// SAW ranking is invariant to rescaling any column's raw values.
    #[test]
    fn saw_is_scale_invariant(
        col1 in proptest::collection::vec(0.1f64..100.0, 4),
        col2 in proptest::collection::vec(0.1f64..100.0, 4),
        scale in 0.1f64..1000.0,
    ) {
        let build = |c1: &[f64]| {
            saw_scores(&[
                Column { values: c1.to_vec(), criterion: Criterion::Minimize, weight: 0.6 },
                Column { values: col2.clone(), criterion: Criterion::Maximize, weight: 0.4 },
            ])
        };
        let a = build(&col1);
        let scaled: Vec<f64> = col1.iter().map(|v| v * scale).collect();
        let b = build(&scaled);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert_eq!(a[i] < a[j] - 1e-12, b[i] < b[j] - 1e-12);
            }
        }
    }

    /// Algorithm 1 on arbitrary loads: the candidate covers the request,
    /// starts at its seed node, and never repeats a node.
    #[test]
    fn candidates_always_cover_request(
        loads in arb_loads(),
        n_procs in 1u32..64,
        alpha in 0.0f64..=1.0,
    ) {
        let beta = 1.0 - alpha;
        for &start in &loads.usable {
            let c = generate_candidate(&loads, start, n_procs, alpha, beta);
            prop_assert_eq!(c.total_procs(), n_procs);
            prop_assert_eq!(c.nodes[0], start);
            let mut uniq = c.nodes.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), c.nodes.len());
            // within capacity unless the cluster was exhausted
            let cap: u64 = loads.usable.iter().map(|&u| loads.pc_of(u) as u64).sum();
            if (n_procs as u64) <= cap {
                for (&node, &p) in c.nodes.iter().zip(&c.procs) {
                    prop_assert!(p <= loads.pc_of(node));
                }
            }
        }
    }

    /// Algorithm 2 picks a true minimum of its own cost table.
    #[test]
    fn selection_minimizes_cost_table(
        loads in arb_loads(),
        n_procs in 1u32..32,
        alpha in 0.0f64..=1.0,
    ) {
        let beta = 1.0 - alpha;
        let candidates = generate_all_candidates(&loads, n_procs, alpha, beta);
        let sel = select_best(&loads, &candidates, alpha, beta);
        prop_assert_eq!(sel.costs.len(), candidates.len());
        for &(_, t) in &sel.costs {
            prop_assert!(sel.best_cost <= t + 1e-12);
            prop_assert!(t.is_finite());
        }
    }

    /// The globally-normalized group cost is monotone under inclusion and
    /// equals α+β on the full universe.
    #[test]
    fn group_cost_monotone(loads in arb_loads(), alpha in 0.0f64..=1.0) {
        let beta = 1.0 - alpha;
        let all = loads.usable.clone();
        let full = group_cost(&loads, &all, alpha, beta);
        prop_assert!((full - 1.0).abs() < 1e-9 || full.abs() < 1e-9);
        let mut prefix = Vec::new();
        let mut prev = 0.0;
        for &u in &all {
            prefix.push(u);
            let cost = group_cost(&loads, &prefix, alpha, beta);
            prop_assert!(cost + 1e-12 >= prev);
            prev = cost;
        }
    }
}
