//! Acceptance test for the scaling paths: the heap-based, parallel, tiered,
//! and bound-pruned allocators must pick the *same winner* as the original
//! serial dense path.
//!
//! The cluster is synthetic with uniform cross-switch pair loads — the
//! tree-topology model under which the tiered representation is exact — so
//! every comparison below is exact equality, not tolerance-based.
//!
//! This file holds a single `#[test]` on purpose: it flips `NLRM_THREADS`
//! mid-test to force the parallel path, and environment variables are
//! process-global.

use nlrm_core::candidate::generate_all_candidates;
use nlrm_core::select::{group_cost, select_best};
use nlrm_core::{allocate_pruned, Loads};
use nlrm_monitor::SymMatrix;
use nlrm_topology::{NodeId, SwitchId, SwitchIndex};

const NODES: u32 = 12;
const PER_SWITCH: u32 = 4;

fn switch_index() -> SwitchIndex {
    let assignment: Vec<SwitchId> = (0..NODES).map(|n| SwitchId(n / PER_SWITCH)).collect();
    SwitchIndex::from_assignment(assignment, (NODES / PER_SWITCH) as usize)
}

/// Deterministic varied loads: intra pairs differ per pair, cross pairs
/// depend only on the switch pair (the tree model), CL spread out, one
/// zero-capacity node.
fn dense_loads() -> Loads {
    let mut nl = SymMatrix::new(NODES as usize, 0.0);
    for u in 0..NODES {
        for v in (u + 1)..NODES {
            let (su, sv) = (u / PER_SWITCH, v / PER_SWITCH);
            // cross values are dyadic rationals so the tiered mean
            // aggregation reproduces them bit-exactly
            let val = if su == sv {
                0.05 + (0.013 * (u * 31 + v * 7) as f64) % 0.4
            } else {
                0.25 * (1 + su + sv) as f64
            };
            nl.set(NodeId(u), NodeId(v), val);
        }
    }
    let usable: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cl: Vec<f64> = (0..NODES)
        .map(|n| 0.1 + 0.07 * ((n * 13) % 11) as f64)
        .collect();
    let mut pc: Vec<u32> = (0..NODES).map(|n| 2 + (n * 5) % 4).collect();
    pc[7] = 0; // one saturated node
    Loads::from_parts(usable, cl, nl, pc)
}

fn winner_of(loads: &Loads, n: u32, alpha: f64, beta: f64) -> (NodeId, f64) {
    let cands = generate_all_candidates(loads, n, alpha, beta);
    assert!(!cands.is_empty());
    let sel = select_best(loads, &cands, alpha, beta);
    (cands[sel.best].start, sel.best_cost)
}

#[test]
fn all_scaling_paths_agree_with_serial_dense() {
    std::env::set_var("NLRM_THREADS", "1");
    let dense = dense_loads();
    let tiered = dense.clone().into_tiered(&switch_index());

    for n in [1u32, 5, 12, 30, 60] {
        for &(alpha, beta) in &[(0.3, 0.7), (1.0, 0.0), (0.0, 1.0), (0.5, 0.5)] {
            // serial dense is the reference
            let dense_cands = generate_all_candidates(&dense, n, alpha, beta);
            let reference = winner_of(&dense, n, alpha, beta);

            // tiered candidates and winner are identical (uniform cross pairs)
            let tiered_cands = generate_all_candidates(&tiered, n, alpha, beta);
            assert_eq!(
                dense_cands, tiered_cands,
                "tiered candidates n={n} α={alpha}"
            );
            assert_eq!(winner_of(&tiered, n, alpha, beta), reference);

            // the fused pruned path lands on the same start, on both reps,
            // under the same (group_cost, start id) order
            // exhaustive winner under (group_cost, start id), per rep: the
            // tiered universe total N_all is summed in a different order,
            // so costs agree only to the ulp *across* reps — each pruned
            // pass must match its own rep exactly, and both must land on
            // the same start node
            let exhaustive_on = |loads: &Loads, cands: &[_]| {
                cands
                    .iter()
                    .map(|c: &nlrm_core::candidate::Candidate| {
                        (group_cost(loads, &c.nodes, alpha, beta), c.start)
                    })
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .unwrap()
            };
            let exhaustive_dense = exhaustive_on(&dense, &dense_cands);
            let exhaustive_tiered = exhaustive_on(&tiered, &tiered_cands);
            let pruned_dense = allocate_pruned(&dense, n, alpha, beta).unwrap();
            let pruned_tiered = allocate_pruned(&tiered, n, alpha, beta).unwrap();
            assert_eq!(
                (pruned_dense.cost, pruned_dense.winner.start),
                exhaustive_dense,
                "pruned dense n={n} α={alpha}"
            );
            assert_eq!(
                (pruned_tiered.cost, pruned_tiered.winner.start),
                exhaustive_tiered,
                "pruned tiered n={n} α={alpha}"
            );
            assert_eq!(
                pruned_dense.winner.start, pruned_tiered.winner.start,
                "reps must agree on the winning start n={n} α={alpha}"
            );

            // parallel evaluation reproduces the serial results exactly
            std::env::set_var("NLRM_THREADS", "3");
            assert_eq!(
                generate_all_candidates(&dense, n, alpha, beta),
                dense_cands,
                "parallel candidates n={n} α={alpha}"
            );
            assert_eq!(winner_of(&dense, n, alpha, beta), reference);
            std::env::set_var("NLRM_THREADS", "1");
        }
    }
}
