//! Acceptance tests for the estimated network-load representation: the
//! bound-pruned allocator over an [`EstimatedNl`] must never prune the
//! candidate the exact matrix would pick, and the end-to-end sharded
//! monitoring path (per-shard sweeps + landmark estimation) must land
//! within a few percent of the exact-matrix allocation cost.

use nlrm_core::candidate::generate_all_candidates;
use nlrm_core::select::group_cost;
use nlrm_core::{allocate_pruned, EstimatedNl, Loads, NlRep, StalenessPolicy, TieredNl};
use nlrm_core::{ComputeWeights, NetworkWeights};
use nlrm_monitor::daemons::DaemonConfig;
use nlrm_monitor::sample::LatencyStat;
use nlrm_monitor::{MonitorRuntime, MonitorTopo, ShardConfig, SymMatrix};
use nlrm_sim_core::time::Duration;
use nlrm_topology::{NodeId, SwitchId, SwitchIndex};

const NODES: u32 = 12;
const PER_SWITCH: u32 = 4;

fn switch_index() -> SwitchIndex {
    let assignment: Vec<SwitchId> = (0..NODES).map(|n| SwitchId(n / PER_SWITCH)).collect();
    SwitchIndex::from_assignment(assignment, (NODES / PER_SWITCH) as usize)
}

/// Same synthetic universe as the scaling equivalence test: tree-model
/// cross pairs, varied intra pairs and CL, one saturated node.
fn dense_loads() -> Loads {
    let mut nl = SymMatrix::new(NODES as usize, 0.0);
    for u in 0..NODES {
        for v in (u + 1)..NODES {
            let (su, sv) = (u / PER_SWITCH, v / PER_SWITCH);
            let val = if su == sv {
                0.05 + (0.013 * (u * 31 + v * 7) as f64) % 0.4
            } else {
                0.25 * (1 + su + sv) as f64
            };
            nl.set(NodeId(u), NodeId(v), val);
        }
    }
    let usable: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cl: Vec<f64> = (0..NODES)
        .map(|n| 0.1 + 0.07 * ((n * 13) % 11) as f64)
        .collect();
    let mut pc: Vec<u32> = (0..NODES).map(|n| 2 + (n * 5) % 4).collect();
    pc[7] = 0;
    Loads::from_parts(usable, cl, nl, pc)
}

/// Wrap the dense universe in an estimated representation whose point
/// values match the tiered collapse and whose bands are widened by
/// `margin` on each side (so the true inter values always sit inside).
fn estimated_loads(margin: f64) -> Loads {
    let dense = dense_loads();
    let index = switch_index();
    let point = match &dense.nl {
        NlRep::Dense(d) => TieredNl::from_dense(d, &dense.usable, &index),
        _ => unreachable!(),
    };
    let s = index.num_switches();
    let mut lo = vec![0.0f64; s * s];
    let mut hi = vec![0.0f64; s * s];
    for su in 0..s {
        for sv in 0..s {
            if su == sv {
                continue;
            }
            // reconstruct the uniform cross value the synthetic model uses
            let p = 0.25 * (1 + su + sv) as f64;
            lo[su * s + sv] = p * (1.0 - margin);
            hi[su * s + sv] = p * (1.0 + margin);
        }
    }
    Loads::from_parts(
        dense.usable.clone(),
        dense.cl.clone(),
        NlRep::Estimated(EstimatedNl::new(point, lo, hi)),
        dense.pc.clone(),
    )
}

/// The exhaustive winner under (group_cost, start id) order.
fn exhaustive_winner(loads: &Loads, n: u32, alpha: f64, beta: f64) -> (f64, NodeId) {
    let cands = generate_all_candidates(loads, n, alpha, beta);
    assert!(!cands.is_empty());
    cands
        .iter()
        .map(|c| (group_cost(loads, &c.nodes, alpha, beta), c.start))
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .unwrap()
}

/// Pruning over lower-bound estimates must return exactly the winner an
/// exhaustive scan of the same estimated universe finds — for any band
/// width. A lower bound can only under-promise, never hide the optimum.
#[test]
fn pruned_over_estimates_matches_exhaustive_over_estimates() {
    for margin in [0.0, 0.1, 0.5, 2.0] {
        let est = estimated_loads(margin);
        for n in [1u32, 5, 12, 24] {
            for &(alpha, beta) in &[(0.3, 0.7), (0.5, 0.5), (0.0, 1.0)] {
                let want = exhaustive_winner(&est, n, alpha, beta);
                let got = allocate_pruned(&est, n, alpha, beta).unwrap();
                assert_eq!(
                    (got.cost, got.winner.start),
                    want,
                    "margin={margin} n={n} α={alpha}"
                );
            }
        }
    }
}

/// With the tree model exact (the synthetic cross pairs are uniform per
/// switch pair) the estimated representation's winner is the *same node
/// group* the exact dense matrix picks: the estimate never prunes the
/// exact-matrix winner.
#[test]
fn estimated_winner_is_the_exact_matrix_winner_on_tree_models() {
    let dense = dense_loads();
    for margin in [0.0, 0.25, 1.0] {
        let est = estimated_loads(margin);
        for n in [2u32, 8, 16] {
            for &(alpha, beta) in &[(0.3, 0.7), (0.5, 0.5)] {
                let exact = allocate_pruned(&dense, n, alpha, beta).unwrap();
                let estw = allocate_pruned(&est, n, alpha, beta).unwrap();
                assert_eq!(
                    estw.winner.start, exact.winner.start,
                    "margin={margin} n={n} α={alpha}"
                );
                assert_eq!(estw.winner.nodes, exact.winner.nodes);
            }
        }
    }
}

/// Overwrite every usable pair of a (cloned) snapshot with the cluster's
/// noise-free ground truth at the same instant, yielding the exact-matrix
/// oracle the estimate is judged against.
fn oracle_snapshot(
    snap: &nlrm_monitor::ClusterSnapshot,
    cluster: &nlrm_cluster::ClusterSim,
) -> nlrm_monitor::ClusterSnapshot {
    let mut exact = snap.clone();
    let usable = snap.usable_nodes();
    for (i, &u) in usable.iter().enumerate() {
        for &v in &usable[i + 1..] {
            exact
                .latency
                .set(u, v, LatencyStat::constant(cluster.latency_s(u, v)));
            exact
                .bandwidth_bps
                .set(u, v, cluster.available_bandwidth_bps(u, v));
            exact
                .peak_bandwidth_bps
                .set(u, v, cluster.peak_bandwidth_bps(u, v));
        }
    }
    exact
}

/// The equivalence-scenario profile: realistic shared-lab dynamics, but
/// zero probe noise (a central monitor would suffer it identically) and
/// tame per-link heterogeneity so the tree-topology model — the regime
/// the tiered representation was already shown exact under (see
/// `equivalence.rs`) — approximately holds. What remains is exactly the
/// error the estimator itself introduces: rep-pair sampling and landmark
/// inference.
fn equivalence_profile() -> nlrm_cluster::ClusterProfile {
    let mut profile = nlrm_cluster::ClusterProfile::shared_lab();
    profile.measurement_noise = 0.0;
    profile.link_util_sigma = 0.05;
    profile.heavy_flow_rate = 0.0;
    profile
}

/// End-to-end equivalence scenarios: run the sharded monitor over a
/// cluster, then derive loads from its sampled estimate and from the
/// exact ground-truth matrix at the same instant. Winners are selected
/// per representation — sharded estimate vs the exact matrix at the same
/// tiered granularity central uses at scale — and both are costed under
/// the exact *dense* loads: the sharded winner must land within 5% of
/// the exact winner. Covers the all-direct path (iitk, 4 switches) and
/// the landmark-inference path (campus topologies, 13 and 21 switches).
#[test]
fn sharded_estimate_allocation_cost_is_within_5_percent_of_exact() {
    let policy = StalenessPolicy::off();
    let cw = ComputeWeights::paper_default();
    let nw = NetworkWeights::paper_default();

    let profile = equivalence_profile();
    let scenarios: Vec<(&str, nlrm_cluster::ClusterSim)> = vec![
        (
            "iitk",
            nlrm_cluster::iitk::iitk_cluster_with_profile(profile, 42),
        ),
        (
            "campus",
            nlrm_cluster::iitk::campus_with_profile(12, 8, profile, 42),
        ),
        (
            "campus20",
            nlrm_cluster::iitk::campus_with_profile(20, 10, profile, 7),
        ),
    ];
    for (name, mut cluster) in scenarios {
        let idx = cluster.topology().switch_index();
        let mut rt = MonitorRuntime::with_topo(
            &cluster,
            DaemonConfig::default(),
            MonitorTopo::Sharded(ShardConfig::new(idx.clone())),
        );
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        let inter = rt.inter_estimate().expect("estimate published");
        let est = Loads::derive_sharded(&snap, &inter, &idx, &cw, &nw, Some(4), &policy).unwrap();
        assert!(
            matches!(est.nl, NlRep::Estimated(_)),
            "derive_sharded must produce the estimated representation"
        );
        let exact_snap = oracle_snapshot(&snap, &cluster);
        let exact_dense =
            Loads::derive_with_policy(&exact_snap, &cw, &nw, Some(4), &policy).unwrap();
        let exact_tiered = exact_dense.clone().into_tiered(&idx);

        for n in [8u32, 16, 32, 48] {
            for &(alpha, beta) in &[(0.3, 0.7), (0.5, 0.5), (0.7, 0.3)] {
                let exact_sel = allocate_pruned(&exact_tiered, n, alpha, beta).unwrap();
                let est_sel = allocate_pruned(&est, n, alpha, beta).unwrap();
                // cost both winners under the exact dense loads
                let exact_cost = group_cost(&exact_dense, &exact_sel.winner.nodes, alpha, beta);
                let est_cost = group_cost(&exact_dense, &est_sel.winner.nodes, alpha, beta);
                let eps = (est_cost - exact_cost) / exact_cost.max(1e-12);
                assert!(
                    eps <= 0.05,
                    "{name} n={n} α={alpha}: sharded winner costs {est_cost:.6} \
                     vs exact {exact_cost:.6} (ε={eps:.3})"
                );
            }
        }
    }
}

/// `derive_sharded` bounds are sound: every usable pair's point NL sits
/// inside its `[lo, hi]` band.
#[test]
fn derive_sharded_bounds_contain_point_values() {
    let mut cluster = nlrm_cluster::iitk::iitk_cluster(7);
    let idx = cluster.topology().switch_index();
    let mut rt = MonitorRuntime::with_topo(
        &cluster,
        DaemonConfig::default(),
        MonitorTopo::Sharded(ShardConfig::new(idx.clone())),
    );
    let snap = rt
        .warm_snapshot(&mut cluster, Duration::from_secs(360))
        .unwrap();
    let inter = rt.inter_estimate().unwrap();
    let loads = Loads::derive_sharded(
        &snap,
        &inter,
        &idx,
        &ComputeWeights::paper_default(),
        &NetworkWeights::paper_default(),
        Some(4),
        &StalenessPolicy::off(),
    )
    .unwrap();
    let NlRep::Estimated(e) = &loads.nl else {
        panic!("expected estimated representation");
    };
    for (i, &u) in loads.usable.iter().enumerate() {
        for &v in &loads.usable[i + 1..] {
            let p = loads.nl_between(u, v);
            let (lo, hi) = e.bounds(u, v);
            assert!(
                lo <= p + 1e-12 && p <= hi + 1e-12,
                "pair ({u},{v}): point {p} outside [{lo}, {hi}]"
            );
            assert!(lo >= 0.0);
        }
    }
}
