//! Temporary review check: does allocate_pruned always match select_best?

use nlrm_core::candidate::generate_all_candidates;
use nlrm_core::select::select_best;
use nlrm_core::{allocate_pruned, Loads};
use nlrm_monitor::SymMatrix;
use nlrm_topology::NodeId;

#[test]
fn pruned_matches_select_best() {
    let mut mismatches = 0;
    let mut total = 0;
    for seed in 0..200u64 {
        // 4 nodes, pc=2 each, n=4 -> 2-node groups
        let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as f64) / (u32::MAX as f64)
        };
        let nn = 5u32;
        let usable: Vec<NodeId> = (0..nn).map(NodeId).collect();
        let cl: Vec<f64> = (0..nn).map(|_| 0.05 + next()).collect();
        let mut nl = SymMatrix::new(nn as usize, 0.0);
        for u in 0..nn {
            for v in (u + 1)..nn {
                nl.set(NodeId(u), NodeId(v), 0.05 + next());
            }
        }
        let pc: Vec<u32> = (0..nn).map(|_| 2).collect();
        let l = Loads::from_parts(usable, cl, nl, pc);
        for n in [4u32, 6] {
            for &(a, b) in &[(0.3, 0.7), (0.5, 0.5), (0.7, 0.3)] {
                let cands = generate_all_candidates(&l, n, a, b);
                let sel = select_best(&l, &cands, a, b);
                let eq4_start = cands[sel.best].start;
                let pruned = allocate_pruned(&l, n, a, b).unwrap();
                total += 1;
                if pruned.winner.start != eq4_start {
                    mismatches += 1;
                    if mismatches <= 3 {
                        eprintln!(
                            "seed {seed} n {n} a {a}: select_best start {eq4_start}, pruned start {}",
                            pruned.winner.start
                        );
                    }
                }
            }
        }
    }
    eprintln!("mismatches: {mismatches}/{total}");
    assert_eq!(mismatches, 0);
}
