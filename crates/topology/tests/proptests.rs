//! Property-based tests for topology routing on arbitrary trees.

use nlrm_topology::{LinkParams, NodeId, Topology};
use proptest::prelude::*;

/// Strategy: a random tree of up to 8 switches (parent < child index, so
/// it is always a valid rooted tree) with 1–5 nodes per switch.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (1usize..8)
        .prop_flat_map(|num_switches| {
            let parents = (1..num_switches)
                .map(|i| (0..i).prop_map(Some).boxed())
                .collect::<Vec<_>>();
            let node_counts = proptest::collection::vec(1usize..5, num_switches);
            (parents, node_counts)
        })
        .prop_map(|(parent_tail, node_counts)| {
            let mut parents: Vec<Option<usize>> = vec![None];
            parents.extend(parent_tail);
            let mut node_switches = Vec::new();
            for (sw, &count) in node_counts.iter().enumerate() {
                node_switches.extend(std::iter::repeat_n(sw, count));
            }
            Topology::tree(
                &parents,
                &node_switches,
                LinkParams::gigabit(),
                LinkParams::ten_gigabit(),
            )
        })
}

proptest! {
    /// Routing basics on arbitrary trees: self-paths empty, distinct pairs
    /// have ≥ 2 hops, path link-sets are symmetric, hops are bounded by the
    /// tree diameter.
    #[test]
    fn routing_invariants(topo in arb_topology()) {
        let n = topo.num_nodes();
        for u in 0..n {
            for v in 0..n {
                let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                let path = topo.path(u, v);
                if u == v {
                    prop_assert!(path.is_empty());
                    continue;
                }
                prop_assert!(path.len() >= 2, "distinct nodes need 2 access hops");
                // worst case: up the whole switch chain and back down
                prop_assert!(path.len() <= 2 + 2 * topo.num_switches());
                // symmetric as a set of links
                let mut fwd = path.clone();
                let mut bwd = topo.path(v, u);
                fwd.sort();
                bwd.sort();
                prop_assert_eq!(fwd, bwd);
                // no link repeats on a tree path
                let mut dedup = path.clone();
                dedup.sort();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), path.len());
            }
        }
    }

    /// Triangle inequality on hop counts (paths in trees are unique, so
    /// hops(u,w) ≤ hops(u,v) + hops(v,w)).
    #[test]
    fn hops_triangle_inequality(topo in arb_topology()) {
        let n = topo.num_nodes().min(6);
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    let (u, v, w) = (NodeId(u as u32), NodeId(v as u32), NodeId(w as u32));
                    prop_assert!(topo.hops(u, w) <= topo.hops(u, v) + topo.hops(v, w));
                }
            }
        }
    }

    /// Same-switch pairs are never farther than cross-switch pairs from the
    /// same node, and capacity equals the bottleneck along the path.
    #[test]
    fn locality_and_capacity(topo in arb_topology()) {
        let n = topo.num_nodes();
        for u in 0..n {
            for v in 0..n {
                if u == v { continue; }
                let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                if topo.switch_of(u) == topo.switch_of(v) {
                    prop_assert_eq!(topo.hops(u, v), 2);
                }
                // access links are the slowest in this strategy (1G vs 10G
                // trunks), so the bottleneck is always 1 Gb/s
                prop_assert_eq!(topo.path_capacity(u, v), 1e9);
                prop_assert!(topo.base_latency(u, v) > 0.0);
            }
        }
    }

    /// The sequential order is a permutation grouped by switch.
    #[test]
    fn sequential_order_is_switch_grouped_permutation(topo in arb_topology()) {
        let order = topo.sequential_order();
        prop_assert_eq!(order.len(), topo.num_nodes());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), topo.num_nodes());
        // switches appear in contiguous runs
        let switches: Vec<u32> = order.iter().map(|&x| topo.switch_of(x).0).collect();
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        for s in switches {
            if Some(s) != prev {
                prop_assert!(seen.insert(s), "switch {s} appears in two runs");
                prev = Some(s);
            }
        }
    }
}
