//! Switch-tier indexing: O(1) node→switch lookup and per-switch member
//! lists, precomputed once from a [`Topology`].
//!
//! [`Topology::switch_of`] is already O(1), but enumerating a switch's
//! members via [`Topology::nodes_of_switch`] walks every node. The tiered
//! network-load representation and the bucketed candidate generator both
//! need the inverse map repeatedly, so [`SwitchIndex`] materializes it:
//! `switch_of` as a dense vector and `members` grouped per switch in
//! ascending node-id order.

use crate::graph::{NodeId, SwitchId, Topology};
use serde::{Deserialize, Serialize};

/// Dense node↔switch index over a topology (or any assignment of nodes to
/// switch-tier buckets).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchIndex {
    switch_of: Vec<SwitchId>,
    members: Vec<Vec<NodeId>>,
}

impl SwitchIndex {
    /// Build the index from an explicit node→switch assignment.
    /// `switch_of[i]` is the switch of `NodeId(i)`; `num_switches` bounds
    /// the switch-id space (switches may be empty).
    pub fn from_assignment(switch_of: Vec<SwitchId>, num_switches: usize) -> SwitchIndex {
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_switches];
        for (i, &sw) in switch_of.iter().enumerate() {
            assert!(
                sw.index() < num_switches,
                "node {i} assigned to out-of-range switch {sw}"
            );
            members[sw.index()].push(NodeId(i as u32));
        }
        SwitchIndex { switch_of, members }
    }

    /// A uniform assignment: `num_nodes` nodes packed `per_switch` to a
    /// switch in node-id order (the last switch may be partial). Handy for
    /// synthetic sharding at bench scale without building a full topology.
    pub fn uniform(num_nodes: usize, per_switch: usize) -> SwitchIndex {
        assert!(per_switch > 0, "per_switch must be positive");
        let num_switches = num_nodes.div_ceil(per_switch).max(1);
        let switch_of = (0..num_nodes)
            .map(|i| SwitchId((i / per_switch) as u32))
            .collect();
        SwitchIndex::from_assignment(switch_of, num_switches)
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.switch_of.len()
    }

    /// Number of switch buckets (including empty ones).
    pub fn num_switches(&self) -> usize {
        self.members.len()
    }

    /// The switch of `node`.
    pub fn switch_of(&self, node: NodeId) -> SwitchId {
        self.switch_of[node.index()]
    }

    /// Nodes attached to `sw`, ascending node id.
    pub fn members(&self, sw: SwitchId) -> &[NodeId] {
        &self.members[sw.index()]
    }

    /// The raw node→switch assignment, indexed by `NodeId`.
    pub fn assignment(&self) -> &[SwitchId] {
        &self.switch_of
    }

    /// Whether two nodes share a switch.
    pub fn same_switch(&self, u: NodeId, v: NodeId) -> bool {
        self.switch_of[u.index()] == self.switch_of[v.index()]
    }
}

impl Topology {
    /// Precompute the switch-tier index for this topology: O(V) once,
    /// then O(1) membership queries.
    pub fn switch_index(&self) -> SwitchIndex {
        let switch_of: Vec<SwitchId> = self.node_ids().map(|n| self.switch_of(n)).collect();
        SwitchIndex::from_assignment(switch_of, self.num_switches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkParams;

    #[test]
    fn index_matches_topology() {
        let t =
            Topology::star_of_switches(&[2, 3, 4], LinkParams::gigabit(), LinkParams::gigabit());
        let idx = t.switch_index();
        assert_eq!(idx.num_nodes(), 9);
        assert_eq!(idx.num_switches(), 3);
        for n in t.node_ids() {
            assert_eq!(idx.switch_of(n), t.switch_of(n));
        }
        for s in 0..t.num_switches() {
            assert_eq!(
                idx.members(SwitchId(s as u32)),
                t.nodes_of_switch(SwitchId(s as u32))
            );
        }
    }

    #[test]
    fn members_are_sorted_and_partition_nodes() {
        let t =
            Topology::star_of_switches(&[5, 1, 7], LinkParams::gigabit(), LinkParams::gigabit());
        let idx = t.switch_index();
        let mut all: Vec<NodeId> = Vec::new();
        for s in 0..idx.num_switches() {
            let m = idx.members(SwitchId(s as u32));
            assert!(m.windows(2).all(|w| w[0] < w[1]), "members unsorted");
            all.extend_from_slice(m);
        }
        all.sort();
        assert_eq!(all, t.node_ids().collect::<Vec<_>>());
    }

    #[test]
    fn empty_switches_allowed() {
        // campus-style: switch 0 is a router with no nodes
        let idx = SwitchIndex::from_assignment(vec![SwitchId(1), SwitchId(1), SwitchId(2)], 3);
        assert!(idx.members(SwitchId(0)).is_empty());
        assert_eq!(idx.members(SwitchId(1)).len(), 2);
        assert!(idx.same_switch(NodeId(0), NodeId(1)));
        assert!(!idx.same_switch(NodeId(1), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "out-of-range switch")]
    fn out_of_range_assignment_rejected() {
        SwitchIndex::from_assignment(vec![SwitchId(5)], 2);
    }

    #[test]
    fn uniform_packs_in_order_with_partial_tail() {
        let idx = SwitchIndex::uniform(10, 4);
        assert_eq!(idx.num_nodes(), 10);
        assert_eq!(idx.num_switches(), 3);
        assert_eq!(idx.members(SwitchId(0)).len(), 4);
        assert_eq!(idx.members(SwitchId(2)).len(), 2);
        assert_eq!(idx.switch_of(NodeId(7)), SwitchId(1));
    }
}
