//! Routing: the unique tree path between any two nodes.

use crate::graph::{LinkId, NodeId, Topology};

impl Topology {
    /// Ordered list of links on the unique path from `u` to `v`.
    ///
    /// Empty when `u == v`. The path is `u`'s access link, trunks up to the
    /// lowest common ancestor switch, trunks back down, and `v`'s access link.
    pub fn path(&self, u: NodeId, v: NodeId) -> Vec<LinkId> {
        if u == v {
            return Vec::new();
        }
        let su = self.switch_of(u);
        let sv = self.switch_of(v);
        let mut path = vec![self.access_link(u)];
        if su != sv {
            let anc_u = self.ancestors(su);
            let anc_v = self.ancestors(sv);
            // lowest common ancestor: first switch on u's ancestor chain that
            // also appears on v's chain
            let lca = *anc_u
                .iter()
                .find(|s| anc_v.contains(s))
                .expect("tree has a single root, LCA must exist");
            for &s in anc_u.iter().take_while(|&&s| s != lca) {
                path.push(self.uplink(s).expect("non-root ancestor has uplink"));
            }
            let down: Vec<LinkId> = anc_v
                .iter()
                .take_while(|&&s| s != lca)
                .map(|&s| self.uplink(s).expect("non-root ancestor has uplink"))
                .collect();
            path.extend(down.into_iter().rev());
        }
        path.push(self.access_link(v));
        path
    }

    /// Number of links on the path (the paper's "hops": 2 within a switch,
    /// up to 4 across the core).
    pub fn hops(&self, u: NodeId, v: NodeId) -> usize {
        self.path(u, v).len()
    }

    /// Sum of base latencies along the path, in seconds.
    pub fn base_latency(&self, u: NodeId, v: NodeId) -> f64 {
        self.path(u, v)
            .iter()
            .map(|&l| self.link(l).params.latency_s)
            .sum()
    }

    /// Minimum raw capacity along the path, in bits/s (0 for `u == v`,
    /// meaning "no network involved").
    pub fn path_capacity(&self, u: NodeId, v: NodeId) -> f64 {
        self.path(u, v)
            .iter()
            .map(|&l| self.link(l).params.capacity_bps)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{LinkParams, NodeId, Topology};

    fn star() -> Topology {
        // switch 0 core (2 nodes), switches 1,2 leaves (2 nodes each)
        Topology::star_of_switches(&[2, 2, 2], LinkParams::gigabit(), LinkParams::gigabit())
    }

    #[test]
    fn same_node_empty_path() {
        let t = star();
        assert!(t.path(NodeId(0), NodeId(0)).is_empty());
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
    }

    #[test]
    fn same_switch_two_hops() {
        let t = star();
        // nodes 0,1 on the core switch
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 2);
        // nodes 2,3 on leaf switch 1
        assert_eq!(t.hops(NodeId(2), NodeId(3)), 2);
    }

    #[test]
    fn leaf_to_core_three_hops() {
        let t = star();
        // node 2 (leaf sw1) to node 0 (core sw0): access + trunk + access
        assert_eq!(t.hops(NodeId(2), NodeId(0)), 3);
    }

    #[test]
    fn leaf_to_leaf_four_hops() {
        let t = star();
        // node 2 (sw1) to node 4 (sw2): access + trunk up + trunk down + access
        assert_eq!(t.hops(NodeId(2), NodeId(4)), 4);
    }

    #[test]
    fn path_is_symmetric_in_link_set() {
        let t = star();
        let mut p1 = t.path(NodeId(2), NodeId(4));
        let mut p2 = t.path(NodeId(4), NodeId(2));
        p1.sort();
        p2.sort();
        assert_eq!(p1, p2);
    }

    #[test]
    fn latency_accumulates_per_hop() {
        let t = star();
        let per_hop = LinkParams::gigabit().latency_s;
        let lat = t.base_latency(NodeId(2), NodeId(4));
        assert!((lat - 4.0 * per_hop).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_bottleneck() {
        let t = Topology::star_of_switches(
            &[1, 1],
            LinkParams::gigabit(),
            LinkParams {
                capacity_bps: 0.5e9,
                latency_s: 10e-6,
            },
        );
        assert_eq!(t.path_capacity(NodeId(0), NodeId(1)), 0.5e9);
    }

    #[test]
    fn deep_chain_routing() {
        // chain of switches: 0 <- 1 <- 2, node 0 on sw0, node 1 on sw2
        let t = Topology::tree(
            &[None, Some(0), Some(1)],
            &[0, 2],
            LinkParams::gigabit(),
            LinkParams::gigabit(),
        );
        // access + two trunks + access
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 4);
    }

    #[test]
    fn sibling_subtrees_route_through_lca_not_root() {
        // root 0; children 1, 2; 1's children 3, 4. Nodes on 3 and 4.
        let t = Topology::tree(
            &[None, Some(0), Some(0), Some(1), Some(1)],
            &[3, 4],
            LinkParams::gigabit(),
            LinkParams::gigabit(),
        );
        // path: access + up(3->1) + down(1->4) + access = 4 hops (LCA is 1, not root)
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 4);
    }
}
