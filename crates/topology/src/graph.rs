//! Topology data model: nodes, switches, links, and tree builders.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute node (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a switch (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Identifier of a link (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// Index into dense per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl SwitchId {
    /// Index into dense per-switch arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl LinkId {
    /// Index into dense per-link arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Capacity/latency pair describing one physical link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Raw capacity in bits per second.
    pub capacity_bps: f64,
    /// One-way propagation + switching latency in seconds.
    pub latency_s: f64,
}

impl LinkParams {
    /// Gigabit Ethernet with a typical store-and-forward hop latency.
    pub fn gigabit() -> Self {
        LinkParams {
            capacity_bps: 1e9,
            latency_s: 50e-6,
        }
    }

    /// 10 GbE trunk.
    pub fn ten_gigabit() -> Self {
        LinkParams {
            capacity_bps: 10e9,
            latency_s: 30e-6,
        }
    }
}

/// What a link connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A compute node's NIC.
    Node(NodeId),
    /// A switch port.
    Switch(SwitchId),
}

/// A physical link between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Link id (index into [`Topology::links`]).
    pub id: LinkId,
    /// One end.
    pub a: Endpoint,
    /// Other end.
    pub b: Endpoint,
    /// Capacity/latency.
    pub params: LinkParams,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SwitchRec {
    parent: Option<SwitchId>,
    /// Link to the parent switch, when `parent` is set.
    uplink: Option<LinkId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeRec {
    switch: SwitchId,
    access_link: LinkId,
}

/// An immutable cluster topology: a tree of switches with nodes at the leaves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    switches: Vec<SwitchRec>,
    nodes: Vec<NodeRec>,
    links: Vec<Link>,
}

impl Topology {
    /// Build a topology from explicit structure.
    ///
    /// * `switch_parents[i]` — parent of switch `i` (exactly one root = `None`).
    /// * `node_switches[j]` — switch node `j` attaches to.
    /// * `access` — params for node↔switch links.
    /// * `trunk` — params for switch↔switch links.
    pub fn tree(
        switch_parents: &[Option<usize>],
        node_switches: &[usize],
        access: LinkParams,
        trunk: LinkParams,
    ) -> Topology {
        let roots = switch_parents.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1, "topology must have exactly one root switch");
        let mut links = Vec::new();
        let mut switches = Vec::with_capacity(switch_parents.len());
        for (i, parent) in switch_parents.iter().enumerate() {
            let uplink = parent.map(|p| {
                assert!(
                    p < switch_parents.len(),
                    "switch {i} has invalid parent {p}"
                );
                assert!(p != i, "switch {i} cannot be its own parent");
                let id = LinkId(links.len() as u32);
                links.push(Link {
                    id,
                    a: Endpoint::Switch(SwitchId(i as u32)),
                    b: Endpoint::Switch(SwitchId(p as u32)),
                    params: trunk,
                });
                id
            });
            switches.push(SwitchRec {
                parent: parent.map(|p| SwitchId(p as u32)),
                uplink,
            });
        }
        let mut nodes = Vec::with_capacity(node_switches.len());
        for (j, &sw) in node_switches.iter().enumerate() {
            assert!(
                sw < switches.len(),
                "node {j} attaches to invalid switch {sw}"
            );
            let id = LinkId(links.len() as u32);
            links.push(Link {
                id,
                a: Endpoint::Node(NodeId(j as u32)),
                b: Endpoint::Switch(SwitchId(sw as u32)),
                params: access,
            });
            nodes.push(NodeRec {
                switch: SwitchId(sw as u32),
                access_link: id,
            });
        }
        let topo = Topology {
            switches,
            nodes,
            links,
        };
        topo.assert_tree();
        topo
    }

    /// Star-of-switches: switch 0 is the core; switches 1..k hang off it;
    /// `nodes_per_switch[i]` nodes attach to switch `i`. This is the paper's
    /// "4 switches, 10–15 nodes each" shape.
    ///
    /// ```
    /// use nlrm_topology::{LinkParams, NodeId, Topology};
    ///
    /// let topo = Topology::star_of_switches(
    ///     &[2, 2],
    ///     LinkParams::gigabit(),
    ///     LinkParams::gigabit(),
    /// );
    /// assert_eq!(topo.num_nodes(), 4);
    /// // same switch: two access hops; across the star: four
    /// assert_eq!(topo.hops(NodeId(0), NodeId(1)), 2);
    /// assert_eq!(topo.hops(NodeId(0), NodeId(2)), 3);
    /// ```
    pub fn star_of_switches(
        nodes_per_switch: &[usize],
        access: LinkParams,
        trunk: LinkParams,
    ) -> Topology {
        assert!(!nodes_per_switch.is_empty());
        let parents: Vec<Option<usize>> = (0..nodes_per_switch.len())
            .map(|i| if i == 0 { None } else { Some(0) })
            .collect();
        let mut node_switches = Vec::new();
        for (sw, &count) in nodes_per_switch.iter().enumerate() {
            node_switches.extend(std::iter::repeat_n(sw, count));
        }
        Topology::tree(&parents, &node_switches, access, trunk)
    }

    /// A single switch with `n` nodes — the smallest useful topology.
    pub fn single_switch(n: usize, access: LinkParams) -> Topology {
        Topology::star_of_switches(&[n], access, access)
    }

    fn assert_tree(&self) {
        // Walking parents from every switch must reach the root without cycling.
        for s in 0..self.switches.len() {
            let mut seen = 0;
            let mut cur = SwitchId(s as u32);
            while let Some(p) = self.switches[cur.index()].parent {
                cur = p;
                seen += 1;
                assert!(
                    seen <= self.switches.len(),
                    "cycle in switch tree at switch {s}"
                );
            }
        }
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The switch a node attaches to.
    pub fn switch_of(&self, node: NodeId) -> SwitchId {
        self.nodes[node.index()].switch
    }

    /// The node's access link.
    pub fn access_link(&self, node: NodeId) -> LinkId {
        self.nodes[node.index()].access_link
    }

    /// The uplink of a switch towards its parent, if any.
    pub fn uplink(&self, sw: SwitchId) -> Option<LinkId> {
        self.switches[sw.index()].uplink
    }

    /// Nodes attached to a switch, in id order.
    pub fn nodes_of_switch(&self, sw: SwitchId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.switch_of(n) == sw)
            .collect()
    }

    /// Nodes ordered by (switch, id): the "physically sequential" ordering
    /// the paper's `sequential` baseline walks through.
    pub fn sequential_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = self.node_ids().collect();
        order.sort_by_key(|&n| (self.switch_of(n), n));
        order
    }

    /// Switch ancestors from `sw` up to and including the root.
    pub(crate) fn ancestors(&self, sw: SwitchId) -> Vec<SwitchId> {
        let mut out = vec![sw];
        let mut cur = sw;
        while let Some(p) = self.switches[cur.index()].parent {
            out.push(p);
            cur = p;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape_counts() {
        let t =
            Topology::star_of_switches(&[2, 3, 4], LinkParams::gigabit(), LinkParams::gigabit());
        assert_eq!(t.num_nodes(), 9);
        assert_eq!(t.num_switches(), 3);
        // links: 2 trunks + 9 access
        assert_eq!(t.num_links(), 11);
    }

    #[test]
    fn switch_assignment_follows_counts() {
        let t = Topology::star_of_switches(&[2, 3], LinkParams::gigabit(), LinkParams::gigabit());
        assert_eq!(t.switch_of(NodeId(0)), SwitchId(0));
        assert_eq!(t.switch_of(NodeId(1)), SwitchId(0));
        assert_eq!(t.switch_of(NodeId(2)), SwitchId(1));
        assert_eq!(t.nodes_of_switch(SwitchId(1)).len(), 3);
    }

    #[test]
    fn sequential_order_groups_by_switch() {
        let t = Topology::star_of_switches(&[2, 2], LinkParams::gigabit(), LinkParams::gigabit());
        let order = t.sequential_order();
        let switches: Vec<u32> = order.iter().map(|&n| t.switch_of(n).0).collect();
        let mut sorted = switches.clone();
        sorted.sort();
        assert_eq!(switches, sorted);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_rejected() {
        Topology::tree(
            &[None, None],
            &[0, 1],
            LinkParams::gigabit(),
            LinkParams::gigabit(),
        );
    }

    #[test]
    fn deep_tree_ancestors() {
        // chain: 2 -> 1 -> 0
        let t = Topology::tree(
            &[None, Some(0), Some(1)],
            &[2, 2],
            LinkParams::gigabit(),
            LinkParams::gigabit(),
        );
        let anc = t.ancestors(SwitchId(2));
        assert_eq!(anc, vec![SwitchId(2), SwitchId(1), SwitchId(0)]);
    }
}
