//! # nlrm-topology
//!
//! Network topology model for the simulated cluster.
//!
//! The paper's testbed is "a tree-like hierarchical topology with 4 switches,
//! each switch connects 10–15 nodes using Gigabit Ethernet" (§5). This crate
//! models exactly that family: compute nodes attached to switches, switches
//! arranged in a tree, every attachment and trunk being a [`Link`] with a
//! capacity and base latency. Routing walks up to the lowest common ancestor
//! and back down, which gives the 1–4 hop distances the paper's node
//! numbering reflects (Fig. 2a).

pub mod graph;
pub mod route;
pub mod tier;

pub use graph::{Link, LinkId, LinkParams, NodeId, SwitchId, Topology};
pub use tier::SwitchIndex;
