//! miniFE: an implicit finite-element proxy.
//!
//! Models the Mantevo miniFE application (§5 of the paper): a brick-shaped
//! domain of `nx × ny × nz` hexahedral elements — the paper sets
//! `ny = nz = nx` — assembled into a 27-point sparse system and solved with
//! CG. Each CG iteration is:
//!
//! * an SpMV over the rank's rows (≈ `(nx+1)³ / P` rows, 27 nonzeros each)
//!   plus the AXPY/precondition vector work,
//! * a halo exchange of boundary rows on the six subdomain faces,
//! * two dot-product allreduces (8 bytes each) — the latency-bound part
//!   that makes miniFE sensitive to the allocation's pairwise latency.
//!
//! A one-off assembly phase precedes the solve. Cost constants are
//! calibrated for the paper's 25–60% communication share (≈40% at 48
//! processes).

use crate::decomp::Grid3d;
use nlrm_mpi::pattern::{Collective, Message, Phase, Workload};
use nlrm_mpi::Communicator;
use serde::{Deserialize, Serialize};

/// Cycles per matrix row per CG iteration (27-pt SpMV + vector ops).
const CYCLES_PER_ROW: f64 = 700.0;

/// Assembly cost relative to one CG iteration.
const ASSEMBLY_ITER_EQUIV: f64 = 10.0;

/// Bytes per boundary-face row exchanged in the halo (one double + index).
const BYTES_PER_FACE_ROW: f64 = 12.0;

/// The miniFE proxy workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniFe {
    /// Elements per dimension (`nx`; the paper uses `ny = nz = nx`).
    pub nx: u32,
    /// CG iterations (miniFE's default cap is 200).
    pub iterations: usize,
}

impl MiniFe {
    /// A solve of the paper's shape: `nx³` elements, 200 CG iterations.
    pub fn new(nx: u32) -> Self {
        assert!(nx > 0);
        MiniFe {
            nx,
            iterations: 200,
        }
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Total matrix rows: one per mesh node, `(nx+1)³`.
    pub fn rows(&self) -> f64 {
        ((self.nx + 1) as f64).powi(3)
    }

    /// Rows owned per rank.
    pub fn rows_per_rank(&self, p: usize) -> f64 {
        self.rows() / p as f64
    }

    /// Boundary rows on one face of a rank's subdomain.
    fn face_rows(&self, p: usize) -> f64 {
        self.rows_per_rank(p).powf(2.0 / 3.0)
    }
}

impl Workload for MiniFe {
    fn name(&self) -> String {
        format!("miniFE(nx={})", self.nx)
    }

    fn steps(&self) -> usize {
        // step 0 is assembly; the rest are CG iterations
        self.iterations + 1
    }

    fn phase(&self, step: usize, comm: &Communicator) -> Phase {
        let p = comm.size();
        let iter_gcycles = self.rows_per_rank(p) * CYCLES_PER_ROW / 1e9;
        if step == 0 {
            // assembly: pure compute, then one barrier
            return Phase {
                compute_gcycles: vec![iter_gcycles * ASSEMBLY_ITER_EQUIV; p],
                messages: Vec::new(),
                collectives: vec![Collective::Barrier],
            };
        }
        let grid = Grid3d::for_ranks(p);
        let face_bytes = self.face_rows(p) * BYTES_PER_FACE_ROW;
        let mut messages = Vec::with_capacity(p * 6);
        for rank in 0..p {
            for nb in grid.neighbors(rank) {
                if nb != rank {
                    messages.push(Message {
                        src: rank,
                        dst: nb,
                        bytes: face_bytes,
                    });
                }
            }
        }
        Phase {
            compute_gcycles: vec![iter_gcycles; p],
            messages,
            // the two CG dot products
            collectives: vec![
                Collective::Allreduce { bytes: 8.0 },
                Collective::Allreduce { bytes: 8.0 },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_topology::NodeId;

    fn comm(p: usize, ppn: usize) -> Communicator {
        Communicator::new((0..p).map(|i| NodeId((i / ppn) as u32)).collect())
    }

    #[test]
    fn row_counts() {
        assert_eq!(MiniFe::new(48).rows(), 117_649.0); // 49³
        assert_eq!(MiniFe::new(96).rows(), 912_673.0); // 97³
    }

    #[test]
    fn assembly_phase_is_compute_heavy() {
        let fe = MiniFe::new(48).with_iterations(5);
        let c = comm(8, 4);
        let assembly = fe.phase(0, &c);
        let iter = fe.phase(1, &c);
        assert!(assembly.messages.is_empty());
        assert!(
            assembly.compute_gcycles[0] > iter.compute_gcycles[0] * 5.0,
            "assembly should dominate a single iteration"
        );
    }

    #[test]
    fn iterations_have_two_dot_products() {
        let fe = MiniFe::new(48);
        let ph = fe.phase(1, &comm(16, 4));
        assert_eq!(ph.collectives.len(), 2);
        assert!(matches!(
            ph.collectives[0],
            Collective::Allreduce { bytes } if bytes == 8.0
        ));
    }

    #[test]
    fn steps_count_includes_assembly() {
        let fe = MiniFe::new(48).with_iterations(7);
        assert_eq!(fe.steps(), 8);
    }

    #[test]
    fn work_scales_with_nx_cubed() {
        let a = MiniFe::new(48);
        let b = MiniFe::new(96);
        let c = comm(8, 4);
        let ratio = b.phase(1, &c).compute_gcycles[0] / a.phase(1, &c).compute_gcycles[0];
        // (97/49)³ ≈ 7.76
        assert!(
            (ratio - (97.0f64 / 49.0).powi(3)).abs() < 0.01,
            "ratio {ratio}"
        );
    }
}
