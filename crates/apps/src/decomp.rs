//! 3D process grids (the `MPI_Dims_create` idiom both mini-apps use).

use serde::{Deserialize, Serialize};

/// A 3D process grid of `px × py × pz` ranks with periodic neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid3d {
    /// Ranks along x.
    pub px: usize,
    /// Ranks along y.
    pub py: usize,
    /// Ranks along z.
    pub pz: usize,
}

/// Factor `p` into the most cubic `(px, py, pz)` with `px ≥ py ≥ pz`
/// (what `MPI_Dims_create(p, 3, …)` produces).
pub fn dims_create(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (p, 1, 1);
    let mut best_spread = p - 1;
    let mut a = 1;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let rem = p / a;
            let mut b = a;
            while b * b <= rem {
                if rem.is_multiple_of(b) {
                    let c = rem / b;
                    // spread = max − min; smaller is more cubic
                    let spread = c.max(b).max(a) - c.min(b).min(a);
                    if spread < best_spread {
                        best_spread = spread;
                        best = (c, b, a);
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

impl Grid3d {
    /// The most cubic grid for `p` ranks.
    pub fn for_ranks(p: usize) -> Self {
        let (px, py, pz) = dims_create(p);
        Grid3d { px, py, pz }
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Grid coordinates of a rank (x fastest).
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        assert!(rank < self.size());
        let x = rank % self.px;
        let y = (rank / self.px) % self.py;
        let z = rank / (self.px * self.py);
        (x, y, z)
    }

    /// Rank at the given coordinates.
    pub fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.px && y < self.py && z < self.pz);
        x + y * self.px + z * self.px * self.py
    }

    /// The six periodic face neighbours (−x, +x, −y, +y, −z, +z). With a
    /// dimension of extent 1 the neighbour is the rank itself (no exchange).
    pub fn neighbors(&self, rank: usize) -> [usize; 6] {
        let (x, y, z) = self.coords(rank);
        let xm = self.rank_of((x + self.px - 1) % self.px, y, z);
        let xp = self.rank_of((x + 1) % self.px, y, z);
        let ym = self.rank_of(x, (y + self.py - 1) % self.py, z);
        let yp = self.rank_of(x, (y + 1) % self.py, z);
        let zm = self.rank_of(x, y, (z + self.pz - 1) % self.pz);
        let zp = self.rank_of(x, y, (z + 1) % self.pz);
        [xm, xp, ym, yp, zm, zp]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_are_factorizations() {
        for p in 1..=128 {
            let (a, b, c) = dims_create(p);
            assert_eq!(a * b * c, p, "p={p}");
            assert!(a >= b && b >= c, "p={p}: ({a},{b},{c}) not sorted");
        }
    }

    #[test]
    fn cubes_factor_perfectly() {
        assert_eq!(dims_create(8), (2, 2, 2));
        assert_eq!(dims_create(27), (3, 3, 3));
        assert_eq!(dims_create(64), (4, 4, 4));
    }

    #[test]
    fn paper_process_counts() {
        // the paper's 8/16/32/48/64-process runs
        assert_eq!(dims_create(8), (2, 2, 2));
        assert_eq!(dims_create(16), (4, 2, 2));
        assert_eq!(dims_create(32), (4, 4, 2));
        assert_eq!(dims_create(48), (4, 4, 3));
        assert_eq!(dims_create(64), (4, 4, 4));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid3d::for_ranks(24);
        for r in 0..24 {
            let (x, y, z) = g.coords(r);
            assert_eq!(g.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn neighbors_are_mutual() {
        let g = Grid3d::for_ranks(32);
        for r in 0..32 {
            let nb = g.neighbors(r);
            // −x of my +x neighbour is me (periodic)
            assert_eq!(g.neighbors(nb[1])[0], r);
            assert_eq!(g.neighbors(nb[3])[2], r);
            assert_eq!(g.neighbors(nb[5])[4], r);
        }
    }

    #[test]
    fn unit_dimension_neighbors_self() {
        let g = Grid3d {
            px: 4,
            py: 1,
            pz: 1,
        };
        let nb = g.neighbors(2);
        assert_eq!(nb[2], 2); // −y wraps to self
        assert_eq!(nb[4], 2); // −z wraps to self
        assert_eq!(nb[0], 1);
        assert_eq!(nb[1], 3);
    }
}
