//! Synthetic kernels for tests, calibration, and ablations.

use crate::decomp::Grid3d;
use nlrm_mpi::pattern::{Collective, Message, Phase, Workload};
use nlrm_mpi::Communicator;
use serde::{Deserialize, Serialize};

/// Pure computation: `gcycles` of work per rank per step, no communication.
/// The embarrassingly parallel end of the spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeOnly {
    /// Work per rank per step, Gcycles.
    pub gcycles: f64,
    /// Steps.
    pub steps: usize,
}

impl Workload for ComputeOnly {
    fn name(&self) -> String {
        "compute-only".into()
    }
    fn steps(&self) -> usize {
        self.steps
    }
    fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
        Phase::compute_only(comm.size(), self.gcycles)
    }
}

/// A 3D halo-exchange stencil with tunable compute/communication balance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Halo3d {
    /// Work per rank per step, Gcycles.
    pub gcycles: f64,
    /// Bytes per face exchange.
    pub face_bytes: f64,
    /// Steps.
    pub steps: usize,
}

impl Workload for Halo3d {
    fn name(&self) -> String {
        "halo3d".into()
    }
    fn steps(&self) -> usize {
        self.steps
    }
    fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
        let p = comm.size();
        let grid = Grid3d::for_ranks(p);
        let mut messages = Vec::new();
        for rank in 0..p {
            for nb in grid.neighbors(rank) {
                if nb != rank {
                    messages.push(Message {
                        src: rank,
                        dst: nb,
                        bytes: self.face_bytes,
                    });
                }
            }
        }
        Phase {
            compute_gcycles: vec![self.gcycles; p],
            messages,
            collectives: Vec::new(),
        }
    }
}

/// All-to-all every step: the communication-dominated extreme (FFT transposes,
/// graph shuffles). Stresses the trunk links of a bad allocation hardest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllToAllHeavy {
    /// Work per rank per step, Gcycles.
    pub gcycles: f64,
    /// Bytes exchanged per rank pair per step.
    pub pair_bytes: f64,
    /// Steps.
    pub steps: usize,
}

impl Workload for AllToAllHeavy {
    fn name(&self) -> String {
        "alltoall-heavy".into()
    }
    fn steps(&self) -> usize {
        self.steps
    }
    fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
        Phase {
            compute_gcycles: vec![self.gcycles; comm.size()],
            messages: Vec::new(),
            collectives: vec![Collective::AllToAll {
                bytes: self.pair_bytes,
            }],
        }
    }
}

/// Rank-0↔rank-1 ping-pong, used to calibrate the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingPong {
    /// Message size in bytes.
    pub bytes: f64,
    /// Number of round trips.
    pub steps: usize,
}

impl Workload for PingPong {
    fn name(&self) -> String {
        "pingpong".into()
    }
    fn steps(&self) -> usize {
        self.steps
    }
    fn phase(&self, step: usize, _comm: &Communicator) -> Phase {
        // alternate direction each step; zero compute
        let (src, dst) = if step.is_multiple_of(2) {
            (0, 1)
        } else {
            (1, 0)
        };
        Phase {
            compute_gcycles: vec![0.0; _comm.size()],
            messages: vec![Message {
                src,
                dst,
                bytes: self.bytes,
            }],
            collectives: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster_with_profile;
    use nlrm_cluster::ClusterProfile;
    use nlrm_mpi::execute;
    use nlrm_sim_core::time::Duration;
    use nlrm_topology::NodeId;

    fn comm(p: usize, ppn: usize) -> Communicator {
        Communicator::new((0..p).map(|i| NodeId((i / ppn) as u32)).collect())
    }

    fn quiet(n: usize) -> nlrm_cluster::ClusterSim {
        let mut c = small_cluster_with_profile(n, ClusterProfile::quiet(), 9);
        c.advance(Duration::from_secs(30));
        c
    }

    #[test]
    fn compute_only_has_zero_comm() {
        let mut cluster = quiet(2);
        let t = execute(
            &mut cluster,
            &comm(8, 4),
            &ComputeOnly {
                gcycles: 1.0,
                steps: 3,
            },
        );
        assert_eq!(t.comm_s, 0.0);
        assert!(t.compute_s > 0.0);
    }

    #[test]
    fn alltoall_dominates_halo_at_equal_volume() {
        // same per-rank compute; all-to-all moves P−1× more data
        let mut a = quiet(4);
        let mut b = quiet(4);
        let halo = execute(
            &mut a,
            &comm(8, 2),
            &Halo3d {
                gcycles: 0.1,
                face_bytes: 1e5,
                steps: 5,
            },
        );
        let ata = execute(
            &mut b,
            &comm(8, 2),
            &AllToAllHeavy {
                gcycles: 0.1,
                pair_bytes: 1e5,
                steps: 5,
            },
        );
        assert!(
            ata.comm_s > halo.comm_s,
            "halo {} ata {}",
            halo.comm_s,
            ata.comm_s
        );
    }

    #[test]
    fn pingpong_measures_latency_floor() {
        let mut cluster = quiet(2);
        let t = execute(
            &mut cluster,
            &comm(2, 1),
            &PingPong {
                bytes: 8.0,
                steps: 100,
            },
        );
        let per_trip = t.comm_s / 100.0;
        // two access hops at ~50 µs base each, lightly congested
        assert!(per_trip > 5e-5 && per_trip < 5e-3, "per trip {per_trip}");
    }
}
