//! # nlrm-apps
//!
//! Proxy applications for the evaluation (paper §5): models of the two
//! Mantevo mini-apps the paper runs, plus synthetic kernels for tests and
//! ablations.
//!
//! * [`minimd`] — miniMD: spatial-decomposition molecular dynamics.
//!   `4·s³` atoms on a 3D process grid, per-step Lennard-Jones force work,
//!   six-face halo exchanges, and a thermo allreduce. Calibrated so the
//!   communication fraction lands in the paper's measured 40–80% band.
//! * [`minife`] — miniFE: implicit finite elements. `(nx+1)³` rows, CG
//!   iterations of SpMV halo exchange plus two dot-product allreduces;
//!   communication fraction 25–60% as measured in the paper.
//! * [`decomp`] — `MPI_Dims_create`-style 3D process grids with periodic
//!   neighbours, shared by both apps.
//! * [`synthetic`] — compute-only, halo, and all-to-all kernels.

pub mod decomp;
pub mod minife;
pub mod minimd;
pub mod synthetic;

pub use minife::MiniFe;
pub use minimd::MiniMd;
