//! miniMD: a spatial-decomposition molecular-dynamics proxy.
//!
//! Models the Mantevo miniMD application the paper evaluates: an fcc
//! Lennard-Jones box of side `s` (so `4·s³` atoms — `s = 8 → 2 048` atoms,
//! `s = 48 → 442 368`, matching the paper's "2K – 442K atoms"), decomposed
//! over a 3D process grid. Each timestep:
//!
//! * force computation + neighbouring bookkeeping ∝ atoms per rank,
//! * halo exchange on the six subdomain faces (ghost-atom positions out,
//!   forces back — modeled as one round trip of face-sized messages),
//! * a small allreduce for the thermodynamics output.
//!
//! The per-atom cycle cost is calibrated so that on the paper's cluster
//! (GigE, 2.8–4.6 GHz nodes, 4 processes/node) the communication fraction
//! lands in the 40–80% band the authors measured by profiling (§5).

use crate::decomp::Grid3d;
use nlrm_mpi::pattern::{Collective, Message, Phase, Workload};
use nlrm_mpi::Communicator;
use serde::{Deserialize, Serialize};

/// Bytes carried per ghost atom, one round trip: 3 position doubles out and
/// 3 force doubles back.
const BYTES_PER_GHOST_ATOM: f64 = 48.0;

/// Calibrated per-atom per-step cost in cycles (force kernel + neighbor
/// list amortization). Chosen so compute/step ≈ a few ms at the paper's
/// per-rank atom counts, yielding the measured 40–80% communication share.
const CYCLES_PER_ATOM: f64 = 50_000.0;

/// The miniMD proxy workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniMd {
    /// Box side in lattice cells (`s` in the paper; atoms = 4·s³).
    pub size: u32,
    /// Number of MD timesteps (miniMD's default input runs 100).
    pub steps: usize,
}

impl MiniMd {
    /// A run of the paper's shape: box side `size`, 100 timesteps.
    pub fn new(size: u32) -> Self {
        assert!(size > 0);
        MiniMd { size, steps: 100 }
    }

    /// Override the timestep count.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Total atom count: 4 atoms per fcc cell.
    pub fn atoms(&self) -> f64 {
        4.0 * (self.size as f64).powi(3)
    }

    /// Atoms owned by each rank on `p` processes.
    pub fn atoms_per_rank(&self, p: usize) -> f64 {
        self.atoms() / p as f64
    }

    /// Ghost atoms crossing one face of a rank's subdomain: surface area in
    /// atoms (∝ (atoms/rank)^(2/3)) times a skin factor for the cutoff.
    fn ghost_atoms_per_face(&self, p: usize) -> f64 {
        1.5 * self.atoms_per_rank(p).powf(2.0 / 3.0)
    }
}

impl Workload for MiniMd {
    fn name(&self) -> String {
        format!("miniMD(s={})", self.size)
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
        let p = comm.size();
        let grid = Grid3d::for_ranks(p);
        let face_bytes = self.ghost_atoms_per_face(p) * BYTES_PER_GHOST_ATOM;
        let mut messages = Vec::with_capacity(p * 6);
        for rank in 0..p {
            for nb in grid.neighbors(rank) {
                if nb != rank {
                    messages.push(Message {
                        src: rank,
                        dst: nb,
                        bytes: face_bytes,
                    });
                }
            }
        }
        Phase {
            compute_gcycles: vec![self.atoms_per_rank(p) * CYCLES_PER_ATOM / 1e9; p],
            messages,
            // per-step thermo reduction (energy + temperature)
            collectives: vec![Collective::Allreduce { bytes: 16.0 }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_topology::NodeId;

    fn comm(p: usize, ppn: usize) -> Communicator {
        Communicator::new((0..p).map(|i| NodeId((i / ppn) as u32)).collect())
    }

    #[test]
    fn atom_counts_match_paper() {
        assert_eq!(MiniMd::new(8).atoms(), 2048.0); // "2K"
        assert_eq!(MiniMd::new(48).atoms(), 442_368.0); // "442K"
    }

    #[test]
    fn phase_shape_is_consistent() {
        let md = MiniMd::new(16).with_steps(10);
        let c = comm(32, 4);
        let ph = md.phase(0, &c);
        assert_eq!(ph.compute_gcycles.len(), 32);
        // 6 neighbours per rank on a 4×4×2 grid (all extents > 1)
        assert_eq!(ph.messages.len(), 32 * 6);
        assert_eq!(ph.collectives.len(), 1);
    }

    #[test]
    fn work_scales_with_problem_size() {
        let small = MiniMd::new(8);
        let large = MiniMd::new(16);
        let c = comm(8, 4);
        let w_small = small.phase(0, &c).compute_gcycles[0];
        let w_large = large.phase(0, &c).compute_gcycles[0];
        // atoms scale as s³: 8× work
        assert!((w_large / w_small - 8.0).abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_reduces_per_rank_work() {
        let md = MiniMd::new(32);
        let w8 = md.phase(0, &comm(8, 4)).compute_gcycles[0];
        let w64 = md.phase(0, &comm(64, 4)).compute_gcycles[0];
        assert!((w8 / w64 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn halo_messages_shrink_sublinearly() {
        // surface-to-volume: message bytes per rank shrink slower than work
        let md = MiniMd::new(32);
        let m8 = md.phase(0, &comm(8, 4)).messages[0].bytes;
        let m64 = md.phase(0, &comm(64, 4)).messages[0].bytes;
        let ratio = m8 / m64;
        assert!(ratio > 2.0 && ratio < 8.0, "surface ratio {ratio}");
    }
}
