//! Property-based tests for the proxy applications.

use nlrm_apps::decomp::{dims_create, Grid3d};
use nlrm_apps::{MiniFe, MiniMd};
use nlrm_mpi::pattern::Workload;
use nlrm_mpi::Communicator;
use nlrm_topology::NodeId;
use proptest::prelude::*;

fn comm(p: usize, ppn: usize) -> Communicator {
    Communicator::new((0..p).map(|i| NodeId((i / ppn) as u32)).collect())
}

proptest! {
    /// `dims_create` always factors exactly and stays sorted.
    #[test]
    fn dims_always_factor(p in 1usize..512) {
        let (a, b, c) = dims_create(p);
        prop_assert_eq!(a * b * c, p);
        prop_assert!(a >= b && b >= c && c >= 1);
    }

    /// Grid neighbours are mutual and coordinates round-trip for any p.
    #[test]
    fn grid_neighbors_mutual(p in 1usize..256) {
        let g = Grid3d::for_ranks(p);
        prop_assert_eq!(g.size(), p);
        for r in 0..p {
            let (x, y, z) = g.coords(r);
            prop_assert_eq!(g.rank_of(x, y, z), r);
            let nb = g.neighbors(r);
            // ±x are mutual (same for y, z by symmetry of the construction)
            prop_assert_eq!(g.neighbors(nb[1])[0], r);
            prop_assert_eq!(g.neighbors(nb[3])[2], r);
            prop_assert_eq!(g.neighbors(nb[5])[4], r);
        }
    }

    /// Every miniMD phase is well-formed for arbitrary sizes and layouts:
    /// work vector matches the communicator, message endpoints are valid,
    /// all quantities positive and finite.
    #[test]
    fn minimd_phases_well_formed(
        s in 1u32..64,
        p in 1usize..80,
        ppn in 1usize..8,
        step_frac in 0.0f64..1.0,
    ) {
        let md = MiniMd::new(s).with_steps(10);
        let c = comm(p, ppn);
        let step = ((md.steps() - 1) as f64 * step_frac) as usize;
        let phase = md.phase(step, &c);
        prop_assert_eq!(phase.compute_gcycles.len(), p);
        prop_assert!(phase.compute_gcycles.iter().all(|&w| w > 0.0 && w.is_finite()));
        for m in &phase.messages {
            prop_assert!(m.src < p && m.dst < p && m.src != m.dst);
            prop_assert!(m.bytes > 0.0 && m.bytes.is_finite());
        }
        // at most 6 neighbours per rank
        prop_assert!(phase.messages.len() <= 6 * p);
    }

    /// miniFE: assembly precedes iterations, every phase well-formed.
    #[test]
    fn minife_phases_well_formed(nx in 4u32..256, p in 1usize..64) {
        let fe = MiniFe::new(nx).with_iterations(5);
        let c = comm(p, 4);
        prop_assert_eq!(fe.steps(), 6);
        for step in 0..fe.steps() {
            let phase = fe.phase(step, &c);
            prop_assert_eq!(phase.compute_gcycles.len(), p);
            prop_assert!(phase.compute_gcycles[0] > 0.0);
            if step == 0 {
                prop_assert!(phase.messages.is_empty());
            } else {
                prop_assert_eq!(phase.collectives.len(), 2);
            }
            for m in &phase.messages {
                prop_assert!(m.src < p && m.dst < p);
            }
        }
    }

    /// Strong-scaling consistency: total work across ranks is independent
    /// of the process count (work is divided, not duplicated).
    #[test]
    fn total_work_is_conserved(s in 4u32..48, p1 in 1usize..64, p2 in 1usize..64) {
        let md = MiniMd::new(s);
        let w1: f64 = md.phase(0, &comm(p1, 4)).compute_gcycles.iter().sum();
        let w2: f64 = md.phase(0, &comm(p2, 4)).compute_gcycles.iter().sum();
        prop_assert!((w1 - w2).abs() / w1 < 1e-9, "total work changed: {w1} vs {w2}");
    }
}
