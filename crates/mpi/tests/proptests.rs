//! Property-based tests for the MPI runtime: collective correctness for
//! arbitrary communicator sizes and contention-solver conservation laws.

use nlrm_cluster::iitk::small_cluster;
use nlrm_mpi::collectives::expand;
use nlrm_mpi::contention::{fair_share_rates, Flow};
use nlrm_mpi::pattern::Collective;
use nlrm_mpi::Communicator;
use nlrm_sim_core::time::Duration;
use nlrm_topology::{LinkId, NodeId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn comm(p: usize) -> Communicator {
    Communicator::new((0..p).map(|i| NodeId((i / 4) as u32)).collect())
}

proptest! {
    /// Broadcast from any root reaches every rank exactly once, and no rank
    /// forwards before receiving.
    #[test]
    fn bcast_is_a_spanning_tree(p in 1usize..64, root_seed in 0usize..64) {
        let root = root_seed % p;
        let rounds = expand(&Collective::Bcast { root, bytes: 1.0 }, &comm(p));
        let mut have = HashSet::from([root]);
        for round in &rounds {
            // senders in a round must already hold the data and be distinct
            let mut senders = HashSet::new();
            for m in round {
                prop_assert!(have.contains(&m.src));
                prop_assert!(senders.insert(m.src));
                prop_assert!(have.insert(m.dst), "rank {} received twice", m.dst);
            }
        }
        prop_assert_eq!(have.len(), p);
        // log-depth
        if p > 1 {
            let depth = (p as f64).log2().ceil() as usize;
            prop_assert!(rounds.len() <= depth + 1, "{} rounds for p={p}", rounds.len());
        }
    }

    /// Allreduce: every round uses each rank at most once as sender and
    /// receiver, and total traffic is Θ(p log p).
    #[test]
    fn allreduce_rounds_are_disjoint(p in 1usize..64) {
        let rounds = expand(&Collective::Allreduce { bytes: 8.0 }, &comm(p));
        let mut total_msgs = 0usize;
        for round in &rounds {
            let mut src = HashSet::new();
            let mut dst = HashSet::new();
            for m in round {
                prop_assert!(m.src < p && m.dst < p && m.src != m.dst);
                prop_assert!(src.insert(m.src));
                prop_assert!(dst.insert(m.dst));
            }
            total_msgs += round.len();
        }
        if p > 1 {
            let log = (p as f64).log2().ceil() as usize;
            prop_assert!(total_msgs <= p * (log + 2));
        } else {
            prop_assert_eq!(total_msgs, 0);
        }
    }

    /// All-to-all covers all ordered pairs exactly once regardless of p.
    #[test]
    fn alltoall_is_complete(p in 1usize..40) {
        let rounds = expand(&Collective::AllToAll { bytes: 4.0 }, &comm(p));
        let mut pairs = HashSet::new();
        for round in &rounds {
            for m in round {
                prop_assert!(pairs.insert((m.src, m.dst)));
            }
        }
        prop_assert_eq!(pairs.len(), p * p.saturating_sub(1));
    }

    /// Contention solver conservation: no link carries more than its
    /// residual capacity; every inter-node flow gets a positive rate.
    #[test]
    fn fair_share_conserves_capacity(
        flows_raw in proptest::collection::vec((0u32..8, 0u32..8, 1.0f64..1e8), 1..40),
        seed in 0u64..50,
    ) {
        let mut cluster = small_cluster(8, seed);
        cluster.advance(Duration::from_secs(30));
        let flows: Vec<Flow> = flows_raw
            .iter()
            .map(|&(s, d, bytes)| Flow {
                src: NodeId(s),
                dst: NodeId(d),
                bytes,
            })
            .collect();
        let rated = fair_share_rates(&cluster, &flows);
        prop_assert_eq!(rated.len(), flows.len());
        let mut per_link: HashMap<LinkId, f64> = HashMap::new();
        for r in &rated {
            if r.flow.src == r.flow.dst {
                prop_assert!(r.rate_bps.is_infinite());
                continue;
            }
            prop_assert!(r.rate_bps > 0.0, "starved flow {:?}", r.flow);
            prop_assert!(r.duration_s().is_finite() && r.duration_s() > 0.0);
            for &l in &r.links {
                *per_link.entry(l).or_insert(0.0) += r.rate_bps;
            }
        }
        for (l, used) in per_link {
            let cap = cluster.link_residual_bps(l).max(1e6);
            prop_assert!(used <= cap * 1.0001, "link {l:?}: {used} > {cap}");
        }
    }

    /// Max-min lower bound: progressive filling freezes the first
    /// bottleneck at the *global minimum* fair share, and every later
    /// freeze is at a larger share — so no flow ever receives less than
    /// `min over links (residual / total flow count)`.
    #[test]
    fn rates_respect_max_min_floor(
        dsts in proptest::collection::vec(1u32..8, 2..12),
        seed in 0u64..20,
    ) {
        let mut cluster = small_cluster(8, seed);
        cluster.advance(Duration::from_secs(30));
        let flows: Vec<Flow> = dsts
            .iter()
            .map(|&d| Flow {
                src: NodeId(0),
                dst: NodeId(d),
                bytes: 1e6,
            })
            .collect();
        let rated = fair_share_rates(&cluster, &flows);
        // the weakest possible guarantee: the most congested link shared by
        // *all* flows at once
        let floor = rated
            .iter()
            .flat_map(|r| r.links.iter())
            .map(|&l| cluster.link_residual_bps(l).max(1e6) / flows.len() as f64)
            .fold(f64::INFINITY, f64::min);
        for r in &rated {
            prop_assert!(
                r.rate_bps >= floor * 0.999,
                "flow to {} got {} < floor {floor}",
                r.flow.dst,
                r.rate_bps
            );
        }
    }
}
