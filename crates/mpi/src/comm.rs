//! Communicators: rank → node placement.

use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An MPI communicator over a concrete node placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Communicator {
    /// Node hosting each rank (`rank_map[r]` = node of rank `r`).
    rank_map: Vec<NodeId>,
    /// Distinct nodes in first-appearance order.
    nodes: Vec<NodeId>,
    /// Processes per node, aligned with `nodes`.
    procs_per_node: Vec<u32>,
}

impl Communicator {
    /// Build from a rank map (e.g. an allocation's `rank_map`).
    pub fn new(rank_map: Vec<NodeId>) -> Self {
        assert!(!rank_map.is_empty(), "empty communicator");
        let mut counts: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut nodes = Vec::new();
        for &n in &rank_map {
            let e = counts.entry(n).or_insert(0);
            if *e == 0 {
                nodes.push(n);
            }
            *e += 1;
        }
        let procs_per_node = nodes.iter().map(|n| counts[n]).collect();
        Communicator {
            rank_map,
            nodes,
            procs_per_node,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.rank_map.len()
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.rank_map[rank]
    }

    /// Distinct nodes in placement order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Processes placed on `node` (0 if not part of the job).
    pub fn procs_on(&self, node: NodeId) -> u32 {
        self.nodes
            .iter()
            .position(|&n| n == node)
            .map(|i| self.procs_per_node[i])
            .unwrap_or(0)
    }

    /// `(node, procs)` pairs.
    pub fn placement(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.nodes
            .iter()
            .copied()
            .zip(self.procs_per_node.iter().copied())
    }

    /// True when both ranks share a node (intra-node message).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.rank_map[a] == self.rank_map[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> Communicator {
        Communicator::new(vec![
            NodeId(5),
            NodeId(5),
            NodeId(2),
            NodeId(2),
            NodeId(2),
            NodeId(9),
        ])
    }

    #[test]
    fn size_and_lookup() {
        let c = comm();
        assert_eq!(c.size(), 6);
        assert_eq!(c.node_of(0), NodeId(5));
        assert_eq!(c.node_of(4), NodeId(2));
    }

    #[test]
    fn placement_counts() {
        let c = comm();
        assert_eq!(c.nodes(), &[NodeId(5), NodeId(2), NodeId(9)]);
        assert_eq!(c.procs_on(NodeId(2)), 3);
        assert_eq!(c.procs_on(NodeId(9)), 1);
        assert_eq!(c.procs_on(NodeId(77)), 0);
        let total: u32 = c.placement().map(|(_, p)| p).sum();
        assert_eq!(total as usize, c.size());
    }

    #[test]
    fn same_node_detection() {
        let c = comm();
        assert!(c.same_node(0, 1));
        assert!(!c.same_node(1, 2));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rank_map_panics() {
        Communicator::new(vec![]);
    }
}
