//! Application profiling: derive the α/β job mix from a short run.
//!
//! The paper sets α/β "empirically … One may set these weights by profiling
//! an application and decide the relative weights on the basis of the
//! computation and communication times" and lists better profiling tools as
//! future work (§5, §6). This module is that tool: it runs a few timesteps
//! of a workload on a reference placement, measures the compute/
//! communication split per step, and recommends (α, β).
//!
//! Calibration anchor: the paper measured miniMD at 40–80% communication
//! and chose β = 0.7, miniFE at 25–60% and chose β = 0.6. A linear map
//! `β = 0.4 + 0.5·comm_fraction` (clamped to [0.3, 0.9]) passes through
//! both choices at the midpoints of those measured ranges.

use crate::comm::Communicator;
use crate::exec::execute;
use crate::pattern::Workload;
use nlrm_cluster::ClusterSim;
use serde::{Deserialize, Serialize};

/// Result of profiling a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Workload display name.
    pub workload: String,
    /// Steps profiled.
    pub steps: usize,
    /// Fraction of time spent communicating.
    pub comm_fraction: f64,
    /// Recommended compute weight α for Eq. 4.
    pub alpha: f64,
    /// Recommended network weight β for Eq. 4.
    pub beta: f64,
}

/// Map a measured communication fraction to the paper's (α, β) convention.
pub fn alpha_beta_for(comm_fraction: f64) -> (f64, f64) {
    let beta = (0.4 + 0.5 * comm_fraction.clamp(0.0, 1.0)).clamp(0.3, 0.9);
    (1.0 - beta, beta)
}

/// A limiting view of a workload: only its first `steps` timesteps.
struct Truncated<'a> {
    inner: &'a dyn Workload,
    steps: usize,
}

impl Workload for Truncated<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn steps(&self) -> usize {
        self.steps.min(self.inner.steps())
    }
    fn phase(&self, step: usize, comm: &Communicator) -> crate::pattern::Phase {
        self.inner.phase(step, comm)
    }
}

/// Profile `workload` by executing its first `steps` timesteps on `comm`
/// over a **clone** of the cluster (the caller's timeline is untouched).
pub fn profile(
    cluster: &ClusterSim,
    comm: &Communicator,
    workload: &dyn Workload,
    steps: usize,
) -> ProfileReport {
    assert!(steps > 0, "profiling needs at least one step");
    let mut sandbox = cluster.clone();
    let truncated = Truncated {
        inner: workload,
        steps,
    };
    let timing = execute(&mut sandbox, comm, &truncated);
    let comm_fraction = timing.comm_fraction();
    let (alpha, beta) = alpha_beta_for(comm_fraction);
    ProfileReport {
        workload: workload.name(),
        steps: truncated.steps(),
        comm_fraction,
        alpha,
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Collective, Message, Phase};
    use nlrm_cluster::iitk::small_cluster_with_profile;
    use nlrm_cluster::ClusterProfile;
    use nlrm_sim_core::time::Duration;
    use nlrm_topology::NodeId;

    struct Tunable {
        gcycles: f64,
        bytes: f64,
    }

    impl Workload for Tunable {
        fn name(&self) -> String {
            "tunable".into()
        }
        fn steps(&self) -> usize {
            100
        }
        fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
            let p = comm.size();
            Phase {
                compute_gcycles: vec![self.gcycles; p],
                messages: (0..p)
                    .map(|i| Message {
                        src: i,
                        dst: (i + 1) % p,
                        bytes: self.bytes,
                    })
                    .collect(),
                collectives: vec![Collective::Barrier],
            }
        }
    }

    fn setup() -> (ClusterSim, Communicator) {
        let mut c = small_cluster_with_profile(4, ClusterProfile::quiet(), 3);
        c.advance(Duration::from_secs(30));
        let comm = Communicator::new((0..8).map(|i| NodeId(i / 2)).collect::<Vec<_>>());
        (c, comm)
    }

    #[test]
    fn anchor_points_match_paper_choices() {
        // miniMD's measured 40–80% band midpoint → the paper's β = 0.7
        let (_, beta_md) = alpha_beta_for(0.6);
        assert!((beta_md - 0.7).abs() < 1e-9);
        // miniFE's 25–60% midpoint ≈ 0.42 → close to the paper's β = 0.6
        let (_, beta_fe) = alpha_beta_for(0.425);
        assert!((beta_fe - 0.6).abs() < 0.02);
        // extremes are clamped
        assert_eq!(alpha_beta_for(0.0).1, 0.4);
        assert_eq!(alpha_beta_for(1.0).1, 0.9);
        // α + β = 1 always
        for f in [0.0, 0.3, 0.5, 0.9, 1.0] {
            let (a, b) = alpha_beta_for(f);
            assert!((a + b - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn compute_bound_workload_gets_high_alpha() {
        let (cluster, comm) = setup();
        let report = profile(
            &cluster,
            &comm,
            &Tunable {
                gcycles: 5.0,
                bytes: 100.0,
            },
            10,
        );
        assert!(report.comm_fraction < 0.1, "comm {}", report.comm_fraction);
        assert!(report.alpha > 0.5, "alpha {}", report.alpha);
        assert_eq!(report.steps, 10);
    }

    #[test]
    fn comm_bound_workload_gets_high_beta() {
        let (cluster, comm) = setup();
        let report = profile(
            &cluster,
            &comm,
            &Tunable {
                gcycles: 0.001,
                bytes: 5e6,
            },
            10,
        );
        assert!(report.comm_fraction > 0.8, "comm {}", report.comm_fraction);
        assert!(report.beta > 0.75, "beta {}", report.beta);
    }

    #[test]
    fn profiling_does_not_disturb_the_cluster() {
        let (cluster, comm) = setup();
        let before = cluster.now();
        let load_before = cluster.node_state(NodeId(0)).cpu_load;
        profile(
            &cluster,
            &comm,
            &Tunable {
                gcycles: 1.0,
                bytes: 1e5,
            },
            5,
        );
        assert_eq!(cluster.now(), before);
        assert_eq!(cluster.node_state(NodeId(0)).cpu_load, load_before);
    }

    #[test]
    fn truncation_respects_short_workloads() {
        let (cluster, comm) = setup();
        let report = profile(
            &cluster,
            &comm,
            &Tunable {
                gcycles: 0.1,
                bytes: 1e4,
            },
            500,
        );
        assert_eq!(report.steps, 100, "cannot profile more steps than exist");
    }
}
