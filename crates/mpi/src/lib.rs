//! # nlrm-mpi
//!
//! A simulated MPI runtime: enough of MPI's execution semantics to run the
//! paper's proxy applications on the simulated cluster and measure how an
//! allocation performs.
//!
//! * [`comm`] — the communicator: ranks, their node placement, per-node
//!   process counts (built from an allocation's rank map).
//! * [`pattern`] — the workload language: per-step compute work plus
//!   point-to-point messages and collectives.
//! * [`contention`] — max-min fair bandwidth sharing: concurrent flows
//!   crossing the same links split the bottleneck residual capacity, which
//!   is how a congested trunk slows a badly placed job.
//! * [`collectives`] — round-structured models of allreduce (recursive
//!   doubling), broadcast (binomial tree), barrier, and all-to-all
//!   (pairwise exchange), each expanded into real per-round flows.
//! * [`profiler`] — derive a job's α/β mix from a short profiled run
//!   (the paper's weight-setting recipe, §5).
//! * [`multi`] — event-interleaved concurrent execution of several jobs,
//!   interfering through shared cores and links.
//! * [`exec`] — the BSP executor: per step, compute time is work divided by
//!   each rank's effective CPU share (background load steals cores), then
//!   communication runs under contention; the cluster's clock advances in
//!   step with the job, and the job's own load/traffic are visible to the
//!   monitoring daemons while it runs. [`execute_traced`] additionally
//!   records the run as a causal span subtree (per-step, per-rank compute,
//!   per-collective) in the installed `nlrm-obs` observer.

pub mod collectives;
pub mod comm;
pub mod contention;
pub mod exec;
pub mod multi;
pub mod pattern;
pub mod profiler;

pub use comm::Communicator;
pub use exec::{execute, execute_traced, JobTiming, TraceCtx};
pub use pattern::{Collective, Message, Phase, Workload};
