//! The BSP job executor.
//!
//! Runs a [`Workload`] phase by phase on a [`Communicator`] placed on the
//! simulated cluster:
//!
//! * **compute**: each rank's work divided by its *effective* core speed —
//!   background load and utilization steal cores, so a busy node slows its
//!   ranks (this is why load-aware allocation helps);
//! * **communication**: P2P messages run concurrently under max-min link
//!   sharing, collectives run round by round (this is why *network*-aware
//!   allocation helps);
//! * the cluster clock advances with the job, and the job's load and
//!   traffic are registered on the cluster so monitors (and Fig. 5's
//!   load-per-core measurement) see it.

use crate::collectives::expand;
use crate::comm::Communicator;
use crate::contention::{fair_share_rates, round_duration_s, Flow};
use crate::pattern::{Message, Phase, Workload};
use nlrm_cluster::ClusterSim;
use nlrm_obs::span::{SpanId, TraceId};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Causal-trace context for one job execution: the job's trace and the
/// broker span execution should hang under (typically the lease's
/// `root_span`). Passed to [`execute_traced`] by callers that want per-rank
/// compute and per-collective spans recorded in the installed observer.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    /// The job's trace.
    pub trace: TraceId,
    /// Parent span for the execution subtree (e.g. the job's root span).
    pub parent: Option<SpanId>,
}

/// Timing breakdown of one job execution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobTiming {
    /// Total wall-clock (virtual) execution time, seconds.
    pub total_s: f64,
    /// Time spent in compute, seconds.
    pub compute_s: f64,
    /// Time spent communicating, seconds.
    pub comm_s: f64,
    /// Number of executed timesteps.
    pub steps: usize,
    /// Mean CPU load per logical core over the job's nodes, sampled each
    /// step *during* execution (the paper's Fig. 5 metric).
    pub mean_load_per_core: f64,
}

impl JobTiming {
    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            self.comm_s / self.total_s
        }
    }
}

/// Effective per-process core speed on a node: nominal frequency scaled by
/// how many cores the job's `procs` must share with background activity.
fn effective_speed_ghz(cluster: &ClusterSim, node: NodeId, procs: u32, own_load: f64) -> f64 {
    let spec = cluster.spec(node);
    let state = cluster.node_state(node);
    // background demand: runnable queue (minus our own registered load)
    // plus interactive utilization that occupies cores without queueing
    let bg_queue = (state.cpu_load - own_load).max(0.0);
    let bg_util_cores = (state.cpu_util * spec.cores as f64 - own_load).max(0.0);
    let busy = bg_queue.max(bg_util_cores);
    let demand = busy + procs as f64;
    let cores = spec.cores as f64;
    let share = if demand <= cores { 1.0 } else { cores / demand };
    spec.freq_ghz * share
}

/// Convert rank-level messages to node-level flows, dropping intra-node
/// messages into a synthetic self-flow (handled as a memory copy).
fn to_flows(comm: &Communicator, messages: &[Message]) -> Vec<Flow> {
    messages
        .iter()
        .map(|m| Flow {
            src: comm.node_of(m.src),
            dst: comm.node_of(m.dst),
            bytes: m.bytes,
        })
        .collect()
}

/// Rate one round of concurrent messages and return (duration, per-link
/// utilization fractions used for job-traffic registration).
fn run_round(
    cluster: &ClusterSim,
    comm: &Communicator,
    messages: &[Message],
) -> (f64, HashMap<LinkId, f64>) {
    if messages.is_empty() {
        return (0.0, HashMap::new());
    }
    let flows = to_flows(comm, messages);
    let rated = fair_share_rates(cluster, &flows);
    let duration = round_duration_s(&rated);
    let mut util: HashMap<LinkId, f64> = HashMap::new();
    for r in &rated {
        if r.rate_bps.is_finite() {
            for &l in &r.links {
                let cap = cluster.topology().link(l).params.capacity_bps;
                *util.entry(l).or_insert(0.0) += r.rate_bps / cap;
            }
        }
    }
    (duration, util)
}

/// Execute `workload` on `comm` over `cluster`, advancing virtual time.
///
/// The job's runnable processes are registered on its nodes for the whole
/// run, and each step's communication traffic is registered on the links it
/// used while the clock advances across that step — so a concurrently
/// running monitor sees the job, and a second job would contend with it.
pub fn execute(
    cluster: &mut ClusterSim,
    comm: &Communicator,
    workload: &dyn Workload,
) -> JobTiming {
    execute_traced(cluster, comm, workload, None)
}

/// [`execute`], optionally recording the run as a span subtree of `trace`:
/// an `exec` span over the whole run, a `step` span per BSP timestep, and
/// under each step per-rank `compute` spans plus `p2p`/`collective` spans
/// for the communication phases. With `None` (or no installed observer)
/// this is exactly `execute` — no span bookkeeping happens at all.
pub fn execute_traced(
    cluster: &mut ClusterSim,
    comm: &Communicator,
    workload: &dyn Workload,
    trace: Option<&TraceCtx>,
) -> JobTiming {
    // register job load
    for (node, procs) in comm.placement() {
        cluster.add_job_load(node, procs as f64);
    }

    // spans live on the virtual interval [t0, t0 + timing.total_s]; the
    // cluster clock may overshoot past the end (5 s dynamics quanta), so
    // span stamps derive from the job's own accumulated time, not `now()`
    let t0 = cluster.now();
    let job_track = format!("mpi:{}", workload.name());
    let tracing = trace.filter(|_| nlrm_obs::ctx::is_active());
    let exec_span = tracing.and_then(|tc| {
        nlrm_obs::ctx::span_start_kv(
            tc.trace,
            tc.parent,
            "exec",
            &format!("{job_track}/exec"),
            t0,
            vec![
                ("workload".into(), workload.name()),
                ("ranks".into(), comm.size().to_string()),
            ],
        )
    });
    let at = |offset_s: f64| -> SimTime { t0 + Duration::from_secs_f64(offset_s) };

    let mut timing = JobTiming::default();
    let mut load_per_core_acc = 0.0;
    // fractional virtual time not yet applied to the cluster (steps are
    // usually much shorter than the cluster's 5 s dynamics resolution)
    let mut pending_s = 0.0f64;
    let resolution_s = 5.0;

    for step in 0..workload.steps() {
        let phase: Phase = workload.phase(step, comm);
        assert_eq!(
            phase.compute_gcycles.len(),
            comm.size(),
            "phase work vector must match communicator size"
        );
        let step_start_s = timing.total_s;
        let step_span = exec_span.and_then(|es| {
            nlrm_obs::ctx::span_start_kv(
                tracing.expect("exec span implies trace ctx").trace,
                Some(es),
                "step",
                &format!("{job_track}/exec"),
                at(step_start_s),
                vec![("step".into(), step.to_string())],
            )
        });

        // Fig. 5 metric: load per logical core over the job's nodes
        let mut load = 0.0;
        let mut cores = 0.0;
        for (node, _) in comm.placement() {
            load += cluster.node_state(node).cpu_load;
            cores += cluster.spec(node).cores as f64;
        }
        load_per_core_acc += load / cores;

        // --- compute: slowest rank gates the step (BSP) ---
        let mut compute_s: f64 = 0.0;
        for (rank, &work) in phase.compute_gcycles.iter().enumerate() {
            let node = comm.node_of(rank);
            let own = comm.procs_on(node) as f64;
            let speed = effective_speed_ghz(cluster, node, comm.procs_on(node), own);
            if work > 0.0 {
                let rank_s = work / speed.max(1e-6);
                compute_s = compute_s.max(rank_s);
                if let (Some(ss), Some(tc)) = (step_span, tracing) {
                    nlrm_obs::ctx::span_closed(
                        tc.trace,
                        Some(ss),
                        "compute",
                        &format!("{job_track}/rank{rank}"),
                        at(step_start_s),
                        at(step_start_s + rank_s),
                        vec![("node".into(), node.to_string())],
                    );
                }
            }
        }

        // --- communication: P2P round, then each collective's rounds ---
        let mut comm_s = 0.0;
        let mut link_util: HashMap<LinkId, f64> = HashMap::new();
        let mut weighted_util = |util: HashMap<LinkId, f64>, dur: f64| {
            for (l, u) in util {
                *link_util.entry(l).or_insert(0.0) += u * dur;
            }
        };
        let (d, util) = run_round(cluster, comm, &phase.messages);
        comm_s += d;
        weighted_util(util, d);
        if d > 0.0 {
            if let (Some(ss), Some(tc)) = (step_span, tracing) {
                nlrm_obs::ctx::span_closed(
                    tc.trace,
                    Some(ss),
                    "p2p",
                    &format!("{job_track}/net"),
                    at(step_start_s + compute_s),
                    at(step_start_s + compute_s + d),
                    vec![("messages".into(), phase.messages.len().to_string())],
                );
            }
        }
        for coll in &phase.collectives {
            let coll_start_s = compute_s + comm_s;
            let mut coll_s = 0.0;
            let mut rounds = 0usize;
            for round in expand(coll, comm) {
                let (d, util) = run_round(cluster, comm, &round);
                coll_s += d;
                rounds += 1;
                weighted_util(util, d);
            }
            comm_s += coll_s;
            if coll_s > 0.0 {
                if let (Some(ss), Some(tc)) = (step_span, tracing) {
                    nlrm_obs::ctx::span_closed(
                        tc.trace,
                        Some(ss),
                        "collective",
                        &format!("{job_track}/net"),
                        at(step_start_s + coll_start_s),
                        at(step_start_s + coll_start_s + coll_s),
                        vec![
                            ("op".into(), coll.label().to_string()),
                            ("rounds".into(), rounds.to_string()),
                        ],
                    );
                }
            }
        }

        let step_s = compute_s + comm_s;
        if let Some(ss) = step_span {
            nlrm_obs::ctx::span_end(ss, at(step_start_s + step_s));
        }
        timing.compute_s += compute_s;
        timing.comm_s += comm_s;
        timing.total_s += step_s;

        // advance the cluster across this step with the job's average
        // traffic registered on the links it used; sub-resolution steps are
        // accumulated so the cluster clock tracks the job without rounding
        // every step up to the 5 s dynamics quantum
        pending_s += step_s;
        if pending_s >= resolution_s {
            let whole = (pending_s / resolution_s).floor() * resolution_s;
            let mean_util: Vec<(LinkId, f64)> = link_util
                .iter()
                .map(|(&l, &acc)| (l, (acc / step_s.max(1e-9)).min(1.0)))
                .collect();
            for &(l, u) in &mean_util {
                cluster.add_job_util(l, u);
            }
            cluster.advance(Duration::from_secs_f64(whole));
            for &(l, u) in &mean_util {
                cluster.add_job_util(l, -u);
            }
            pending_s -= whole;
        }
        timing.steps += 1;
    }

    // flush leftover sub-resolution time, then deregister job load
    if pending_s > 0.0 {
        cluster.advance(Duration::from_secs_f64(pending_s));
    }
    for (node, procs) in comm.placement() {
        cluster.add_job_load(node, -(procs as f64));
    }

    timing.mean_load_per_core = if timing.steps > 0 {
        load_per_core_acc / timing.steps as f64
    } else {
        0.0
    };
    if let Some(es) = exec_span {
        nlrm_obs::ctx::span_annotate(es, "compute_s", format!("{:.3}", timing.compute_s));
        nlrm_obs::ctx::span_annotate(es, "comm_s", format!("{:.3}", timing.comm_s));
        nlrm_obs::ctx::span_end(es, at(timing.total_s));
    }
    timing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Collective;
    use nlrm_cluster::iitk::{small_cluster, small_cluster_with_profile};
    use nlrm_cluster::ClusterProfile;

    /// A trivial workload for executor tests.
    struct Toy {
        steps: usize,
        gcycles: f64,
        msg_bytes: f64,
    }

    impl Workload for Toy {
        fn name(&self) -> String {
            "toy".into()
        }
        fn steps(&self) -> usize {
            self.steps
        }
        fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
            let p = comm.size();
            let messages = if self.msg_bytes > 0.0 {
                (0..p)
                    .map(|i| Message {
                        src: i,
                        dst: (i + 1) % p,
                        bytes: self.msg_bytes,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            Phase {
                compute_gcycles: vec![self.gcycles; p],
                messages,
                collectives: vec![Collective::Allreduce { bytes: 8.0 }],
            }
        }
    }

    fn quiet(n: usize) -> ClusterSim {
        let mut c = small_cluster_with_profile(n, ClusterProfile::quiet(), 5);
        c.advance(Duration::from_secs(30));
        c
    }

    fn ring_comm(nodes: &[u32], ppn: u32) -> Communicator {
        let mut map = Vec::new();
        for &n in nodes {
            for _ in 0..ppn {
                map.push(NodeId(n));
            }
        }
        Communicator::new(map)
    }

    #[test]
    fn compute_only_time_matches_frequency() {
        let mut cluster = quiet(2);
        let comm = ring_comm(&[0, 1], 2);
        let toy = Toy {
            steps: 10,
            gcycles: 3.0, // 3 Gcycles on a 3 GHz free core = 1 s
            msg_bytes: 0.0,
        };
        let t = execute(&mut cluster, &comm, &toy);
        assert_eq!(t.steps, 10);
        // ~1 s per step of compute plus a tiny allreduce
        assert!((t.compute_s - 10.0).abs() < 0.5, "compute {}", t.compute_s);
        assert!(t.comm_s < 0.5);
        assert!(t.comm_fraction() < 0.1);
    }

    #[test]
    fn communication_scales_with_bytes() {
        let mut a = quiet(4);
        let mut b = quiet(4);
        let comm = ring_comm(&[0, 1, 2, 3], 1);
        let small = execute(
            &mut a,
            &comm,
            &Toy {
                steps: 5,
                gcycles: 0.1,
                msg_bytes: 1e4,
            },
        );
        let large = execute(
            &mut b,
            &comm,
            &Toy {
                steps: 5,
                gcycles: 0.1,
                msg_bytes: 1e7,
            },
        );
        assert!(
            large.comm_s > small.comm_s * 10.0,
            "small {} large {}",
            small.comm_s,
            large.comm_s
        );
    }

    #[test]
    fn loaded_node_slows_compute() {
        let mut quiet_c = quiet(2);
        let mut busy_c = quiet(2);
        // saturate node 0 with background load
        busy_c.add_job_load(NodeId(0), 32.0);
        let comm = ring_comm(&[0, 1], 4);
        let toy = Toy {
            steps: 5,
            gcycles: 3.0,
            msg_bytes: 0.0,
        };
        let fast = execute(&mut quiet_c, &comm, &toy);
        let slow = execute(&mut busy_c, &comm, &toy);
        assert!(
            slow.compute_s > fast.compute_s * 2.0,
            "fast {} slow {}",
            fast.compute_s,
            slow.compute_s
        );
    }

    #[test]
    fn job_load_registered_and_cleaned_up() {
        let mut cluster = quiet(2);
        let before0 = cluster.node_state(NodeId(0)).cpu_load;
        let comm = ring_comm(&[0, 1], 4);
        let toy = Toy {
            steps: 2,
            gcycles: 0.5,
            msg_bytes: 1e5,
        };
        let t = execute(&mut cluster, &comm, &toy);
        // during the run the load metric saw our 4 procs on each 8-core node
        assert!(
            t.mean_load_per_core >= 4.0 / 8.0 * 0.9,
            "load per core {}",
            t.mean_load_per_core
        );
        // after the run, our load is gone (background may have drifted)
        let after0 = cluster.node_state(NodeId(0)).cpu_load;
        assert!(after0 < before0 + 2.0, "job load leaked: {after0}");
    }

    #[test]
    fn virtual_time_advances_with_job() {
        let mut cluster = quiet(2);
        let t0 = cluster.now();
        let comm = ring_comm(&[0, 1], 2);
        let timing = execute(
            &mut cluster,
            &comm,
            &Toy {
                steps: 3,
                gcycles: 3.0,
                msg_bytes: 0.0,
            },
        );
        let elapsed = (cluster.now() - t0).as_secs_f64();
        // clock advanced by at least the job duration (5 s step resolution
        // rounds each step up)
        assert!(elapsed >= timing.total_s * 0.9, "elapsed {elapsed}");
    }

    #[test]
    fn single_node_job_has_negligible_comm() {
        let mut cluster = quiet(2);
        let comm = ring_comm(&[0], 4);
        let t = execute(
            &mut cluster,
            &comm,
            &Toy {
                steps: 5,
                gcycles: 1.0,
                msg_bytes: 1e6,
            },
        );
        // all messages intra-node: memory-speed copies
        assert!(
            t.comm_fraction() < 0.05,
            "comm fraction {}",
            t.comm_fraction()
        );
    }

    #[test]
    fn traced_execution_records_a_nested_subtree() {
        let mut cluster = quiet(2);
        let comm = ring_comm(&[0, 1], 2);
        let toy = Toy {
            steps: 3,
            gcycles: 3.0,
            msg_bytes: 1e6,
        };
        let obs = nlrm_obs::Obs::new();
        let trace = TraceId::for_job(9);
        let timing = {
            let _g = nlrm_obs::install(&obs);
            let tc = TraceCtx {
                trace,
                parent: None,
            };
            execute_traced(&mut cluster, &comm, &toy, Some(&tc))
        };
        let spans = obs.spans.trace_spans(trace);
        assert_eq!(obs.spans.open_count(), 0, "everything closed");
        let exec = spans.iter().find(|s| s.kind == "exec").unwrap();
        assert!(
            (exec.duration().as_secs_f64() - timing.total_s).abs() < 1e-3,
            "exec span covers the whole run"
        );
        let steps: Vec<_> = spans.iter().filter(|s| s.kind == "step").collect();
        assert_eq!(steps.len(), 3);
        // 4 ranks × 3 steps of compute, plus p2p and the allreduce per step
        assert_eq!(spans.iter().filter(|s| s.kind == "compute").count(), 12);
        assert_eq!(spans.iter().filter(|s| s.kind == "p2p").count(), 3);
        assert_eq!(spans.iter().filter(|s| s.kind == "collective").count(), 3);
        // everything nests: child interval inside its parent's
        let by_id: std::collections::BTreeMap<u64, &nlrm_obs::Span> =
            spans.iter().map(|s| (s.id.0, s)).collect();
        for s in &spans {
            if let Some(p) = s.parent {
                let p = by_id[&p.0];
                assert!(s.start >= p.start, "{} starts before parent", s.kind);
                assert!(
                    s.end.unwrap() <= p.end.unwrap(),
                    "{} ends after parent",
                    s.kind
                );
            }
        }
        // the critical path of the exec subtree tiles the exec duration
        let path = obs.spans.critical_path(trace).unwrap();
        assert_eq!(path.total(), exec.duration());
        assert!(path.kind_count() >= 3, "kinds: {:?}", path.by_kind());
    }

    #[test]
    fn untraced_execution_records_nothing() {
        let mut cluster = quiet(2);
        let comm = ring_comm(&[0, 1], 2);
        let toy = Toy {
            steps: 2,
            gcycles: 1.0,
            msg_bytes: 0.0,
        };
        let obs = nlrm_obs::Obs::new();
        let _g = nlrm_obs::install(&obs);
        execute(&mut cluster, &comm, &toy);
        assert!(obs.spans.is_empty(), "plain execute must not trace");
    }

    #[test]
    fn cross_switch_job_pays_for_the_trunk() {
        // two clusters: same-switch placement vs cross-switch placement.
        // Quiet profile so per-node NIC noise cannot mask the trunk effect:
        // the ring's two cross-switch flows must share the single trunk.
        let mk = || {
            let topo = nlrm_topology::Topology::star_of_switches(
                &[4, 4],
                nlrm_topology::LinkParams::gigabit(),
                nlrm_topology::LinkParams::gigabit(),
            );
            let specs = (0..8)
                .map(|i| nlrm_cluster::NodeSpec {
                    hostname: format!("n{i}"),
                    cores: 8,
                    freq_ghz: 3.0,
                    total_mem_gb: 16.0,
                })
                .collect();
            let mut c = ClusterSim::new(topo, specs, ClusterProfile::quiet(), 77);
            c.advance(Duration::from_secs(60));
            c
        };
        let toy = Toy {
            steps: 10,
            gcycles: 0.1,
            msg_bytes: 2e6,
        };
        let mut same = mk();
        let same_t = execute(&mut same, &ring_comm(&[0, 1, 2, 3], 1), &toy);
        let mut cross = mk();
        let cross_t = execute(&mut cross, &ring_comm(&[0, 1, 4, 5], 1), &toy);
        assert!(
            cross_t.comm_s > same_t.comm_s,
            "same-switch {} vs cross-switch {}",
            same_t.comm_s,
            cross_t.comm_s
        );
        let _ = small_cluster(2, 1); // keep import used
    }
}
