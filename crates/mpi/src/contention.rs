//! Max-min fair bandwidth sharing for concurrent flows.
//!
//! When several of a job's messages cross the same link — or share a link
//! with background traffic — they split its residual capacity. We use the
//! classic progressive-filling algorithm: repeatedly find the most
//! constrained link, freeze its flows at the fair share, remove their
//! demand, and continue. This is what makes a cross-switch allocation pay
//! for the shared trunk, the effect at the heart of the paper's Fig. 7
//! analysis.

use nlrm_cluster::ClusterSim;
use nlrm_topology::{LinkId, NodeId};
use std::collections::HashMap;

/// One flow to be rated: a node-to-node transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload in bytes.
    pub bytes: f64,
}

/// The computed rate for a flow.
#[derive(Debug, Clone, PartialEq)]
pub struct RatedFlow {
    /// The flow.
    pub flow: Flow,
    /// Assigned rate in bits per second (∞ for intra-node flows).
    pub rate_bps: f64,
    /// Current path latency in seconds.
    pub latency_s: f64,
    /// Links the flow crosses.
    pub links: Vec<LinkId>,
}

impl RatedFlow {
    /// Completion time of the flow at its assigned rate.
    pub fn duration_s(&self) -> f64 {
        if self.rate_bps.is_infinite() {
            // intra-node copy: model a 50 GB/s memory pipe + 1 µs launch
            return 1e-6 + self.flow.bytes / 50e9;
        }
        self.latency_s + self.flow.bytes * 8.0 / self.rate_bps.max(1.0)
    }
}

/// Assign max-min fair rates to `flows` given the cluster's current
/// residual link capacities (background + other jobs already subtracted).
pub fn fair_share_rates(cluster: &ClusterSim, flows: &[Flow]) -> Vec<RatedFlow> {
    let topo = cluster.topology();
    // resolve paths
    let mut rated: Vec<RatedFlow> = flows
        .iter()
        .map(|f| {
            let links = topo.path(f.src, f.dst);
            let latency_s = if links.is_empty() {
                0.0
            } else {
                cluster.latency_s(f.src, f.dst)
            };
            RatedFlow {
                flow: f.clone(),
                rate_bps: 0.0,
                latency_s,
                links,
            }
        })
        .collect();

    // residual capacity per involved link; keep a tiny floor so a fully
    // saturated link still trickles (TCP never fully starves)
    let mut capacity: HashMap<LinkId, f64> = HashMap::new();
    for rf in &rated {
        for &l in &rf.links {
            capacity
                .entry(l)
                .or_insert_with(|| cluster.link_residual_bps(l).max(1e6));
        }
    }

    let mut active: Vec<usize> = (0..rated.len())
        .filter(|&i| !rated[i].links.is_empty())
        .collect();
    // intra-node flows are infinitely fast as far as the network is concerned
    for rf in rated.iter_mut() {
        if rf.links.is_empty() {
            rf.rate_bps = f64::INFINITY;
        }
    }

    // progressive filling
    while !active.is_empty() {
        // per-link active flow counts
        let mut count: HashMap<LinkId, usize> = HashMap::new();
        for &i in &active {
            for &l in &rated[i].links {
                *count.entry(l).or_insert(0) += 1;
            }
        }
        // bottleneck link: smallest fair share
        let (&bottleneck, _) = count
            .iter()
            .min_by(|(la, &ca), (lb, &cb)| {
                let sa = capacity[la] / ca as f64;
                let sb = capacity[lb] / cb as f64;
                sa.total_cmp(&sb).then(la.cmp(lb))
            })
            .expect("active flows imply counted links");
        let share = capacity[&bottleneck] / count[&bottleneck] as f64;
        // freeze flows crossing the bottleneck
        let (frozen, rest): (Vec<usize>, Vec<usize>) = active
            .into_iter()
            .partition(|&i| rated[i].links.contains(&bottleneck));
        for &i in &frozen {
            rated[i].rate_bps = share;
            for &l in &rated[i].links {
                let c = capacity.get_mut(&l).expect("seen link");
                *c = (*c - share).max(0.0);
            }
        }
        active = rest;
    }
    rated
}

/// Completion time of a set of concurrent flows: the slowest flow's
/// duration (rates held constant for the round — a conservative model).
pub fn round_duration_s(rated: &[RatedFlow]) -> f64 {
    rated.iter().map(|r| r.duration_s()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster_with_profile;
    use nlrm_cluster::ClusterProfile;
    use nlrm_sim_core::time::Duration;

    fn quiet_cluster(n: usize) -> ClusterSim {
        let mut c = small_cluster_with_profile(n, ClusterProfile::quiet(), 3);
        c.advance(Duration::from_secs(30));
        c
    }

    #[test]
    fn single_flow_gets_full_residual() {
        let cluster = quiet_cluster(4);
        let flows = vec![Flow {
            src: NodeId(0),
            dst: NodeId(1),
            bytes: 1e6,
        }];
        let rated = fair_share_rates(&cluster, &flows);
        // quiet profile: ~1-2% background, so rate close to 1 Gb/s
        assert!(rated[0].rate_bps > 0.9e9, "rate {}", rated[0].rate_bps);
    }

    #[test]
    fn flows_sharing_a_link_split_it() {
        let cluster = quiet_cluster(4);
        // two flows out of node 0: share its access link
        let flows = vec![
            Flow {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 1e6,
            },
            Flow {
                src: NodeId(0),
                dst: NodeId(2),
                bytes: 1e6,
            },
        ];
        let rated = fair_share_rates(&cluster, &flows);
        let total: f64 = rated.iter().map(|r| r.rate_bps).sum();
        let residual = cluster.link_residual_bps(cluster.topology().access_link(NodeId(0)));
        assert!(
            total <= residual * 1.001,
            "total {total} > residual {residual}"
        );
        assert!((rated[0].rate_bps - rated[1].rate_bps).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let cluster = quiet_cluster(6);
        let flows = vec![
            Flow {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 1e6,
            },
            Flow {
                src: NodeId(2),
                dst: NodeId(3),
                bytes: 1e6,
            },
        ];
        let rated = fair_share_rates(&cluster, &flows);
        assert!(rated[0].rate_bps > 0.9e9);
        assert!(rated[1].rate_bps > 0.9e9);
    }

    #[test]
    fn intra_node_flow_is_network_free() {
        let cluster = quiet_cluster(3);
        let flows = vec![Flow {
            src: NodeId(1),
            dst: NodeId(1),
            bytes: 1e9,
        }];
        let rated = fair_share_rates(&cluster, &flows);
        assert!(rated[0].rate_bps.is_infinite());
        // 1 GB over a 50 GB/s pipe = 20 ms
        assert!((rated[0].duration_s() - 0.02).abs() < 0.001);
    }

    #[test]
    fn conservation_no_link_oversubscribed() {
        let cluster = quiet_cluster(8);
        // all-to-one incast on node 0
        let flows: Vec<Flow> = (1..8)
            .map(|i| Flow {
                src: NodeId(i),
                dst: NodeId(0),
                bytes: 1e6,
            })
            .collect();
        let rated = fair_share_rates(&cluster, &flows);
        let mut per_link: HashMap<LinkId, f64> = HashMap::new();
        for r in &rated {
            for &l in &r.links {
                *per_link.entry(l).or_insert(0.0) += r.rate_bps;
            }
        }
        for (l, used) in per_link {
            let cap = cluster.link_residual_bps(l).max(1e6);
            assert!(used <= cap * 1.001, "link {l:?} over: {used} > {cap}");
        }
    }

    #[test]
    fn round_duration_is_slowest_flow() {
        let cluster = quiet_cluster(4);
        let flows = vec![
            Flow {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 1e3,
            },
            Flow {
                src: NodeId(2),
                dst: NodeId(3),
                bytes: 1e8,
            },
        ];
        let rated = fair_share_rates(&cluster, &flows);
        let d = round_duration_s(&rated);
        assert!((d - rated[1].duration_s()).abs() < 1e-12);
        assert!(d > 0.5, "100 MB on ~1 Gb/s should take ~0.8 s, got {d}");
    }
}
