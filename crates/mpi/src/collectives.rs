//! Round-structured collective algorithms.
//!
//! Each collective expands into a sequence of *rounds*; a round is a set of
//! concurrent point-to-point flows rated by the contention solver. This
//! captures the property the paper exploits: collectives on nodes with poor
//! interconnect pay on every round.

use crate::comm::Communicator;
use crate::pattern::{Collective, Message};

/// Expand a collective into rounds of rank-level messages.
pub fn expand(collective: &Collective, comm: &Communicator) -> Vec<Vec<Message>> {
    match *collective {
        Collective::Allreduce { bytes } => allreduce_rounds(comm.size(), bytes),
        Collective::Bcast { root, bytes } => bcast_rounds(comm.size(), root, bytes),
        Collective::Barrier => allreduce_rounds(comm.size(), 8.0),
        Collective::AllToAll { bytes } => alltoall_rounds(comm.size(), bytes),
    }
}

/// Recursive-doubling allreduce: ⌈log₂ P⌉ rounds of pairwise exchanges.
/// Non-power-of-two sizes use the standard trick of folding the excess
/// ranks into the largest power of two with one extra pre and post round.
fn allreduce_rounds(p: usize, bytes: f64) -> Vec<Vec<Message>> {
    if p <= 1 {
        return Vec::new();
    }
    let pow2 = 1usize << (usize::BITS - 1 - p.leading_zeros()) as usize;
    let excess = p - pow2;
    let mut rounds = Vec::new();
    // pre-round: excess ranks send their data into the power-of-two core
    if excess > 0 {
        rounds.push(
            (0..excess)
                .map(|i| Message {
                    src: pow2 + i,
                    dst: i,
                    bytes,
                })
                .collect(),
        );
    }
    // recursive doubling over the core: both directions exchange
    let mut k = 1usize;
    while k < pow2 {
        let mut round = Vec::new();
        for i in 0..pow2 {
            let partner = i ^ k;
            if i < partner && partner < pow2 {
                round.push(Message {
                    src: i,
                    dst: partner,
                    bytes,
                });
                round.push(Message {
                    src: partner,
                    dst: i,
                    bytes,
                });
            }
        }
        rounds.push(round);
        k <<= 1;
    }
    // post-round: results go back to the excess ranks
    if excess > 0 {
        rounds.push(
            (0..excess)
                .map(|i| Message {
                    src: i,
                    dst: pow2 + i,
                    bytes,
                })
                .collect(),
        );
    }
    rounds
}

/// Binomial-tree broadcast: in round k, every rank that already has the
/// data forwards it `2^k` away (rank arithmetic relative to the root).
fn bcast_rounds(p: usize, root: usize, bytes: f64) -> Vec<Vec<Message>> {
    if p <= 1 {
        return Vec::new();
    }
    let mut rounds = Vec::new();
    let mut k = 1usize;
    while k < p {
        let mut round = Vec::new();
        for rel in 0..k.min(p) {
            let target = rel + k;
            if target < p {
                round.push(Message {
                    src: (root + rel) % p,
                    dst: (root + target) % p,
                    bytes,
                });
            }
        }
        rounds.push(round);
        k <<= 1;
    }
    rounds
}

/// Pairwise-exchange all-to-all: P−1 rounds; in round r, rank i exchanges
/// with rank `i XOR r` (power-of-two P) or `(i + r) mod P` otherwise.
fn alltoall_rounds(p: usize, bytes: f64) -> Vec<Vec<Message>> {
    if p <= 1 {
        return Vec::new();
    }
    let mut rounds = Vec::new();
    if p.is_power_of_two() {
        for r in 1..p {
            let mut round = Vec::new();
            for i in 0..p {
                let partner = i ^ r;
                if i < partner {
                    round.push(Message {
                        src: i,
                        dst: partner,
                        bytes,
                    });
                    round.push(Message {
                        src: partner,
                        dst: i,
                        bytes,
                    });
                }
            }
            rounds.push(round);
        }
    } else {
        for r in 1..p {
            let round = (0..p)
                .map(|i| Message {
                    src: i,
                    dst: (i + r) % p,
                    bytes,
                })
                .collect();
            rounds.push(round);
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_topology::NodeId;
    use std::collections::HashSet;

    fn comm(p: usize) -> Communicator {
        Communicator::new((0..p).map(|i| NodeId((i / 2) as u32)).collect())
    }

    #[test]
    fn allreduce_power_of_two_round_count() {
        let rounds = expand(&Collective::Allreduce { bytes: 64.0 }, &comm(8));
        assert_eq!(rounds.len(), 3); // log2(8)
        for round in &rounds {
            // every rank appears exactly twice (sends once, receives once)
            let mut send = HashSet::new();
            let mut recv = HashSet::new();
            for m in round {
                assert!(send.insert(m.src));
                assert!(recv.insert(m.dst));
            }
            assert_eq!(send.len(), 8);
        }
    }

    #[test]
    fn allreduce_non_power_of_two_has_fold_rounds() {
        let rounds = expand(&Collective::Allreduce { bytes: 64.0 }, &comm(6));
        // pre + log2(4) + post = 1 + 2 + 1
        assert_eq!(rounds.len(), 4);
        // pre-round folds ranks 4,5 into 0,1
        assert_eq!(rounds[0].len(), 2);
        assert_eq!(rounds[0][0].src, 4);
        // post-round mirrors it
        assert_eq!(rounds[3][0].dst, 4);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        assert!(expand(&Collective::Allreduce { bytes: 8.0 }, &comm(1)).is_empty());
        assert!(expand(&Collective::Barrier, &comm(1)).is_empty());
        assert!(expand(&Collective::AllToAll { bytes: 8.0 }, &comm(1)).is_empty());
    }

    #[test]
    fn bcast_reaches_every_rank_once() {
        for p in [2usize, 5, 8, 13] {
            for root in [0usize, 1, p - 1] {
                let rounds = expand(&Collective::Bcast { root, bytes: 1.0 }, &comm(p));
                let mut reached: HashSet<usize> = HashSet::new();
                reached.insert(root);
                for round in &rounds {
                    for m in round {
                        assert!(
                            reached.contains(&m.src),
                            "p={p} root={root}: rank {} forwarded before receiving",
                            m.src
                        );
                        assert!(
                            reached.insert(m.dst),
                            "p={p} root={root}: rank {} received twice",
                            m.dst
                        );
                    }
                }
                assert_eq!(reached.len(), p, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn alltoall_covers_all_ordered_pairs() {
        for p in [4usize, 6, 8] {
            let rounds = expand(&Collective::AllToAll { bytes: 1.0 }, &comm(p));
            let mut pairs = HashSet::new();
            for round in &rounds {
                for m in round {
                    assert!(pairs.insert((m.src, m.dst)), "pair repeated (p={p})");
                }
            }
            assert_eq!(pairs.len(), p * (p - 1), "p={p}");
        }
    }

    #[test]
    fn barrier_is_a_tiny_allreduce() {
        let b = expand(&Collective::Barrier, &comm(4));
        let a = expand(&Collective::Allreduce { bytes: 8.0 }, &comm(4));
        assert_eq!(a.len(), b.len());
        assert!(b.iter().flatten().all(|m| m.bytes == 8.0));
    }
}
