//! Concurrent execution of several MPI jobs on one cluster.
//!
//! The paper's evaluation runs one job at a time, but its deployment story
//! (a broker for a shared cluster) implies *concurrent* jobs that steal CPU
//! from and congest links against each other. This module executes a set of
//! jobs event-interleaved in virtual time:
//!
//! * every job's runnable processes stay registered on its nodes for its
//!   whole lifetime (CPU interference),
//! * a job's per-step mean link utilization stays registered while the step
//!   runs (network interference),
//! * each step's duration is computed against the cluster residuals at the
//!   step's start — including everything the *other* jobs currently hold.
//!
//! Approximation (documented): rates are frozen per step; a job starting
//! mid-step of another affects that other job only from its next step on.

use crate::collectives::expand;
use crate::comm::Communicator;
use crate::contention::{fair_share_rates, round_duration_s, Flow};
use crate::exec::JobTiming;
use crate::pattern::{Message, Workload};
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::event::EventQueue;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::LinkId;
use std::collections::HashMap;

/// One job in a concurrent set.
pub struct ConcurrentJob<'a> {
    /// Rank placement.
    pub comm: Communicator,
    /// The application.
    pub workload: &'a dyn Workload,
    /// Start offset relative to the call, in virtual seconds.
    pub start_offset_s: f64,
}

struct JobState {
    comm: Communicator,
    step: usize,
    timing: JobTiming,
    /// Link utils registered for the current in-flight step.
    live_utils: Vec<(LinkId, f64)>,
    started: bool,
    load_acc: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Start(usize),
    StepDone(usize),
}

/// Effective per-process speed, as in the solo executor.
fn effective_speed_ghz(
    cluster: &ClusterSim,
    node: nlrm_topology::NodeId,
    procs: u32,
    own_load: f64,
) -> f64 {
    let spec = cluster.spec(node);
    let state = cluster.node_state(node);
    let bg_queue = (state.cpu_load - own_load).max(0.0);
    let bg_util_cores = (state.cpu_util * spec.cores as f64 - own_load).max(0.0);
    let busy = bg_queue.max(bg_util_cores);
    let demand = busy + procs as f64;
    let cores = spec.cores as f64;
    let share = if demand <= cores { 1.0 } else { cores / demand };
    spec.freq_ghz * share
}

/// Rate one message round against current residuals.
fn rate_round(
    cluster: &ClusterSim,
    comm: &Communicator,
    messages: &[Message],
) -> (f64, HashMap<LinkId, f64>) {
    if messages.is_empty() {
        return (0.0, HashMap::new());
    }
    let flows: Vec<Flow> = messages
        .iter()
        .map(|m| Flow {
            src: comm.node_of(m.src),
            dst: comm.node_of(m.dst),
            bytes: m.bytes,
        })
        .collect();
    let rated = fair_share_rates(cluster, &flows);
    let duration = round_duration_s(&rated);
    let mut util = HashMap::new();
    for r in &rated {
        if r.rate_bps.is_finite() {
            for &l in &r.links {
                let cap = cluster.topology().link(l).params.capacity_bps;
                *util.entry(l).or_insert(0.0) += r.rate_bps / cap;
            }
        }
    }
    (duration, util)
}

/// Compute one step's duration and mean link utils for a job, against the
/// cluster's *current* residual state.
fn plan_step(
    cluster: &ClusterSim,
    state: &JobState,
    workload: &dyn Workload,
) -> (f64, f64, Vec<(LinkId, f64)>) {
    let phase = workload.phase(state.step, &state.comm);
    let mut compute_s: f64 = 0.0;
    for (rank, &work) in phase.compute_gcycles.iter().enumerate() {
        let node = state.comm.node_of(rank);
        let own = state.comm.procs_on(node) as f64;
        let speed = effective_speed_ghz(cluster, node, state.comm.procs_on(node), own);
        if work > 0.0 {
            compute_s = compute_s.max(work / speed.max(1e-6));
        }
    }
    let mut comm_s = 0.0;
    let mut acc: HashMap<LinkId, f64> = HashMap::new();
    let mut fold = |util: HashMap<LinkId, f64>, d: f64| {
        for (l, u) in util {
            *acc.entry(l).or_insert(0.0) += u * d;
        }
    };
    let (d, util) = rate_round(cluster, &state.comm, &phase.messages);
    comm_s += d;
    fold(util, d);
    for coll in &phase.collectives {
        for round in expand(coll, &state.comm) {
            let (d, util) = rate_round(cluster, &state.comm, &round);
            comm_s += d;
            fold(util, d);
        }
    }
    let step_s = compute_s + comm_s;
    let mean_utils: Vec<(LinkId, f64)> = if step_s > 0.0 {
        acc.into_iter()
            .map(|(l, a)| (l, (a / step_s).min(1.0)))
            .collect()
    } else {
        Vec::new()
    };
    (compute_s, comm_s, mean_utils)
}

/// Execute `jobs` concurrently; returns one [`JobTiming`] per job, in input
/// order. The cluster clock ends at the last completion.
pub fn execute_concurrent(cluster: &mut ClusterSim, jobs: &[ConcurrentJob]) -> Vec<JobTiming> {
    let t0 = cluster.now();
    let mut queue: EventQueue<Event> = EventQueue::new();
    // the event queue starts at 0 relative time; align by offsetting with t0
    let mut states: Vec<JobState> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            queue.push(
                t0 + Duration::from_secs_f64(j.start_offset_s),
                Event::Start(i),
            );
            JobState {
                comm: j.comm.clone(),
                step: 0,
                timing: JobTiming::default(),
                live_utils: Vec::new(),
                started: false,
                load_acc: 0.0,
            }
        })
        .collect();

    while let Some((t, event)) = queue.pop() {
        cluster.advance_to(t);
        match event {
            Event::Start(i) => {
                states[i].started = true;
                for (node, procs) in states[i].comm.placement() {
                    cluster.add_job_load(node, procs as f64);
                }
                schedule_next(cluster, &mut queue, &mut states, i, t, jobs);
            }
            Event::StepDone(i) => {
                // release this step's link utils
                for &(l, u) in &states[i].live_utils {
                    cluster.add_job_util(l, -u);
                }
                states[i].live_utils.clear();
                states[i].step += 1;
                states[i].timing.steps += 1;
                schedule_next(cluster, &mut queue, &mut states, i, t, jobs);
            }
        }
    }

    states
        .into_iter()
        .map(|mut s| {
            s.timing.mean_load_per_core = if s.timing.steps > 0 {
                s.load_acc / s.timing.steps as f64
            } else {
                0.0
            };
            s.timing
        })
        .collect()
}

fn schedule_next(
    cluster: &mut ClusterSim,
    queue: &mut EventQueue<Event>,
    states: &mut [JobState],
    i: usize,
    now: SimTime,
    jobs: &[ConcurrentJob],
) {
    if states[i].step >= jobs[i].workload.steps() {
        // job finished: release its CPU load
        for (node, procs) in states[i].comm.placement() {
            cluster.add_job_load(node, -(procs as f64));
        }
        return;
    }
    // Fig. 5 metric sample
    let mut load = 0.0;
    let mut cores = 0.0;
    for (node, _) in states[i].comm.placement() {
        load += cluster.node_state(node).cpu_load;
        cores += cluster.spec(node).cores as f64;
    }
    states[i].load_acc += load / cores;

    let (compute_s, comm_s, utils) = plan_step(cluster, &states[i], jobs[i].workload);
    for &(l, u) in &utils {
        cluster.add_job_util(l, u);
    }
    states[i].live_utils = utils;
    states[i].timing.compute_s += compute_s;
    states[i].timing.comm_s += comm_s;
    states[i].timing.total_s += compute_s + comm_s;
    queue.push(
        now + Duration::from_secs_f64((compute_s + comm_s).max(1e-9)),
        Event::StepDone(i),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::pattern::{Collective, Phase};
    use nlrm_cluster::iitk::small_cluster_with_profile;
    use nlrm_cluster::ClusterProfile;
    use nlrm_topology::NodeId;

    struct Toy {
        steps: usize,
        gcycles: f64,
        msg_bytes: f64,
    }

    impl Workload for Toy {
        fn name(&self) -> String {
            "toy".into()
        }
        fn steps(&self) -> usize {
            self.steps
        }
        fn phase(&self, _step: usize, comm: &Communicator) -> Phase {
            let p = comm.size();
            let messages = if self.msg_bytes > 0.0 {
                (0..p)
                    .map(|i| Message {
                        src: i,
                        dst: (i + 1) % p,
                        bytes: self.msg_bytes,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            Phase {
                compute_gcycles: vec![self.gcycles; p],
                messages,
                collectives: vec![Collective::Barrier],
            }
        }
    }

    fn quiet(n: usize) -> ClusterSim {
        let mut c = small_cluster_with_profile(n, ClusterProfile::quiet(), 5);
        c.advance(Duration::from_secs(30));
        c
    }

    fn comm_on(nodes: &[u32], ppn: u32) -> Communicator {
        let mut map = Vec::new();
        for &n in nodes {
            for _ in 0..ppn {
                map.push(NodeId(n));
            }
        }
        Communicator::new(map)
    }

    #[test]
    fn single_job_matches_solo_executor() {
        let toy = Toy {
            steps: 5,
            gcycles: 1.0,
            msg_bytes: 1e5,
        };
        let comm = comm_on(&[0, 1], 4);
        let solo = execute(&mut quiet(4), &comm, &toy);
        let multi = execute_concurrent(
            &mut quiet(4),
            &[ConcurrentJob {
                comm,
                workload: &toy,
                start_offset_s: 0.0,
            }],
        );
        assert_eq!(multi.len(), 1);
        assert!(
            (multi[0].total_s - solo.total_s).abs() / solo.total_s < 0.05,
            "solo {} vs multi {}",
            solo.total_s,
            multi[0].total_s
        );
        assert_eq!(multi[0].steps, 5);
    }

    #[test]
    fn disjoint_jobs_barely_interfere() {
        let toy = Toy {
            steps: 5,
            gcycles: 1.0,
            msg_bytes: 1e5,
        };
        let solo = execute(&mut quiet(8), &comm_on(&[0, 1], 4), &toy);
        let multi = execute_concurrent(
            &mut quiet(8),
            &[
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 4),
                    workload: &toy,
                    start_offset_s: 0.0,
                },
                ConcurrentJob {
                    comm: comm_on(&[4, 5], 4),
                    workload: &toy,
                    start_offset_s: 0.0,
                },
            ],
        );
        for t in &multi {
            assert!(
                (t.total_s - solo.total_s).abs() / solo.total_s < 0.15,
                "disjoint job perturbed: solo {} vs {}",
                solo.total_s,
                t.total_s
            );
        }
    }

    #[test]
    fn colocated_jobs_slow_each_other_down() {
        // two 6-ppn jobs on the same 8-core nodes: 12 runnable processes on
        // 8 cores → each job's compute stretches by ~12/8 = 1.5×
        let toy = Toy {
            steps: 5,
            gcycles: 2.0,
            msg_bytes: 0.0,
        };
        let solo = execute(&mut quiet(2), &comm_on(&[0, 1], 6), &toy);
        let multi = execute_concurrent(
            &mut quiet(2),
            &[
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 6),
                    workload: &toy,
                    start_offset_s: 0.0,
                },
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 6),
                    workload: &toy,
                    start_offset_s: 0.0,
                },
            ],
        );
        for t in &multi {
            assert!(
                t.compute_s > solo.compute_s * 1.3,
                "colocated job should slow: solo {} vs {}",
                solo.compute_s,
                t.compute_s
            );
        }
        // and exact saturation (4+4 on 8 cores) must NOT slow compute
        let fit = Toy {
            steps: 3,
            gcycles: 1.0,
            msg_bytes: 0.0,
        };
        let solo_fit = execute(&mut quiet(2), &comm_on(&[0, 1], 4), &fit);
        let multi_fit = execute_concurrent(
            &mut quiet(2),
            &[
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 4),
                    workload: &fit,
                    start_offset_s: 0.0,
                },
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 4),
                    workload: &fit,
                    start_offset_s: 0.0,
                },
            ],
        );
        for t in &multi_fit {
            assert!(
                t.compute_s < solo_fit.compute_s * 1.15,
                "exactly-saturating jobs should not contend: solo {} vs {}",
                solo_fit.compute_s,
                t.compute_s
            );
        }
    }

    #[test]
    fn network_sharing_slows_comm() {
        // same nodes' links: both jobs hammer node0<->node1
        let heavy = Toy {
            steps: 4,
            gcycles: 0.01,
            msg_bytes: 5e6,
        };
        let solo = execute(&mut quiet(4), &comm_on(&[0, 1], 1), &heavy);
        let multi = execute_concurrent(
            &mut quiet(4),
            &[
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 1),
                    workload: &heavy,
                    start_offset_s: 0.0,
                },
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 1),
                    workload: &heavy,
                    start_offset_s: 0.0,
                },
            ],
        );
        // the second-planned steps see the first job's utils; over the run
        // at least one job must pay noticeably more than solo
        let worst = multi.iter().map(|t| t.comm_s).fold(0.0f64, f64::max);
        assert!(
            worst > solo.comm_s * 1.3,
            "link sharing should slow comm: solo {} vs worst {}",
            solo.comm_s,
            worst
        );
    }

    #[test]
    fn start_offsets_are_respected() {
        let toy = Toy {
            steps: 3,
            gcycles: 1.0,
            msg_bytes: 0.0,
        };
        let mut cluster = quiet(4);
        let t0 = cluster.now();
        let timings = execute_concurrent(
            &mut cluster,
            &[
                ConcurrentJob {
                    comm: comm_on(&[0], 2),
                    workload: &toy,
                    start_offset_s: 0.0,
                },
                ConcurrentJob {
                    comm: comm_on(&[2], 2),
                    workload: &toy,
                    start_offset_s: 100.0,
                },
            ],
        );
        // cluster clock must cover offset + second job's duration
        let elapsed = (cluster.now() - t0).as_secs_f64();
        assert!(
            elapsed >= 100.0 + timings[1].total_s * 0.9,
            "elapsed {elapsed}"
        );
    }

    #[test]
    fn all_job_load_is_released() {
        let toy = Toy {
            steps: 2,
            gcycles: 0.5,
            msg_bytes: 1e5,
        };
        let mut cluster = quiet(4);
        let before: f64 = (0..4).map(|i| cluster.node_state(NodeId(i)).cpu_load).sum();
        execute_concurrent(
            &mut cluster,
            &[
                ConcurrentJob {
                    comm: comm_on(&[0, 1], 4),
                    workload: &toy,
                    start_offset_s: 0.0,
                },
                ConcurrentJob {
                    comm: comm_on(&[1, 2], 4),
                    workload: &toy,
                    start_offset_s: 5.0,
                },
            ],
        );
        let after: f64 = (0..4).map(|i| cluster.node_state(NodeId(i)).cpu_load).sum();
        // only background drift should remain (quiet profile: small)
        assert!(
            (after - before).abs() < 1.0,
            "leaked load: {before} -> {after}"
        );
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let mut cluster = quiet(2);
        let t0 = cluster.now();
        let timings = execute_concurrent(&mut cluster, &[]);
        assert!(timings.is_empty());
        assert_eq!(cluster.now(), t0);
    }
}
