//! The workload language: what an application does in each timestep.

use crate::comm::Communicator;
use serde::{Deserialize, Serialize};

/// A point-to-point message between ranks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// A collective operation over the whole communicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Collective {
    /// Allreduce of `bytes` per rank (recursive doubling).
    Allreduce {
        /// Per-rank contribution size.
        bytes: f64,
    },
    /// Broadcast of `bytes` from `root` (binomial tree).
    Bcast {
        /// Root rank.
        root: usize,
        /// Payload size.
        bytes: f64,
    },
    /// Barrier (a zero-payload allreduce in practice).
    Barrier,
    /// All-to-all with `bytes` exchanged per rank pair (pairwise exchange).
    AllToAll {
        /// Per-pair payload size.
        bytes: f64,
    },
}

impl Collective {
    /// Stable lower-case operation name, used in trace span attributes.
    pub fn label(&self) -> &'static str {
        match self {
            Collective::Allreduce { .. } => "allreduce",
            Collective::Bcast { .. } => "bcast",
            Collective::Barrier => "barrier",
            Collective::AllToAll { .. } => "alltoall",
        }
    }
}

/// One bulk-synchronous timestep: per-rank compute work, then P2P
/// messages (concurrent), then collectives (in order).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Phase {
    /// Compute work per rank, in Gcycles (time on a free core =
    /// `work / freq_ghz` seconds).
    pub compute_gcycles: Vec<f64>,
    /// Concurrent point-to-point messages.
    pub messages: Vec<Message>,
    /// Collectives executed after the P2P exchange.
    pub collectives: Vec<Collective>,
}

impl Phase {
    /// A phase with uniform compute work and no communication.
    pub fn compute_only(ranks: usize, gcycles: f64) -> Phase {
        Phase {
            compute_gcycles: vec![gcycles; ranks],
            messages: Vec::new(),
            collectives: Vec::new(),
        }
    }

    /// Total bytes moved by P2P messages.
    pub fn p2p_bytes(&self) -> f64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }
}

/// An application: a named sequence of phases parameterized by the
/// communicator it runs on.
pub trait Workload {
    /// Display name (used in reports).
    fn name(&self) -> String;

    /// Number of timesteps.
    fn steps(&self) -> usize;

    /// The phase executed at `step` on `comm`.
    fn phase(&self, step: usize, comm: &Communicator) -> Phase;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_only_shape() {
        let p = Phase::compute_only(4, 2.5);
        assert_eq!(p.compute_gcycles, vec![2.5; 4]);
        assert!(p.messages.is_empty());
        assert_eq!(p.p2p_bytes(), 0.0);
    }

    #[test]
    fn p2p_bytes_sums() {
        let p = Phase {
            compute_gcycles: vec![0.0; 2],
            messages: vec![
                Message {
                    src: 0,
                    dst: 1,
                    bytes: 100.0,
                },
                Message {
                    src: 1,
                    dst: 0,
                    bytes: 50.0,
                },
            ],
            collectives: vec![],
        };
        assert_eq!(p.p2p_bytes(), 150.0);
    }
}
