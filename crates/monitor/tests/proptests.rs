//! Property-based tests for the monitoring layer: the store codec, the
//! tournament scheduler, the symmetric matrices, gossip anti-entropy, and
//! the landmark estimator's error bounds.

use nlrm_cluster::NodeSpec;
use nlrm_monitor::codec::{decode, encode, MonitorRecord};
use nlrm_monitor::rounds::round_robin_rounds;
use nlrm_monitor::sample::{LatencyStat, NodeSample};
use nlrm_monitor::{GossipNet, NlEstimator, PairProbe, SymMatrix};
use nlrm_sim_core::time::SimTime;
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::NodeId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn arb_windowed() -> impl Strategy<Value = WindowedValue> {
    (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6).prop_map(|(instant, m1, m5, m15)| {
        WindowedValue {
            instant,
            m1,
            m5,
            m15,
        }
    })
}

fn arb_sample() -> impl Strategy<Value = NodeSample> {
    (
        0u32..1000,
        0u64..1_000_000,
        "[a-z]{1,16}",
        (1u32..256, 0.1f64..10.0, 1.0f64..1024.0),
        arb_windowed(),
        arb_windowed(),
        arb_windowed(),
        arb_windowed(),
        0u32..100,
    )
        .prop_map(
            |(node, t, hostname, (cores, freq, mem), cpu_load, cpu_util, mem_used, flow, users)| {
                NodeSample {
                    node: NodeId(node),
                    taken_at: SimTime::from_micros(t),
                    spec: NodeSpec {
                        hostname,
                        cores,
                        freq_ghz: freq,
                        total_mem_gb: mem,
                    },
                    cpu_load,
                    cpu_util,
                    mem_used_frac: mem_used,
                    flow_rate_mbps: flow,
                    users,
                }
            },
        )
}

fn arb_record() -> impl Strategy<Value = MonitorRecord> {
    prop_oneof![
        proptest::collection::vec(0u32..512, 0..64)
            .prop_map(|v| MonitorRecord::Livehosts(v.into_iter().map(NodeId).collect())),
        arb_sample().prop_map(MonitorRecord::Sample),
        (
            0u32..64,
            proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 0..64)
        )
            .prop_map(|(node, stats)| MonitorRecord::LatencyRow {
                node: NodeId(node),
                stats: stats
                    .into_iter()
                    .map(|(instant, m1, m5)| LatencyStat { instant, m1, m5 })
                    .collect(),
            }),
        (0u32..64, proptest::collection::vec(0.0f64..1e10, 0..64)).prop_map(|(node, bw)| {
            MonitorRecord::BandwidthRow {
                node: NodeId(node),
                peak_bps: bw.iter().map(|b| b * 1.5).collect(),
                avail_bps: bw,
            }
        }),
        ("[a-z]{1,12}", 0u32..100, 0u64..1_000_000).prop_map(|(role, inc, at)| {
            MonitorRecord::Heartbeat {
                role,
                incarnation: inc,
                at: SimTime::from_micros(at),
            }
        }),
    ]
}

proptest! {
    /// Every record round-trips through the codec bit-exactly.
    #[test]
    fn codec_roundtrip(record in arb_record()) {
        let bytes = encode(&record);
        let back = decode(&bytes).expect("decode");
        prop_assert_eq!(back, record);
    }

    /// Truncating an encoded record at any point yields an error, never a
    /// panic or a silently wrong record.
    #[test]
    fn codec_truncation_is_detected(record in arb_record(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&record);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(&bytes[..cut]).is_err());
        }
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn codec_rejects_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes); // must not panic; result may be Ok by chance
    }

    /// Tournament schedule: disjoint pairs per round, every pair exactly once.
    #[test]
    fn tournament_invariants(n in 0usize..40) {
        let rounds = round_robin_rounds(n);
        let mut all = HashSet::new();
        for round in &rounds {
            let mut in_round = HashSet::new();
            for &(a, b) in round {
                prop_assert!(a < b && b < n);
                prop_assert!(in_round.insert(a) && in_round.insert(b));
                prop_assert!(all.insert((a, b)));
            }
        }
        prop_assert_eq!(all.len(), n.saturating_sub(1) * n / 2);
    }

    /// Gossip anti-entropy converges within a bounded round budget for
    /// random overlay sizes, fanouts, seeds, and fault plans: every live
    /// peer ends up holding every live origin's record at its published
    /// epoch, even after killing peers mid-run and reviving them.
    #[test]
    fn gossip_converges_within_bounded_rounds(
        peers in 2usize..32,
        fanout in 1usize..4,
        seed in any::<u64>(),
        dead in proptest::collection::vec(0usize..32, 0..6),
        epochs in proptest::collection::vec(1u64..100, 32),
    ) {
        let mut net: GossipNet<u32> = GossipNet::new(peers, fanout, seed, 64);
        let dead: HashSet<usize> = dead.into_iter().map(|d| d % peers).collect();
        // keep at least two peers live so convergence is non-vacuous
        let live: Vec<usize> = (0..peers).filter(|p| !dead.contains(p) || peers - dead.len() < 2).collect();
        for p in 0..peers {
            if !live.contains(&p) {
                net.set_alive(p, false);
            }
        }
        for &p in &live {
            prop_assert!(net.publish(p as u32, epochs[p], p as u32 * 7));
        }
        let c = net.run_to_convergence(64);
        prop_assert!(c.converged, "no convergence in 64 rounds ({} live peers)", live.len());
        for &p in &live {
            for &origin in &live {
                let rec = net.get(p, origin as u32).expect("disseminated");
                prop_assert_eq!(rec.epoch, epochs[origin]);
                prop_assert_eq!(rec.payload, origin as u32 * 7);
            }
        }
        // revive the dead: anti-entropy catches them up too
        for p in 0..peers {
            net.set_alive(p, true);
        }
        let c = net.run_to_convergence(64);
        prop_assert!(c.converged, "revived peers failed to catch up");
    }

    /// Version stamps never regress: under an arbitrary interleaving of
    /// publishes (with arbitrary, possibly stale epochs) and gossip rounds,
    /// the epoch each peer holds for each origin is monotonically
    /// non-decreasing over time.
    #[test]
    fn gossip_version_stamps_never_regress(
        peers in 2usize..16,
        seed in any::<u64>(),
        ops in proptest::collection::vec((0usize..16, 1u64..20, 0u8..2), 1..60),
    ) {
        let mut net: GossipNet<u64> = GossipNet::new(peers, 2, seed, 32);
        let mut seen: HashMap<(usize, u32), u64> = HashMap::new();
        let check = |net: &GossipNet<u64>, seen: &mut HashMap<(usize, u32), u64>| {
            for p in 0..peers {
                for (&origin, &epoch) in net.digest(p).iter() {
                    let prev = seen.entry((p, origin)).or_insert(epoch);
                    assert!(epoch >= *prev, "peer {p} origin {origin} regressed {prev} -> {epoch}");
                    *prev = epoch;
                }
            }
        };
        for (origin, epoch, do_round) in ops {
            let origin = origin % peers;
            net.publish(origin as u32, epoch, epoch * 1000);
            if do_round == 1 {
                net.round();
            }
            check(&net, &mut seen);
        }
        // a publish only lands when it strictly advances the origin's epoch
        for p in 0..peers as u32 {
            if let Some(rec) = net.get(p as usize, p) {
                prop_assert_eq!(rec.payload, rec.epoch * 1000);
            }
        }
    }

    /// On an additive tree metric (cross-shard cost = sum of the two
    /// shards' uplink contributions) the landmark estimator's bands always
    /// contain the exact value, for any shard count, uplink profile, and
    /// coverage pattern: `lo ≤ exact ≤ hi` with `lo ≤ point ≤ hi`.
    #[test]
    fn estimate_bands_contain_exact_on_tree_models(
        s in 2usize..48,
        lat_seed in proptest::collection::vec(1u32..10_000, 48),
        cbw_seed in proptest::collection::vec(0u32..10_000, 48),
        holes in proptest::collection::vec(0usize..48, 0..8),
    ) {
        let lat: Vec<f64> = lat_seed[..s].iter().map(|&x| x as f64 * 1e-7).collect();
        let cbw: Vec<f64> = cbw_seed[..s].iter().map(|&x| x as f64 * 1e4).collect();
        let peak = 1e9f64;
        let mut reps: Vec<Vec<NodeId>> = (0..s).map(|i| vec![NodeId(i as u32 * 100)]).collect();
        for h in holes {
            reps[h % s] = vec![];
        }
        let shard_of = |n: NodeId| (n.0 / 100) as usize;
        let mut probe = |u: NodeId, v: NodeId| {
            let (a, b) = (shard_of(u), shard_of(v));
            let c = cbw[a] + cbw[b];
            PairProbe {
                latency_s: lat[a] + lat[b],
                avail_bps: (peak - c).max(0.0),
                peak_bps: peak,
            }
        };
        let est = NlEstimator::new(s).estimate(&reps, &mut probe);
        for a in 0..s as u32 {
            for b in (a + 1)..s as u32 {
                let covered = !reps[a as usize].is_empty() && !reps[b as usize].is_empty();
                let Some(band) = est.latency_s(a, b) else {
                    prop_assert!(!covered, "covered pair ({a},{b}) had no band");
                    continue;
                };
                prop_assert!(covered);
                prop_assert!(band.lo <= band.point && band.point <= band.hi);
                let exact = lat[a as usize] + lat[b as usize];
                prop_assert!(
                    band.contains(exact),
                    "lat({a},{b}) [{}, {}] misses exact {exact}", band.lo, band.hi
                );
                let band = est.cbw_bps(a, b).unwrap();
                prop_assert!(band.lo <= band.point && band.point <= band.hi);
                let exact = cbw[a as usize] + cbw[b as usize];
                prop_assert!(
                    band.contains(exact),
                    "cbw({a},{b}) [{}, {}] misses exact {exact}", band.lo, band.hi
                );
            }
        }
    }

    /// SymMatrix stays symmetric under arbitrary write sequences.
    #[test]
    fn symmatrix_stays_symmetric(
        n in 1usize..16,
        writes in proptest::collection::vec((0usize..16, 0usize..16, -1e6f64..1e6), 0..100),
    ) {
        let mut m = SymMatrix::new(n, 0.0);
        for (u, v, val) in writes {
            let (u, v) = (NodeId((u % n) as u32), NodeId((v % n) as u32));
            m.set(u, v, val);
        }
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (NodeId(i as u32), NodeId(j as u32));
                prop_assert_eq!(m.get(u, v), m.get(v, u));
            }
        }
        prop_assert_eq!(m.pairs().count(), n * (n - 1) / 2);
    }
}
