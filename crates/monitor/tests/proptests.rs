//! Property-based tests for the monitoring layer: the store codec, the
//! tournament scheduler, and the symmetric matrices.

use nlrm_cluster::NodeSpec;
use nlrm_monitor::codec::{decode, encode, MonitorRecord};
use nlrm_monitor::rounds::round_robin_rounds;
use nlrm_monitor::sample::{LatencyStat, NodeSample};
use nlrm_monitor::SymMatrix;
use nlrm_sim_core::time::SimTime;
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::NodeId;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_windowed() -> impl Strategy<Value = WindowedValue> {
    (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6).prop_map(|(instant, m1, m5, m15)| {
        WindowedValue {
            instant,
            m1,
            m5,
            m15,
        }
    })
}

fn arb_sample() -> impl Strategy<Value = NodeSample> {
    (
        0u32..1000,
        0u64..1_000_000,
        "[a-z]{1,16}",
        (1u32..256, 0.1f64..10.0, 1.0f64..1024.0),
        arb_windowed(),
        arb_windowed(),
        arb_windowed(),
        arb_windowed(),
        0u32..100,
    )
        .prop_map(
            |(node, t, hostname, (cores, freq, mem), cpu_load, cpu_util, mem_used, flow, users)| {
                NodeSample {
                    node: NodeId(node),
                    taken_at: SimTime::from_micros(t),
                    spec: NodeSpec {
                        hostname,
                        cores,
                        freq_ghz: freq,
                        total_mem_gb: mem,
                    },
                    cpu_load,
                    cpu_util,
                    mem_used_frac: mem_used,
                    flow_rate_mbps: flow,
                    users,
                }
            },
        )
}

fn arb_record() -> impl Strategy<Value = MonitorRecord> {
    prop_oneof![
        proptest::collection::vec(0u32..512, 0..64)
            .prop_map(|v| MonitorRecord::Livehosts(v.into_iter().map(NodeId).collect())),
        arb_sample().prop_map(MonitorRecord::Sample),
        (
            0u32..64,
            proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 0..64)
        )
            .prop_map(|(node, stats)| MonitorRecord::LatencyRow {
                node: NodeId(node),
                stats: stats
                    .into_iter()
                    .map(|(instant, m1, m5)| LatencyStat { instant, m1, m5 })
                    .collect(),
            }),
        (0u32..64, proptest::collection::vec(0.0f64..1e10, 0..64)).prop_map(|(node, bw)| {
            MonitorRecord::BandwidthRow {
                node: NodeId(node),
                peak_bps: bw.iter().map(|b| b * 1.5).collect(),
                avail_bps: bw,
            }
        }),
        ("[a-z]{1,12}", 0u32..100, 0u64..1_000_000).prop_map(|(role, inc, at)| {
            MonitorRecord::Heartbeat {
                role,
                incarnation: inc,
                at: SimTime::from_micros(at),
            }
        }),
    ]
}

proptest! {
    /// Every record round-trips through the codec bit-exactly.
    #[test]
    fn codec_roundtrip(record in arb_record()) {
        let bytes = encode(&record);
        let back = decode(&bytes).expect("decode");
        prop_assert_eq!(back, record);
    }

    /// Truncating an encoded record at any point yields an error, never a
    /// panic or a silently wrong record.
    #[test]
    fn codec_truncation_is_detected(record in arb_record(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&record);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(&bytes[..cut]).is_err());
        }
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn codec_rejects_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes); // must not panic; result may be Ok by chance
    }

    /// Tournament schedule: disjoint pairs per round, every pair exactly once.
    #[test]
    fn tournament_invariants(n in 0usize..40) {
        let rounds = round_robin_rounds(n);
        let mut all = HashSet::new();
        for round in &rounds {
            let mut in_round = HashSet::new();
            for &(a, b) in round {
                prop_assert!(a < b && b < n);
                prop_assert!(in_round.insert(a) && in_round.insert(b));
                prop_assert!(all.insert((a, b)));
            }
        }
        prop_assert_eq!(all.len(), n.saturating_sub(1) * n / 2);
    }

    /// SymMatrix stays symmetric under arbitrary write sequences.
    #[test]
    fn symmatrix_stays_symmetric(
        n in 1usize..16,
        writes in proptest::collection::vec((0usize..16, 0usize..16, -1e6f64..1e6), 0..100),
    ) {
        let mut m = SymMatrix::new(n, 0.0);
        for (u, v, val) in writes {
            let (u, v) = (NodeId((u % n) as u32), NodeId((v % n) as u32));
            m.set(u, v, val);
        }
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (NodeId(i as u32), NodeId(j as u32));
                prop_assert_eq!(m.get(u, v), m.get(v, u));
            }
        }
        prop_assert_eq!(m.pairs().count(), n * (n - 1) / 2);
    }
}
