//! Cluster snapshots: the allocator's only view of the world.
//!
//! A [`ClusterSnapshot`] is assembled **exclusively from store records** —
//! the same way the paper's Node Allocator reads the files the daemons wrote
//! to NFS. If a daemon lagged or died, the snapshot is stale or partial, and
//! the allocator decides with exactly that imperfect information.

use crate::codec::{decode, CodecError, MonitorRecord};
use crate::matrix::SymMatrix;
use crate::sample::{LatencyStat, NodeSample};
use crate::store::{paths, SharedStore};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::fmt;

/// One node's monitored information.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// Node id.
    pub node: NodeId,
    /// Latest published sample.
    pub sample: NodeSample,
    /// Whether the node appeared in the latest livehosts sweep.
    pub live: bool,
}

/// A consistent view of the cluster assembled from the shared store.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Virtual time the snapshot was assembled.
    pub taken_at: SimTime,
    /// Per-node info for every node that has ever published a sample,
    /// indexed positionally by node id (missing nodes are absent).
    pub nodes: Vec<NodeInfo>,
    /// Pairwise latency stats. Diagonal is 0; unmeasured pairs are +∞.
    pub latency: SymMatrix<LatencyStat>,
    /// Pairwise instantaneous available bandwidth, bits/s. Diagonal +∞,
    /// unmeasured pairs 0.
    pub bandwidth_bps: SymMatrix<f64>,
    /// Pairwise peak bandwidth, bits/s.
    pub peak_bandwidth_bps: SymMatrix<f64>,
    /// Age of each node's latency row at assembly time (`None`: the node
    /// never published one). A delayed or hung prober shows up here.
    pub latency_row_age: Vec<Option<Duration>>,
    /// Age of each node's bandwidth row at assembly time.
    pub bandwidth_row_age: Vec<Option<Duration>>,
}

/// Snapshot assembly failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Livehosts record missing: monitoring has never run.
    NoLivehosts,
    /// A record failed to decode (corrupt store).
    Corrupt(String, CodecError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NoLivehosts => write!(f, "no livehosts record in store"),
            SnapshotError::Corrupt(path, e) => write!(f, "corrupt record at {path}: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The parts of a snapshot shared by the central and sharded assemblers:
/// node infos from livehosts + nodestate records, plus matrices initialised
/// to the unmeasured-pair conventions.
struct BaseParts {
    nodes: Vec<NodeInfo>,
    latency: SymMatrix<LatencyStat>,
    bandwidth: SymMatrix<f64>,
    peak: SymMatrix<f64>,
}

fn base_parts(store: &SharedStore, n: usize) -> Result<BaseParts, SnapshotError> {
    let live = read_livehosts(store)?;
    let mut nodes = Vec::new();
    for i in 0..n {
        let node = NodeId(i as u32);
        let path = paths::node_state(node);
        let Some(rec) = store.get(&path) else {
            continue;
        };
        match decode(&rec.data) {
            Ok(MonitorRecord::Sample(sample)) => nodes.push(NodeInfo {
                node,
                sample,
                live: live.contains(&node),
            }),
            Ok(_) => return Err(SnapshotError::Corrupt(path, CodecError::BadTag(0))),
            Err(e) => return Err(SnapshotError::Corrupt(path, e)),
        }
    }

    let mut latency = SymMatrix::new(n, LatencyStat::constant(f64::INFINITY));
    for i in 0..n {
        latency.set(
            NodeId(i as u32),
            NodeId(i as u32),
            LatencyStat::constant(0.0),
        );
    }
    let mut bandwidth = SymMatrix::new(n, 0.0f64);
    let mut peak = SymMatrix::new(n, 0.0f64);
    for i in 0..n {
        bandwidth.set(NodeId(i as u32), NodeId(i as u32), f64::INFINITY);
        peak.set(NodeId(i as u32), NodeId(i as u32), f64::INFINITY);
    }
    Ok(BaseParts {
        nodes,
        latency,
        bandwidth,
        peak,
    })
}

impl ClusterSnapshot {
    /// Assemble a snapshot for an `n`-node cluster from the store.
    pub fn assemble(store: &SharedStore, n: usize, now: SimTime) -> Result<Self, SnapshotError> {
        let BaseParts {
            nodes,
            mut latency,
            mut bandwidth,
            mut peak,
        } = base_parts(store, n)?;

        let mut latency_row_age = vec![None; n];
        let mut bandwidth_row_age = vec![None; n];
        for i in 0..n {
            let node = NodeId(i as u32);
            if let Some(rec) = store.get(&paths::latency_row(node)) {
                latency_row_age[i] = Some(now.since(rec.written_at));
                match decode(&rec.data) {
                    Ok(MonitorRecord::LatencyRow { node: u, stats }) => {
                        for (v, st) in stats.iter().enumerate().take(n) {
                            if v != u.index() {
                                latency.set(u, NodeId(v as u32), *st);
                            }
                        }
                    }
                    Ok(_) => {
                        return Err(SnapshotError::Corrupt(
                            paths::latency_row(node),
                            CodecError::BadTag(0),
                        ))
                    }
                    Err(e) => return Err(SnapshotError::Corrupt(paths::latency_row(node), e)),
                }
            }
            if let Some(rec) = store.get(&paths::bandwidth_row(node)) {
                bandwidth_row_age[i] = Some(now.since(rec.written_at));
                match decode(&rec.data) {
                    Ok(MonitorRecord::BandwidthRow {
                        node: u,
                        avail_bps,
                        peak_bps,
                    }) => {
                        for v in 0..n.min(avail_bps.len()) {
                            if v != u.index() {
                                bandwidth.set(u, NodeId(v as u32), avail_bps[v]);
                                peak.set(u, NodeId(v as u32), peak_bps[v]);
                            }
                        }
                    }
                    Ok(_) => {
                        return Err(SnapshotError::Corrupt(
                            paths::bandwidth_row(node),
                            CodecError::BadTag(0),
                        ))
                    }
                    Err(e) => return Err(SnapshotError::Corrupt(paths::bandwidth_row(node), e)),
                }
            }
        }

        Ok(ClusterSnapshot {
            taken_at: now,
            nodes,
            latency,
            bandwidth_bps: bandwidth,
            peak_bandwidth_bps: peak,
            latency_row_age,
            bandwidth_row_age,
        })
    }

    /// Assemble a snapshot from *sharded* monitor records: intra-shard
    /// pairs come exact from the per-shard `ShardNl` matrices, cross-shard
    /// pairs from the sampled [`InterEstimate`](crate::estimate::InterEstimate)
    /// point values. Livehosts/nodestate handling and the matrix
    /// conventions are identical to [`ClusterSnapshot::assemble`], so the
    /// allocator consumes either transparently.
    ///
    /// Row ages are conservative: a member's rows are as old as the *older*
    /// of its shard record and the estimate record, so the staleness policy
    /// never treats inferred data as fresher than its inputs.
    pub fn assemble_sharded(
        store: &SharedStore,
        n: usize,
        now: SimTime,
    ) -> Result<Self, SnapshotError> {
        let BaseParts {
            nodes,
            mut latency,
            mut bandwidth,
            mut peak,
        } = base_parts(store, n)?;

        let mut latency_row_age = vec![None; n];
        let mut bandwidth_row_age = vec![None; n];

        // intra-shard: exact pair matrices per shard
        let mut shards: Vec<(u32, Vec<NodeId>, Duration)> = Vec::new();
        for path in store.list_prefix("shard/") {
            let Some(rec) = store.get(&path) else {
                continue;
            };
            let age = now.since(rec.written_at);
            match decode(&rec.data) {
                Ok(MonitorRecord::ShardNl {
                    shard,
                    members,
                    lat_s,
                    avail_bps,
                    peak_bps,
                    ..
                }) => {
                    let m = members.len();
                    let tri = |i: usize, j: usize| i * (2 * m - i - 1) / 2 + j - i - 1;
                    for i in 0..m {
                        for j in (i + 1)..m {
                            let (u, v) = (members[i], members[j]);
                            if u.index() >= n || v.index() >= n {
                                continue;
                            }
                            let k = tri(i, j);
                            latency.set(u, v, LatencyStat::constant(lat_s[k]));
                            bandwidth.set(u, v, avail_bps[k]);
                            peak.set(u, v, peak_bps[k]);
                        }
                    }
                    shards.push((shard, members, age));
                }
                Ok(_) => return Err(SnapshotError::Corrupt(path, CodecError::BadTag(0))),
                Err(e) => return Err(SnapshotError::Corrupt(path, e)),
            }
        }

        // cross-shard: point values from the sampled estimate
        let mut est = None;
        let mut est_age = None;
        if let Some(rec) = store.get(paths::INTER_ESTIMATE) {
            est_age = Some(now.since(rec.written_at));
            match decode(&rec.data) {
                Ok(r @ MonitorRecord::InterEstimate { .. }) => {
                    est = crate::estimate::InterEstimate::from_record(&r);
                }
                Ok(_) => {
                    return Err(SnapshotError::Corrupt(
                        paths::INTER_ESTIMATE.into(),
                        CodecError::BadTag(0),
                    ))
                }
                Err(e) => return Err(SnapshotError::Corrupt(paths::INTER_ESTIMATE.into(), e)),
            }
        }
        if let Some(est) = &est {
            for (i, (s, ms, _)) in shards.iter().enumerate() {
                for (t, mt, _) in &shards[i + 1..] {
                    let Some(lat) = est.latency_s(*s, *t) else {
                        continue;
                    };
                    let avail = est.avail_bps(*s, *t).unwrap_or(0.0);
                    let pk = est.peak_bps(*s, *t).unwrap_or(0.0);
                    for &u in ms {
                        for &v in mt {
                            if u.index() >= n || v.index() >= n {
                                continue;
                            }
                            latency.set(u, v, LatencyStat::constant(lat.point));
                            bandwidth.set(u, v, avail);
                            peak.set(u, v, pk);
                        }
                    }
                }
            }
        }

        for (_, members, age) in &shards {
            let worst = match est_age {
                Some(e) => (*age).max(e),
                None => *age,
            };
            for &u in members {
                if u.index() >= n {
                    continue;
                }
                latency_row_age[u.index()] = Some(worst);
                bandwidth_row_age[u.index()] = Some(worst);
            }
        }

        Ok(ClusterSnapshot {
            taken_at: now,
            nodes,
            latency,
            bandwidth_bps: bandwidth,
            peak_bandwidth_bps: peak,
            latency_row_age,
            bandwidth_row_age,
        })
    }

    /// Age of a node's published sample, if it has one.
    pub fn sample_age(&self, node: NodeId) -> Option<Duration> {
        self.info(node)
            .map(|i| self.taken_at.since(i.sample.taken_at))
    }

    /// Age of the freshest latency row covering pair `(u, v)` — the entry
    /// is overwritten by whichever endpoint's row was read, so the newer
    /// row bounds how stale the value can be.
    pub fn latency_age(&self, u: NodeId, v: NodeId) -> Option<Duration> {
        min_age(
            self.latency_row_age[u.index()],
            self.latency_row_age[v.index()],
        )
    }

    /// Age of the freshest bandwidth row covering pair `(u, v)`.
    pub fn bandwidth_age(&self, u: NodeId, v: NodeId) -> Option<Duration> {
        min_age(
            self.bandwidth_row_age[u.index()],
            self.bandwidth_row_age[v.index()],
        )
    }

    /// Nodes that are live *and* have a sample: the allocatable universe.
    pub fn usable_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.live)
            .map(|n| n.node)
            .collect()
    }

    /// Info for a node, if present.
    pub fn info(&self, node: NodeId) -> Option<&NodeInfo> {
        self.nodes.iter().find(|n| n.node == node)
    }

    /// Age of the oldest sample among usable nodes (staleness diagnostic).
    pub fn max_sample_age(&self) -> Option<nlrm_sim_core::time::Duration> {
        self.nodes
            .iter()
            .filter(|n| n.live)
            .map(|n| self.taken_at.since(n.sample.taken_at))
            .max()
    }
}

fn min_age(a: Option<Duration>, b: Option<Duration>) -> Option<Duration> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

fn read_livehosts(store: &SharedStore) -> Result<Vec<NodeId>, SnapshotError> {
    let rec = store
        .get(paths::LIVEHOSTS)
        .ok_or(SnapshotError::NoLivehosts)?;
    match decode(&rec.data) {
        Ok(MonitorRecord::Livehosts(hosts)) => Ok(hosts),
        Ok(_) => Err(SnapshotError::Corrupt(
            paths::LIVEHOSTS.into(),
            CodecError::BadTag(0),
        )),
        Err(e) => Err(SnapshotError::Corrupt(paths::LIVEHOSTS.into(), e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{BandwidthD, LatencyD, LivehostsD, NodeStateD};
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_sim_core::time::Duration;

    fn populated(n: usize) -> (SharedStore, SimTime) {
        let mut cluster = small_cluster(n, 17);
        cluster.advance(Duration::from_secs(30));
        let store = SharedStore::new();
        LivehostsD::new().tick(&cluster, &store);
        for i in 0..n {
            NodeStateD::new(NodeId(i as u32)).tick(&cluster, &store);
        }
        LatencyD::new(n).tick(&mut cluster, &store);
        BandwidthD::new(n).tick(&mut cluster, &store);
        (store, cluster.now())
    }

    #[test]
    fn assemble_full_snapshot() {
        let (store, now) = populated(6);
        let snap = ClusterSnapshot::assemble(&store, 6, now).unwrap();
        assert_eq!(snap.nodes.len(), 6);
        assert_eq!(snap.usable_nodes().len(), 6);
        // matrices populated
        for (u, v, bw) in snap.bandwidth_bps.pairs() {
            assert!(bw > 0.0, "bw({u},{v}) = {bw}");
        }
        for (u, v, lat) in snap.latency.pairs() {
            assert!(lat.instant > 0.0 && lat.instant.is_finite(), "lat({u},{v})");
        }
    }

    #[test]
    fn empty_store_errors() {
        let store = SharedStore::new();
        assert_eq!(
            ClusterSnapshot::assemble(&store, 4, SimTime::ZERO).unwrap_err(),
            SnapshotError::NoLivehosts
        );
    }

    #[test]
    fn missing_node_sample_drops_node() {
        let (store, now) = populated(4);
        store.remove(&paths::node_state(NodeId(2)));
        let snap = ClusterSnapshot::assemble(&store, 4, now).unwrap();
        assert_eq!(snap.nodes.len(), 3);
        assert!(snap.info(NodeId(2)).is_none());
        assert_eq!(snap.usable_nodes().len(), 3);
    }

    #[test]
    fn corrupt_record_is_reported() {
        let (store, now) = populated(3);
        store.put(
            paths::node_state(NodeId(1)),
            now,
            bytes::Bytes::from_static(&[1, 2, 3]),
        );
        match ClusterSnapshot::assemble(&store, 3, now) {
            Err(SnapshotError::Corrupt(path, _)) => assert_eq!(path, "nodestate/1"),
            other => panic!("expected corrupt error, got {other:?}"),
        }
    }

    #[test]
    fn staleness_is_measured() {
        let (store, now) = populated(3);
        let later = now + Duration::from_secs(120);
        let snap = ClusterSnapshot::assemble(&store, 3, later).unwrap();
        assert_eq!(snap.max_sample_age().unwrap(), Duration::from_secs(120));
    }

    #[test]
    fn row_ages_track_publication_times() {
        let (store, now) = populated(3);
        let later = now + Duration::from_secs(120);
        let snap = ClusterSnapshot::assemble(&store, 3, later).unwrap();
        let age = Some(Duration::from_secs(120));
        assert_eq!(snap.latency_age(NodeId(0), NodeId(1)), age);
        assert_eq!(snap.bandwidth_age(NodeId(0), NodeId(2)), age);
        assert_eq!(snap.sample_age(NodeId(1)), age);
        assert_eq!(snap.sample_age(NodeId(9)), None);
        // a pair with one missing row falls back to the other endpoint's
        store.remove(&paths::latency_row(NodeId(0)));
        let snap = ClusterSnapshot::assemble(&store, 3, later).unwrap();
        assert!(snap.latency_row_age[0].is_none());
        assert_eq!(snap.latency_age(NodeId(0), NodeId(1)), age);
    }

    #[test]
    fn diagonal_conventions() {
        let (store, now) = populated(3);
        let snap = ClusterSnapshot::assemble(&store, 3, now).unwrap();
        assert!(snap.bandwidth_bps.get(NodeId(1), NodeId(1)).is_infinite());
        assert_eq!(snap.latency.get(NodeId(1), NodeId(1)).instant, 0.0);
    }
}
