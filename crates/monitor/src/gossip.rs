//! Epoch-stamped gossip dissemination with push-pull anti-entropy.
//!
//! In the sharded monitor topology each shard leader owns a small set of
//! *versioned records* (its per-shard aggregates) and disseminates them
//! peer-to-peer instead of funnelling everything through the central
//! master. Every record carries an `(origin, epoch)` version stamp; a peer
//! only ever replaces a record with a strictly newer epoch from the same
//! origin, so stamps never regress no matter how messages are reordered or
//! replayed.
//!
//! One [`GossipNet::round`] models a synchronous gossip round: every live
//! peer contacts `fanout` deterministic targets and runs a push-pull
//! *anti-entropy* exchange — both sides swap compact digests
//! (`origin → epoch`, [`DIGEST_ENTRY_BYTES`] per entry) and then transfer
//! only the records the other side is missing or holds stale. Byte and
//! round accounting flows into the `monitor_gossip_*` obs counters; gossip
//! never writes the shared store, so its traffic can never be double
//! counted as a central publish (`store_publish_bytes_total`).
//!
//! Everything is deterministic: targets come from a seeded splitmix64
//! stream over `(round, peer, attempt)` and peers are processed in index
//! order, so a run replays byte-identically.

use std::collections::BTreeMap;

/// Wire size of one digest entry: a `u32` origin plus a `u64` epoch.
pub const DIGEST_ENTRY_BYTES: u64 = 12;

/// Fixed per-message envelope cost (headers, peer ids) per direction.
pub const MESSAGE_OVERHEAD_BYTES: u64 = 16;

/// A record stamped with its origin peer and a monotonically increasing
/// epoch. Higher epoch always wins; equal epochs are identical by
/// construction (an origin never re-issues an epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned<T> {
    /// The peer (shard) that issued the record.
    pub origin: u32,
    /// Version stamp; strictly increasing per origin.
    pub epoch: u64,
    /// The record body.
    pub payload: T,
}

/// Accounting for one gossip round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipRound {
    /// Total bytes moved this round (digests + transferred records +
    /// message overheads).
    pub bytes: u64,
    /// Pairwise exchanges performed.
    pub exchanges: u64,
    /// Records applied (strictly newer than the receiver's copy).
    pub updates: u64,
}

/// Result of [`GossipNet::run_to_convergence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Convergence {
    /// Rounds executed (including the final converged-check round).
    pub rounds: u64,
    /// Total bytes across those rounds.
    pub bytes: u64,
    /// Whether all live peers agreed within the round budget.
    pub converged: bool,
}

/// A simulated gossip overlay of `peers` shard leaders.
///
/// The generic payload `T` is the record body carried next to the version
/// stamp; its wire size is modeled by the constant `record_bytes` given at
/// construction (the monitor uses compact fixed-size shard summaries).
#[derive(Debug, Clone)]
pub struct GossipNet<T> {
    views: Vec<BTreeMap<u32, Versioned<T>>>,
    alive: Vec<bool>,
    fanout: usize,
    seed: u64,
    record_bytes: u64,
    rounds_run: u64,
    total_bytes: u64,
    regressions_rejected: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<T: Clone> GossipNet<T> {
    /// An overlay of `peers` live peers. `fanout` targets are contacted per
    /// peer per round; `record_bytes` models the wire size of one payload.
    pub fn new(peers: usize, fanout: usize, seed: u64, record_bytes: u64) -> Self {
        assert!(fanout >= 1, "gossip needs fanout >= 1");
        GossipNet {
            views: vec![BTreeMap::new(); peers],
            alive: vec![true; peers],
            fanout,
            seed,
            record_bytes,
            rounds_run: 0,
            total_bytes: 0,
            regressions_rejected: 0,
        }
    }

    /// Number of peers (live or not).
    pub fn num_peers(&self) -> usize {
        self.views.len()
    }

    /// Mark a peer up or down. A down peer neither initiates nor answers
    /// exchanges; when it comes back its stale view catches up through
    /// anti-entropy.
    pub fn set_alive(&mut self, peer: usize, alive: bool) {
        self.alive[peer] = alive;
    }

    /// Whether `peer` is currently live.
    pub fn is_alive(&self, peer: usize) -> bool {
        self.alive[peer]
    }

    /// Number of live peers.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Publishes rejected because their epoch did not advance.
    pub fn regressions_rejected(&self) -> u64 {
        self.regressions_rejected
    }

    /// Publish a new record version at its origin peer. Returns `false`
    /// (and changes nothing) unless `epoch` is strictly newer than the
    /// origin's current stamp — version stamps never regress.
    pub fn publish(&mut self, origin: u32, epoch: u64, payload: T) -> bool {
        let view = &mut self.views[origin as usize];
        if view.get(&origin).is_some_and(|v| v.epoch >= epoch) {
            self.regressions_rejected += 1;
            return false;
        }
        view.insert(
            origin,
            Versioned {
                origin,
                epoch,
                payload,
            },
        );
        true
    }

    /// The copy of `origin`'s record held by `peer`, if any.
    pub fn get(&self, peer: usize, origin: u32) -> Option<&Versioned<T>> {
        self.views[peer].get(&origin)
    }

    /// The digest (`origin → epoch`) of one peer's view.
    pub fn digest(&self, peer: usize) -> BTreeMap<u32, u64> {
        self.views[peer]
            .iter()
            .map(|(&o, v)| (o, v.epoch))
            .collect()
    }

    /// Whether every live peer holds an identical digest (same origins,
    /// same epochs). Vacuously true with fewer than two live peers.
    pub fn converged(&self) -> bool {
        let mut live = self.alive.iter().enumerate().filter(|(_, &a)| a);
        let Some((first, _)) = live.next() else {
            return true;
        };
        let reference = self.digest(first);
        live.all(|(p, _)| self.digest(p) == reference)
    }

    /// Deterministic gossip targets for `peer` this round: up to `fanout`
    /// distinct live peers other than itself.
    fn targets(&self, peer: usize, round: u64) -> Vec<usize> {
        let n = self.views.len();
        let mut out = Vec::with_capacity(self.fanout);
        let mut attempt = 0u64;
        // bounded scan: enough attempts to find distinct live targets with
        // overwhelming probability, but never an unbounded loop
        while out.len() < self.fanout && attempt < (self.fanout as u64 + 8) * 4 {
            let h = splitmix64(
                self.seed ^ round.wrapping_mul(0x9e37_79b9) ^ ((peer as u64) << 20) ^ attempt,
            );
            let t = (h % n as u64) as usize;
            if t != peer && self.alive[t] && !out.contains(&t) {
                out.push(t);
            }
            attempt += 1;
        }
        out
    }

    /// Run one synchronous gossip round over all live peers and account the
    /// traffic into the `monitor_gossip_*` obs counters.
    pub fn round(&mut self) -> GossipRound {
        let round = self.rounds_run;
        let mut acc = GossipRound::default();
        for peer in 0..self.views.len() {
            if !self.alive[peer] {
                continue;
            }
            for target in self.targets(peer, round) {
                acc.exchanges += 1;
                // push-pull: both digests cross the wire first…
                let digest_bytes = (self.views[peer].len() + self.views[target].len()) as u64
                    * DIGEST_ENTRY_BYTES
                    + 2 * MESSAGE_OVERHEAD_BYTES;
                acc.bytes += digest_bytes;
                // …then each side sends what the other is missing or holds
                // stale. Applied immediately (the round is sequential and
                // deterministic).
                let (updates, bytes) = self.exchange(peer, target);
                acc.updates += updates;
                acc.bytes += bytes;
            }
        }
        self.rounds_run += 1;
        self.total_bytes += acc.bytes;
        nlrm_obs::ctx::inc("monitor_gossip_rounds_total");
        nlrm_obs::ctx::add("monitor_gossip_bytes_total", acc.bytes);
        nlrm_obs::ctx::add("monitor_gossip_updates_total", acc.updates);
        nlrm_obs::ctx::set_gauge("monitor_gossip_round_bytes", acc.bytes as f64);
        acc
    }

    /// Symmetric record transfer between two peers; returns (updates, bytes).
    fn exchange(&mut self, a: usize, b: usize) -> (u64, u64) {
        let mut updates = 0u64;
        let mut bytes = 0u64;
        for (src, dst) in [(a, b), (b, a)] {
            let missing: Vec<Versioned<T>> = self.views[src]
                .values()
                .filter(|rec| {
                    self.views[dst]
                        .get(&rec.origin)
                        .is_none_or(|have| have.epoch < rec.epoch)
                })
                .cloned()
                .collect();
            for rec in missing {
                bytes += self.record_bytes + DIGEST_ENTRY_BYTES;
                // re-check against the destination (it may have just been
                // updated by the opposite direction of this same exchange)
                let dst_view = &mut self.views[dst];
                if dst_view
                    .get(&rec.origin)
                    .is_none_or(|have| have.epoch < rec.epoch)
                {
                    dst_view.insert(rec.origin, rec);
                    updates += 1;
                }
            }
        }
        (updates, bytes)
    }

    /// Run rounds until all live peers agree or `max_rounds` is exhausted.
    pub fn run_to_convergence(&mut self, max_rounds: u64) -> Convergence {
        let mut rounds = 0u64;
        let mut bytes = 0u64;
        while rounds < max_rounds {
            if self.converged() {
                nlrm_obs::ctx::set_gauge("monitor_gossip_convergence_rounds", rounds as f64);
                return Convergence {
                    rounds,
                    bytes,
                    converged: true,
                };
            }
            bytes += self.round().bytes;
            rounds += 1;
        }
        let converged = self.converged();
        if converged {
            nlrm_obs::ctx::set_gauge("monitor_gossip_convergence_rounds", rounds as f64);
        }
        Convergence {
            rounds,
            bytes,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(peers: usize) -> GossipNet<u32> {
        let mut net = GossipNet::new(peers, 2, 0xABCD, 64);
        for p in 0..peers as u32 {
            assert!(net.publish(p, 1, p * 10));
        }
        net
    }

    #[test]
    fn all_peers_converge_on_every_record() {
        let mut net = seeded(12);
        let c = net.run_to_convergence(64);
        assert!(c.converged, "did not converge in {} rounds", c.rounds);
        assert!(c.rounds >= 1 && c.rounds < 64);
        for p in 0..12 {
            for origin in 0..12u32 {
                let rec = net.get(p, origin).expect("record disseminated");
                assert_eq!(rec.epoch, 1);
                assert_eq!(rec.payload, origin * 10);
            }
        }
    }

    #[test]
    fn epoch_regression_is_rejected() {
        let mut net: GossipNet<u32> = GossipNet::new(4, 1, 7, 16);
        assert!(net.publish(0, 5, 50));
        assert!(!net.publish(0, 5, 51), "equal epoch must not replace");
        assert!(!net.publish(0, 4, 40), "older epoch must not replace");
        assert_eq!(net.get(0, 0).unwrap().payload, 50);
        assert_eq!(net.regressions_rejected(), 2);
        assert!(net.publish(0, 6, 60));
        assert_eq!(net.get(0, 0).unwrap().epoch, 6);
    }

    #[test]
    fn newer_epoch_overtakes_older_copies_everywhere() {
        let mut net = seeded(6);
        net.run_to_convergence(64);
        assert!(net.publish(3, 2, 999));
        let c = net.run_to_convergence(64);
        assert!(c.converged);
        for p in 0..6 {
            assert_eq!(net.get(p, 3).unwrap().epoch, 2);
            assert_eq!(net.get(p, 3).unwrap().payload, 999);
        }
    }

    #[test]
    fn dead_peer_catches_up_after_revival() {
        let mut net = seeded(8);
        net.set_alive(5, false);
        let c = net.run_to_convergence(64);
        assert!(c.converged, "live peers converge around the dead one");
        // the dead peer saw nothing beyond its own record
        assert_eq!(net.digest(5).len(), 1);
        net.set_alive(5, true);
        let c = net.run_to_convergence(64);
        assert!(c.converged);
        assert_eq!(net.digest(5).len(), 8, "revived peer caught up");
    }

    #[test]
    fn rounds_are_deterministic() {
        let run = || {
            let mut net = seeded(10);
            let c = net.run_to_convergence(64);
            (c.rounds, c.bytes, net.digest(0))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bytes_accounting_is_positive_and_bounded() {
        let mut net = seeded(5);
        let r = net.round();
        assert!(r.bytes > 0);
        assert!(r.exchanges >= net.live_count() as u64);
        // a fully converged net still pays digests but moves no records
        net.run_to_convergence(64);
        let r = net.round();
        assert_eq!(r.updates, 0);
        assert!(r.bytes > 0, "anti-entropy digests still flow");
    }
}
