//! The shared store: our stand-in for the paper's NFS directory.
//!
//! Every daemon writes opaque byte records under path-like keys
//! (`"livehosts"`, `"nodestate/csews12"`, `"latency/7"`, …) exactly as the
//! paper's daemons write files to the network filesystem. Readers see the
//! latest complete record with its write timestamp, so the allocator can
//! reason about staleness.

use bytes::Bytes;
use nlrm_sim_core::time::SimTime;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A stored record: payload plus the virtual time it was written.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Virtual time of the write.
    pub written_at: SimTime,
    /// Encoded payload (see [`crate::codec`]).
    pub data: Bytes,
}

/// A concurrent path→record keyspace shared by all daemons.
///
/// Cloning is cheap and shares the underlying map (like every node mounting
/// the same NFS export). Thread-safe: the threaded runtime uses it from
/// many OS threads.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<HashMap<String, StoreRecord>>>,
}

impl SharedStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write (or overwrite) the record at `path`.
    pub fn put(&self, path: impl Into<String>, written_at: SimTime, data: Bytes) {
        let path = path.into();
        if nlrm_obs::ctx::is_active() {
            nlrm_obs::ctx::emit(
                nlrm_obs::Severity::Debug,
                written_at,
                nlrm_obs::EventKind::Publish {
                    daemon: daemon_of(&path).to_string(),
                    path: path.clone(),
                },
            );
            nlrm_obs::ctx::inc("store_publish_total");
            nlrm_obs::ctx::add("store_publish_bytes_total", data.len() as u64);
        }
        self.inner
            .write()
            .insert(path, StoreRecord { written_at, data });
    }

    /// Read the record at `path`, if present.
    pub fn get(&self, path: &str) -> Option<StoreRecord> {
        self.inner.read().get(path).cloned()
    }

    /// Remove the record at `path`; returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.inner.write().remove(path).is_some()
    }

    /// All paths with the given prefix, sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .inner
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Drop everything (tests).
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

/// Which daemon family owns a store path (for publish events).
fn daemon_of(path: &str) -> &'static str {
    match path.split('/').next().unwrap_or(path) {
        "livehosts" => "livehosts",
        "nodestate" => "nodestate",
        "latency" => "latency",
        "bandwidth" => "bandwidth",
        "central" => "central",
        "shard" => "shard",
        "estimate" => "estimate",
        _ => "other",
    }
}

/// Store paths used by the daemons. Centralised so that writers and the
/// snapshot assembler can never drift apart.
pub mod paths {
    use nlrm_topology::NodeId;

    /// Livehosts list.
    pub const LIVEHOSTS: &str = "livehosts";

    /// Per-node state record.
    pub fn node_state(node: NodeId) -> String {
        format!("nodestate/{}", node.0)
    }

    /// Per-node latency row.
    pub fn latency_row(node: NodeId) -> String {
        format!("latency/{}", node.0)
    }

    /// Per-node bandwidth row.
    pub fn bandwidth_row(node: NodeId) -> String {
        format!("bandwidth/{}", node.0)
    }

    /// Central-monitor heartbeat for a role.
    pub fn heartbeat(role_name: &str) -> String {
        format!("central/{role_name}")
    }

    /// Per-shard intra-NL record (sharded topology).
    pub fn shard_nl(shard: u32) -> String {
        format!("shard/{shard}/nl")
    }

    /// The sampled inter-shard estimate (sharded topology).
    pub const INTER_ESTIMATE: &str = "estimate/inter";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = SharedStore::new();
        s.put("a/b", SimTime::from_secs(5), Bytes::from_static(b"xyz"));
        let r = s.get("a/b").unwrap();
        assert_eq!(r.written_at, SimTime::from_secs(5));
        assert_eq!(&r.data[..], b"xyz");
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn overwrite_replaces() {
        let s = SharedStore::new();
        s.put("k", SimTime::from_secs(1), Bytes::from_static(b"1"));
        s.put("k", SimTime::from_secs(2), Bytes::from_static(b"2"));
        assert_eq!(&s.get("k").unwrap().data[..], b"2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let s = SharedStore::new();
        let s2 = s.clone();
        s.put("k", SimTime::ZERO, Bytes::new());
        assert!(s2.get("k").is_some());
        assert!(s2.remove("k"));
        assert!(s.is_empty());
    }

    #[test]
    fn prefix_listing_is_sorted() {
        let s = SharedStore::new();
        for i in [3u32, 1, 2] {
            s.put(format!("nodestate/{i}"), SimTime::ZERO, Bytes::new());
        }
        s.put("latency/0", SimTime::ZERO, Bytes::new());
        let keys = s.list_prefix("nodestate/");
        assert_eq!(keys, vec!["nodestate/1", "nodestate/2", "nodestate/3"]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let s = SharedStore::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        s.put(
                            format!("t{i}/{j}"),
                            SimTime::from_secs(j),
                            Bytes::from(vec![i as u8]),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 800);
    }
}
