//! The monitoring stack on real OS threads.
//!
//! The paper's daemons are independent processes on cluster nodes. The
//! virtual-time [`MonitorRuntime`](crate::runtime::MonitorRuntime) is what
//! experiments use, but this module demonstrates (and tests) the actual
//! daemon topology: each daemon is a thread, all publish concurrently into
//! the same [`SharedStore`], and shutdown is coordinated over channels.
//!
//! The simulated cluster is wrapped in a [`LiveCluster`] that maps wall time
//! onto virtual time with a configurable speedup, so a 5-minute bandwidth
//! period can elapse in milliseconds of real time.

use crate::daemons::{BandwidthD, DaemonConfig, LatencyD, LivehostsD, NodeStateD};
use crate::store::SharedStore;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::time::{Duration as SimDuration, SimTime};
use nlrm_topology::NodeId;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A cluster simulation shared across threads, advanced lazily so that
/// virtual time tracks wall time at `speedup` virtual seconds per wall
/// second.
pub struct LiveCluster {
    inner: Mutex<ClusterSim>,
    started: Instant,
    speedup: f64,
}

impl LiveCluster {
    /// Wrap `cluster`; virtual time will advance `speedup`× wall time.
    pub fn new(cluster: ClusterSim, speedup: f64) -> Arc<Self> {
        assert!(speedup > 0.0);
        Arc::new(LiveCluster {
            inner: Mutex::new(cluster),
            started: Instant::now(),
            speedup,
        })
    }

    /// Run `f` against the cluster after syncing virtual time to wall time.
    pub fn with_sync<R>(&self, f: impl FnOnce(&mut ClusterSim) -> R) -> R {
        let mut c = self.inner.lock();
        let target = SimTime::from_secs_f64(self.started.elapsed().as_secs_f64() * self.speedup);
        if target > c.now() {
            c.advance_to(target);
        }
        f(&mut c)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now()
    }
}

/// Handle to a running threaded monitor. Dropping without stopping detaches
/// the threads; call [`stop`](ThreadedMonitor::stop) for a clean shutdown.
pub struct ThreadedMonitor {
    store: SharedStore,
    shutdown: Sender<()>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadedMonitor {
    /// Start all daemons against `cluster`. Wall-clock periods are the
    /// virtual periods in `config` divided by the cluster's speedup.
    pub fn start(cluster: Arc<LiveCluster>, config: DaemonConfig) -> Self {
        let store = SharedStore::new();
        let (tx, rx) = bounded::<()>(0);
        let n = cluster.with_sync(|c| c.num_nodes());
        let speedup = cluster.speedup;
        let wall = |d: SimDuration| Duration::from_secs_f64(d.as_secs_f64() / speedup);

        let mut handles = Vec::new();

        // LivehostsD
        handles.push(spawn_loop(rx.clone(), wall(config.livehosts_period), {
            let cluster = cluster.clone();
            let store = store.clone();
            let mut d = LivehostsD::new();
            move || cluster.with_sync(|c| d.tick(c, &store))
        }));

        // One NodeStateD per node, each its own thread (as in the paper).
        for i in 0..n {
            handles.push(spawn_loop(rx.clone(), wall(config.nodestate_period), {
                let cluster = cluster.clone();
                let store = store.clone();
                let mut d = NodeStateD::new(NodeId(i as u32));
                move || cluster.with_sync(|c| d.tick(c, &store))
            }));
        }

        // LatencyD
        handles.push(spawn_loop(rx.clone(), wall(config.latency_period), {
            let cluster = cluster.clone();
            let store = store.clone();
            let mut d = LatencyD::new(n);
            move || cluster.with_sync(|c| d.tick(c, &store))
        }));

        // BandwidthD
        handles.push(spawn_loop(rx, wall(config.bandwidth_period), {
            let cluster = cluster.clone();
            let store = store.clone();
            let mut d = BandwidthD::new(n);
            move || cluster.with_sync(|c| d.tick(c, &store))
        }));

        ThreadedMonitor {
            store,
            shutdown: tx,
            handles,
        }
    }

    /// The store the daemons publish into.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Stop all daemon threads and wait for them to exit.
    pub fn stop(self) {
        drop(self.shutdown); // closes the channel; loops observe disconnect
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Spawn a thread running `tick` every `period` until the shutdown channel
/// disconnects.
fn spawn_loop(
    shutdown: Receiver<()>,
    period: Duration,
    mut tick: impl FnMut() + Send + 'static,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match shutdown.recv_timeout(period) {
            Err(RecvTimeoutError::Timeout) => tick(),
            // disconnect (or an explicit signal): exit
            _ => return,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ClusterSnapshot;
    use nlrm_cluster::iitk::small_cluster;

    fn fast_config() -> DaemonConfig {
        DaemonConfig::default()
    }

    #[test]
    fn threaded_daemons_populate_store() {
        // 1000× speedup: 5-minute bandwidth period every 300 ms of wall time
        let cluster = LiveCluster::new(small_cluster(4, 23), 1000.0);
        let mon = ThreadedMonitor::start(cluster.clone(), fast_config());
        std::thread::sleep(Duration::from_millis(700));
        let now = cluster.now();
        let snap = ClusterSnapshot::assemble(mon.store(), 4, now).unwrap();
        assert_eq!(snap.usable_nodes().len(), 4);
        for (_, _, bw) in snap.bandwidth_bps.pairs() {
            assert!(bw > 0.0);
        }
        mon.stop();
    }

    #[test]
    fn stop_terminates_threads() {
        let cluster = LiveCluster::new(small_cluster(3, 23), 1000.0);
        let mon = ThreadedMonitor::start(cluster, fast_config());
        std::thread::sleep(Duration::from_millis(50));
        mon.stop(); // must not hang
    }

    #[test]
    fn virtual_time_tracks_wall_time() {
        let cluster = LiveCluster::new(small_cluster(2, 23), 1000.0);
        std::thread::sleep(Duration::from_millis(100));
        let t = cluster.with_sync(|c| c.now());
        // ~100 virtual seconds elapsed (generous tolerance for CI jitter)
        assert!(t >= SimTime::from_secs(50), "virtual time {t}");
    }
}
