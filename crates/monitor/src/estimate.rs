//! Landmark-based inter-shard network-load estimation with error bounds.
//!
//! The central monitor measures all `V·(V−1)/2` node pairs. The sharded
//! topology measures pairs exhaustively only *inside* each shard
//! ([`crate::shard`]); across shards it probes a small sample and infers
//! the rest from the tree-topology model, the same idea as sampled
//! supercomputer bandwidth measurement: pick `L = O(log S)` *landmark*
//! shards, measure landmark↔landmark and every-shard↔landmark — that is
//! `O(S log S) = O(V log V)` probes total — and solve for each shard's
//! uplink contribution.
//!
//! Under the tree model a cross-shard path latency is additive in the two
//! shards' uplink contributions, `m(s,t) = u_s + u_t`, and the bandwidth
//! *complement* (peak − available, the congestion the allocator actually
//! scores) adds the same way. With `L ≥ 3` landmarks the landmark clique
//! solves in closed form:
//!
//! ```text
//! S_i = Σ_{j≠i} m(i,j)          row sums of the landmark clique
//! U   = Σ_{i<j} m(i,j) / (L−1)  total uplink mass
//! u_i = (S_i − U) / (L−2)
//! ```
//!
//! A non-landmark shard `s` gets one candidate `m(s,ℓ) − u_ℓ` per landmark;
//! the candidate *spread* (min/max) plus the landmark clique's residual
//! misfit become the per-shard error band. Measured pairs keep their exact
//! value with a zero-width band. When the additive model holds exactly the
//! bands collapse to the true value; the property tests assert
//! `lo ≤ exact ≤ hi` on random tree models.
//!
//! The result is an [`InterEstimate`]: `O(S log S)` state (per-shard bands
//! plus the probed pairs) answering point/lo/hi queries for *any* shard
//! pair, which `Loads::derive_sharded` maps into an
//! `EstimatedNl` whose lower bounds keep Alg. 2's pruning sound.

use crate::codec::{encode, DirectPairRec, MonitorRecord, SwitchBandRec};
use crate::daemons::{BANDWIDTH_PROBE_BYTES, LATENCY_PROBE_BYTES};
use bytes::Bytes;
use nlrm_sim_core::time::SimTime;
use nlrm_topology::NodeId;
use std::collections::HashMap;

/// One combined latency + bandwidth probe result for a node pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairProbe {
    /// Round-trip latency, seconds.
    pub latency_s: f64,
    /// Instantaneous available bandwidth, bits/s.
    pub avail_bps: f64,
    /// Peak (zero-load) bandwidth, bits/s.
    pub peak_bps: f64,
}

/// Wire cost of one combined probe (latency packet pair + bulk transfer).
pub const PAIR_PROBE_BYTES: u64 = LATENCY_PROBE_BYTES + BANDWIDTH_PROBE_BYTES;

/// A `[lo, point, hi]` interval estimate. `lo ≤ point ≤ hi` always holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower bound.
    pub lo: f64,
    /// Best estimate.
    pub point: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Band {
    /// A zero-width band around an exactly known value.
    pub fn exact(v: f64) -> Band {
        Band {
            lo: v,
            point: v,
            hi: v,
        }
    }

    /// Band width (`hi − lo`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the band (inclusive, with float slack).
    pub fn contains(&self, v: f64) -> bool {
        let eps = 1e-9 * (1.0 + v.abs());
        self.lo - eps <= v && v <= self.hi + eps
    }

    fn sum(a: Band, b: Band) -> Band {
        Band {
            lo: a.lo + b.lo,
            point: a.point + b.point,
            hi: a.hi + b.hi,
        }
    }

    fn clamped(lo: f64, point: f64, hi: f64) -> Band {
        let point = point.max(0.0);
        Band {
            lo: lo.max(0.0).min(point),
            point,
            hi: hi.max(point),
        }
    }
}

/// Per-shard uplink contribution bands (latency seconds, congestion bits/s)
/// plus the best known peak capacity on the shard's uplink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchBands {
    /// Latency contribution of this shard's uplink, seconds.
    pub lat: Band,
    /// Bandwidth-complement (congestion) contribution, bits/s.
    pub cbw: Band,
    /// Best known peak bandwidth through this shard's uplink, bits/s.
    pub peak_bps: f64,
}

/// An exactly measured cross-shard pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectPair {
    /// Measured latency, seconds.
    pub latency_s: f64,
    /// Measured available bandwidth, bits/s.
    pub avail_bps: f64,
    /// Measured peak bandwidth, bits/s.
    pub peak_bps: f64,
}

/// The sampled inter-shard view: measured pairs exact, everything else
/// inferred from per-shard uplink bands.
#[derive(Debug, Clone, PartialEq)]
pub struct InterEstimate {
    num_switches: usize,
    up: Vec<Option<SwitchBands>>,
    direct: HashMap<(u32, u32), DirectPair>,
    /// Probes issued to build this estimate.
    pub probes: u64,
    /// Probe traffic in bytes.
    pub probe_bytes: u64,
}

fn pair_key(s: u32, t: u32) -> (u32, u32) {
    if s < t {
        (s, t)
    } else {
        (t, s)
    }
}

impl InterEstimate {
    /// An estimate with no data (fewer than two covered shards).
    pub fn empty(num_switches: usize) -> InterEstimate {
        InterEstimate {
            num_switches,
            up: vec![None; num_switches],
            direct: HashMap::new(),
            probes: 0,
            probe_bytes: 0,
        }
    }

    /// Switch-id space bound.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Whether shard `s` has an uplink estimate (it had a live
    /// representative when the sample was taken).
    pub fn covers(&self, s: u32) -> bool {
        self.up[s as usize].is_some()
    }

    /// Number of exactly measured cross-shard pairs.
    pub fn direct_pairs(&self) -> usize {
        self.direct.len()
    }

    /// Latency band for a cross-shard pair, when both sides are covered.
    /// Measured pairs return a zero-width band.
    pub fn latency_s(&self, s: u32, t: u32) -> Option<Band> {
        debug_assert_ne!(s, t);
        if let Some(d) = self.direct.get(&pair_key(s, t)) {
            return Some(Band::exact(d.latency_s));
        }
        let (a, b) = (self.up[s as usize]?, self.up[t as usize]?);
        Some(Band::sum(a.lat, b.lat))
    }

    /// Bandwidth-complement (peak − available) band for a cross-shard pair.
    pub fn cbw_bps(&self, s: u32, t: u32) -> Option<Band> {
        debug_assert_ne!(s, t);
        if let Some(d) = self.direct.get(&pair_key(s, t)) {
            return Some(Band::exact((d.peak_bps - d.avail_bps).max(0.0)));
        }
        let (a, b) = (self.up[s as usize]?, self.up[t as usize]?);
        Some(Band::sum(a.cbw, b.cbw))
    }

    /// Peak bandwidth estimate for a cross-shard pair (exact for measured
    /// pairs, min of the per-shard peaks otherwise).
    pub fn peak_bps(&self, s: u32, t: u32) -> Option<f64> {
        debug_assert_ne!(s, t);
        if let Some(d) = self.direct.get(&pair_key(s, t)) {
            return Some(d.peak_bps);
        }
        let (a, b) = (self.up[s as usize]?, self.up[t as usize]?);
        Some(a.peak_bps.min(b.peak_bps))
    }

    /// Available-bandwidth point estimate for a cross-shard pair
    /// (`peak − cbw.point`, clamped into `[0, peak]`).
    pub fn avail_bps(&self, s: u32, t: u32) -> Option<f64> {
        let peak = self.peak_bps(s, t)?;
        let cbw = self.cbw_bps(s, t)?;
        Some((peak - cbw.point).clamp(0.0, peak))
    }

    /// Encode as a store record.
    pub fn to_record(&self, epoch: u64, taken_at: SimTime) -> Bytes {
        let mut switches: Vec<SwitchBandRec> = Vec::new();
        for (s, bands) in self.up.iter().enumerate() {
            if let Some(b) = bands {
                switches.push(SwitchBandRec {
                    switch: s as u32,
                    lat_lo: b.lat.lo,
                    lat: b.lat.point,
                    lat_hi: b.lat.hi,
                    cbw_lo: b.cbw.lo,
                    cbw: b.cbw.point,
                    cbw_hi: b.cbw.hi,
                    peak_bps: b.peak_bps,
                });
            }
        }
        let mut direct: Vec<DirectPairRec> = self
            .direct
            .iter()
            .map(|(&(s, t), d)| DirectPairRec {
                s,
                t,
                latency_s: d.latency_s,
                avail_bps: d.avail_bps,
                peak_bps: d.peak_bps,
            })
            .collect();
        direct.sort_by_key(|d| (d.s, d.t));
        encode(&MonitorRecord::InterEstimate {
            epoch,
            taken_at,
            num_switches: self.num_switches as u32,
            probes: self.probes,
            probe_bytes: self.probe_bytes,
            switches,
            direct,
        })
    }

    /// Rebuild from a decoded [`MonitorRecord::InterEstimate`].
    pub fn from_record(record: &MonitorRecord) -> Option<InterEstimate> {
        let MonitorRecord::InterEstimate {
            num_switches,
            probes,
            probe_bytes,
            switches,
            direct,
            ..
        } = record
        else {
            return None;
        };
        let mut est = InterEstimate::empty(*num_switches as usize);
        est.probes = *probes;
        est.probe_bytes = *probe_bytes;
        for s in switches {
            est.up[s.switch as usize] = Some(SwitchBands {
                lat: Band::clamped(s.lat_lo, s.lat, s.lat_hi),
                cbw: Band::clamped(s.cbw_lo, s.cbw, s.cbw_hi),
                peak_bps: s.peak_bps,
            });
        }
        for d in direct {
            est.direct.insert(
                pair_key(d.s, d.t),
                DirectPair {
                    latency_s: d.latency_s,
                    avail_bps: d.avail_bps,
                    peak_bps: d.peak_bps,
                },
            );
        }
        Some(est)
    }
}

/// The landmark sampler: picks landmark shards and turns `O(S log S)`
/// probes into an [`InterEstimate`].
#[derive(Debug, Clone)]
pub struct NlEstimator {
    num_switches: usize,
}

impl NlEstimator {
    /// An estimator over a `num_switches`-shard space.
    pub fn new(num_switches: usize) -> NlEstimator {
        NlEstimator { num_switches }
    }

    /// Landmark count for `covered` reachable shards:
    /// `min(covered, max(3, ⌈log2 covered⌉ + 2))`. The closed-form solve
    /// needs at least 3; tiny clusters just measure everything.
    pub fn landmark_count(covered: usize) -> usize {
        if covered <= 3 {
            return covered;
        }
        let log2 = usize::BITS - (covered - 1).leading_zeros();
        covered.min((log2 as usize + 2).max(3))
    }

    /// Representative node pairs probed per measured switch pair (capped
    /// by shard membership). Averaging a few pairs keeps one unlucky leaf
    /// link from biasing the whole switch-pair estimate.
    pub const REP_PAIRS: usize = 3;

    /// Build the estimate. `members[s]` lists the live nodes of shard `s`
    /// (empty: shard unreachable this round); `probe` measures one node
    /// pair. Each sampled switch pair probes up to [`Self::REP_PAIRS`]
    /// distinct representative pairs and averages them. Probe traffic is
    /// accounted into the `monitor_*` counters.
    pub fn estimate(
        &self,
        members: &[Vec<NodeId>],
        probe: &mut impl FnMut(NodeId, NodeId) -> PairProbe,
    ) -> InterEstimate {
        assert_eq!(members.len(), self.num_switches);
        let covered: Vec<u32> = (0..self.num_switches as u32)
            .filter(|&s| !members[s as usize].is_empty())
            .collect();
        let mut est = InterEstimate::empty(self.num_switches);
        if covered.len() < 2 {
            return est;
        }
        let mut measure = |s: u32, t: u32, est: &mut InterEstimate| -> DirectPair {
            let (ms, mt) = (&members[s as usize], &members[t as usize]);
            let k = Self::REP_PAIRS.min(ms.len()).min(mt.len());
            let mut d = DirectPair {
                latency_s: 0.0,
                avail_bps: 0.0,
                peak_bps: 0.0,
            };
            for i in 0..k {
                // rotate both sides so the k pairs share no endpoint
                let p = probe(ms[i % ms.len()], mt[(i + 1) % mt.len()]);
                est.probes += 1;
                est.probe_bytes += PAIR_PROBE_BYTES;
                d.latency_s += p.latency_s / k as f64;
                d.avail_bps += p.avail_bps / k as f64;
                d.peak_bps = d.peak_bps.max(p.peak_bps);
            }
            est.direct.insert(pair_key(s, t), d);
            d
        };

        let l = Self::landmark_count(covered.len());
        // landmarks spread evenly over the covered shard list: deterministic
        // and topology-stable across rounds
        let landmarks: Vec<u32> = (0..l)
            .map(|i| covered[i * (covered.len() - 1) / (l - 1).max(1)])
            .collect();

        if covered.len() <= l {
            // small cluster: measure every covered pair exactly
            for (i, &s) in covered.iter().enumerate() {
                for &t in &covered[i + 1..] {
                    measure(s, t, &mut est);
                }
            }
        } else {
            // landmark clique + every covered shard against every landmark
            for (i, &s) in landmarks.iter().enumerate() {
                for &t in &landmarks[i + 1..] {
                    measure(s, t, &mut est);
                }
            }
            for &s in &covered {
                if landmarks.contains(&s) {
                    continue;
                }
                for &t in &landmarks {
                    measure(s, t, &mut est);
                }
            }
        }

        // solve the additive model for both metrics
        let lat_up = solve_uplinks(&covered, &landmarks, &est.direct, |d| d.latency_s);
        let cbw_up = solve_uplinks(&covered, &landmarks, &est.direct, |d| {
            (d.peak_bps - d.avail_bps).max(0.0)
        });
        // peak per shard: the best capacity observed through its uplink
        let mut peak = vec![0.0f64; self.num_switches];
        for (&(s, t), d) in &est.direct {
            peak[s as usize] = peak[s as usize].max(d.peak_bps);
            peak[t as usize] = peak[t as usize].max(d.peak_bps);
        }
        for &s in &covered {
            est.up[s as usize] = Some(SwitchBands {
                lat: lat_up[s as usize],
                cbw: cbw_up[s as usize],
                peak_bps: peak[s as usize],
            });
        }
        nlrm_obs::ctx::add("monitor_pair_measurements_total", est.probes);
        nlrm_obs::ctx::add("monitor_probe_bytes_total", est.probe_bytes);
        est
    }
}

/// Solve per-shard uplink contributions from the landmark measurements.
/// Returns a band per shard (indexed by shard id; uncovered shards get a
/// zero band that is never read).
fn solve_uplinks(
    covered: &[u32],
    landmarks: &[u32],
    direct: &HashMap<(u32, u32), DirectPair>,
    metric: impl Fn(&DirectPair) -> f64,
) -> Vec<Band> {
    let n = covered.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
    let mut out = vec![Band::exact(0.0); n];
    let l = landmarks.len();
    let m = |s: u32, t: u32| direct.get(&pair_key(s, t)).map(&metric);
    if l < 3 {
        // no solvable clique (everything was measured directly anyway);
        // leave wide-open bands so derived pairs, if any, stay sound
        for &s in covered {
            out[s as usize] = Band {
                lo: 0.0,
                point: 0.0,
                hi: f64::INFINITY,
            };
        }
        return out;
    }

    // closed-form landmark solve
    let mut total = 0.0;
    let mut row_sum = vec![0.0f64; l];
    for i in 0..l {
        for j in (i + 1)..l {
            let v = m(landmarks[i], landmarks[j]).expect("landmark clique measured");
            total += v;
            row_sum[i] += v;
            row_sum[j] += v;
        }
    }
    let u_total = total / (l as f64 - 1.0);
    let u: Vec<f64> = row_sum
        .iter()
        .map(|&s| ((s - u_total) / (l as f64 - 2.0)).max(0.0))
        .collect();
    // model misfit: the largest residual of the clique under the solved
    // contributions widens every band (zero when the tree model is exact)
    let mut misfit = 0.0f64;
    for i in 0..l {
        for j in (i + 1)..l {
            let v = m(landmarks[i], landmarks[j]).expect("measured");
            misfit = misfit.max((v - u[i] - u[j]).abs());
        }
    }
    for (i, &s) in landmarks.iter().enumerate() {
        out[s as usize] = Band::clamped(u[i] - misfit, u[i], u[i] + misfit);
    }
    for &s in covered {
        if landmarks.contains(&s) {
            continue;
        }
        // one candidate per landmark; spread + misfit is the error band
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for (i, &lm) in landmarks.iter().enumerate() {
            let c = (m(s, lm).expect("shard-landmark measured") - u[i]).max(0.0);
            lo = lo.min(c);
            hi = hi.max(c);
            sum += c;
        }
        let point = sum / l as f64;
        out[s as usize] = Band::clamped(lo - misfit, point, hi + misfit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;

    /// Probes that follow the additive tree model exactly.
    fn tree_probe<'a>(
        lat_up: &'a [f64],
        cbw_up: &'a [f64],
        peak: f64,
        shard_of: &'a dyn Fn(NodeId) -> usize,
    ) -> impl FnMut(NodeId, NodeId) -> PairProbe + 'a {
        move |u, v| {
            let (s, t) = (shard_of(u), shard_of(v));
            let cbw = cbw_up[s] + cbw_up[t];
            PairProbe {
                latency_s: lat_up[s] + lat_up[t],
                avail_bps: (peak - cbw).max(0.0),
                peak_bps: peak,
            }
        }
    }

    fn reps(n: usize) -> Vec<Vec<NodeId>> {
        (0..n).map(|s| vec![NodeId(s as u32 * 100)]).collect()
    }

    #[test]
    fn landmark_count_scales_logarithmically() {
        assert_eq!(NlEstimator::landmark_count(2), 2);
        assert_eq!(NlEstimator::landmark_count(3), 3);
        assert_eq!(NlEstimator::landmark_count(4), 4);
        assert_eq!(NlEstimator::landmark_count(8), 5);
        assert_eq!(NlEstimator::landmark_count(100), 9);
        assert_eq!(NlEstimator::landmark_count(2084), 14);
    }

    #[test]
    fn exact_on_additive_tree_model() {
        let s = 20usize;
        let lat: Vec<f64> = (0..s).map(|i| 1e-4 * (1.0 + i as f64 * 0.37)).collect();
        let cbw: Vec<f64> = (0..s)
            .map(|i| 1e7 * (1.0 + (i as f64 * 1.3) % 5.0))
            .collect();
        let shard_of = |n: NodeId| (n.0 / 100) as usize;
        let mut probe = tree_probe(&lat, &cbw, 1e9, &shard_of);
        let est = NlEstimator::new(s).estimate(&reps(s), &mut probe);
        for a in 0..s as u32 {
            for b in (a + 1)..s as u32 {
                let want_lat = lat[a as usize] + lat[b as usize];
                let band = est.latency_s(a, b).unwrap();
                assert!(
                    (band.point - want_lat).abs() < 1e-12,
                    "lat({a},{b}) {} != {want_lat}",
                    band.point
                );
                assert!(band.contains(want_lat));
                let want_cbw = cbw[a as usize] + cbw[b as usize];
                let band = est.cbw_bps(a, b).unwrap();
                assert!((band.point - want_cbw).abs() < 1e-3);
                assert!(band.contains(want_cbw));
                assert_eq!(est.peak_bps(a, b), Some(1e9));
            }
        }
    }

    #[test]
    fn probe_budget_is_s_log_s_not_s_squared() {
        let s = 256usize;
        let lat = vec![1e-4; s];
        let cbw = vec![1e6; s];
        let shard_of = |n: NodeId| (n.0 / 100) as usize;
        let mut probe = tree_probe(&lat, &cbw, 1e9, &shard_of);
        let est = NlEstimator::new(s).estimate(&reps(s), &mut probe);
        let l = NlEstimator::landmark_count(s);
        let want = (l * (l - 1) / 2 + (s - l) * l) as u64;
        assert_eq!(est.probes, want);
        assert!(
            (est.probes as usize) < s * (s - 1) / 8,
            "sampled probes {} not far below the full {} pairs",
            est.probes,
            s * (s - 1) / 2
        );
    }

    #[test]
    fn small_cluster_measures_all_pairs_exactly() {
        let s = 4usize;
        let lat = [1e-4, 2e-4, 3e-4, 4e-4];
        let cbw = [1e6, 2e6, 3e6, 4e6];
        let shard_of = |n: NodeId| (n.0 / 100) as usize;
        let mut probe = tree_probe(&lat, &cbw, 1e9, &shard_of);
        let est = NlEstimator::new(s).estimate(&reps(s), &mut probe);
        assert_eq!(est.direct_pairs(), 6, "all pairs measured directly");
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                let band = est.latency_s(a, b).unwrap();
                assert_eq!(band.width(), 0.0, "direct pairs are exact");
            }
        }
    }

    #[test]
    fn uncovered_shards_yield_none() {
        let mut r = reps(6);
        r[2] = vec![];
        let lat = vec![1e-4; 6];
        let cbw = vec![1e6; 6];
        let shard_of = |n: NodeId| (n.0 / 100) as usize;
        let mut probe = tree_probe(&lat, &cbw, 1e9, &shard_of);
        let est = NlEstimator::new(6).estimate(&r, &mut probe);
        assert!(!est.covers(2));
        assert!(est.latency_s(1, 2).is_none());
        assert!(est.latency_s(0, 3).is_some());
    }

    #[test]
    fn record_roundtrip_preserves_queries() {
        let s = 12usize;
        let lat: Vec<f64> = (0..s).map(|i| 1e-4 + i as f64 * 1e-5).collect();
        let cbw: Vec<f64> = (0..s).map(|i| 1e6 * (1.0 + i as f64)).collect();
        let shard_of = |n: NodeId| (n.0 / 100) as usize;
        let mut probe = tree_probe(&lat, &cbw, 1e9, &shard_of);
        let est = NlEstimator::new(s).estimate(&reps(s), &mut probe);
        let rec = est.to_record(7, SimTime::from_secs(60));
        let back = InterEstimate::from_record(&decode(&rec).unwrap()).unwrap();
        assert_eq!(back, est);
    }
}
