//! Per-shard monitor aggregators: the full pair tournament, intra-shard
//! only.
//!
//! The central monitor's latency/bandwidth daemons probe all
//! `V·(V−1)/2` node pairs ([`crate::daemons`]). The sharded topology
//! splits the cluster by switch ([`nlrm_topology::tier::SwitchIndex`]) and
//! runs the tournament *inside* each shard only — `Σ m_s·(m_s−1)/2`
//! pairs, a `~V/m` cut for `m`-node shards — publishing one epoch-stamped
//! [`MonitorRecord::ShardNl`] record per shard. Cross-shard pairs are
//! sampled and inferred separately by [`crate::estimate`].
//!
//! Probe and publish traffic is attributed per shard (the
//! `monitor_shard_*` counters) so the traffic accounting in
//! `BENCH_monitor.json` and the `health_*` gauges can tell shard-local
//! probing apart from gossip relays and central publishes.

use crate::codec::{encode, MonitorRecord};
use crate::estimate::{PairProbe, PAIR_PROBE_BYTES};
use crate::rounds::round_robin_rounds;
use crate::store::{paths, SharedStore};
use nlrm_sim_core::time::SimTime;
use nlrm_topology::tier::SwitchIndex;
use nlrm_topology::NodeId;

/// A compact per-shard aggregate, gossiped between shards so every shard
/// learns the cluster-wide picture without the full matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSummary {
    /// Shard (switch) id.
    pub shard: u32,
    /// Sweep epoch this summary describes.
    pub epoch: u64,
    /// Live members seen this sweep.
    pub live: u32,
    /// Mean intra-shard latency, seconds (0 for shards with < 2 live).
    pub mean_lat_s: f64,
    /// Mean intra-shard available bandwidth, bits/s.
    pub mean_avail_bps: f64,
    /// Probe traffic the sweep cost this shard, bytes.
    pub probe_bytes: u64,
}

impl ShardSummary {
    /// Serialized size of one summary on the gossip wire: shard + live
    /// (4 B each), epoch + probe_bytes (8 B each), two f64 means.
    pub const WIRE_BYTES: u64 = 40;
}

/// Per-shard traffic attribution for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard (switch) id.
    pub shard: u32,
    /// Live members this sweep.
    pub live: u32,
    /// Intra-shard pairs measured.
    pub pairs: u64,
    /// Probe bytes spent inside the shard.
    pub probe_bytes: u64,
    /// Bytes published to the store by this shard.
    pub publish_bytes: u64,
}

/// Totals for one sharded sweep across all shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSweepReport {
    /// Epoch stamped on every record this sweep.
    pub epoch: u64,
    /// Total intra-shard pairs measured.
    pub pairs: u64,
    /// Total probe bytes.
    pub probe_bytes: u64,
    /// Total store-publish bytes.
    pub publish_bytes: u64,
    /// Tournament rounds needed: the largest shard's `live − 1` (shards
    /// run their tournaments concurrently).
    pub tournament_rounds: u64,
    /// Per-shard attribution, ascending shard id, only shards with ≥ 1
    /// live member.
    pub per_shard: Vec<ShardStats>,
    /// Gossipable per-shard aggregates (same shards as `per_shard`).
    pub summaries: Vec<ShardSummary>,
}

/// Runs the intra-shard pair tournaments and publishes per-shard NL
/// records. One sweeper instance drives every shard in lockstep — in the
/// real system each shard's aggregator runs on a member node; under
/// virtual time the lockstep schedule is equivalent and deterministic.
#[derive(Debug, Clone)]
pub struct ShardSweeper {
    members: Vec<Vec<NodeId>>,
    epoch: u64,
}

impl ShardSweeper {
    /// A sweeper over the shards of `index`.
    pub fn new(index: &SwitchIndex) -> ShardSweeper {
        let members = (0..index.num_switches())
            .map(|s| index.members(nlrm_topology::SwitchId(s as u32)).to_vec())
            .collect();
        ShardSweeper { members, epoch: 0 }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Epoch the next sweep will stamp.
    pub fn next_epoch(&self) -> u64 {
        self.epoch + 1
    }

    /// Run one sweep: probe every live intra-shard pair, publish one
    /// `ShardNl` record per non-empty shard, and return the traffic
    /// report. `alive` filters members; `probe` measures one pair.
    pub fn sweep(
        &mut self,
        now: SimTime,
        store: &SharedStore,
        alive: &mut impl FnMut(NodeId) -> bool,
        probe: &mut impl FnMut(NodeId, NodeId) -> PairProbe,
    ) -> ShardSweepReport {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut report = ShardSweepReport {
            epoch,
            pairs: 0,
            probe_bytes: 0,
            publish_bytes: 0,
            tournament_rounds: 0,
            per_shard: Vec::new(),
            summaries: Vec::new(),
        };
        for (shard, members) in self.members.iter().enumerate() {
            let live: Vec<NodeId> = members.iter().copied().filter(|&n| alive(n)).collect();
            if live.is_empty() {
                continue;
            }
            let m = live.len();
            let pairs = (m * (m - 1) / 2) as u64;
            report.tournament_rounds = report.tournament_rounds.max(m.saturating_sub(1) as u64);
            // the same disjoint-pair tournament schedule the central
            // daemons use, so each round's probes could run concurrently
            let tri_len = m * m.saturating_sub(1) / 2;
            let mut lat_s = vec![0.0; tri_len];
            let mut avail_bps = vec![0.0; tri_len];
            let mut peak_bps = vec![0.0; tri_len];
            let tri = |i: usize, j: usize| i * (2 * m - i - 1) / 2 + j - i - 1;
            let mut lat_sum = 0.0;
            let mut avail_sum = 0.0;
            for round in round_robin_rounds(m) {
                for (i, j) in round {
                    let p = probe(live[i], live[j]);
                    let k = tri(i.min(j), i.max(j));
                    lat_s[k] = p.latency_s;
                    avail_bps[k] = p.avail_bps;
                    peak_bps[k] = p.peak_bps;
                    lat_sum += p.latency_s;
                    avail_sum += p.avail_bps;
                }
            }
            let probe_bytes = pairs * PAIR_PROBE_BYTES;
            let record = encode(&MonitorRecord::ShardNl {
                shard: shard as u32,
                epoch,
                taken_at: now,
                members: live.clone(),
                lat_s,
                avail_bps,
                peak_bps,
                probe_bytes,
            });
            let publish_bytes = record.len() as u64;
            store.put(paths::shard_nl(shard as u32), now, record);
            report.pairs += pairs;
            report.probe_bytes += probe_bytes;
            report.publish_bytes += publish_bytes;
            report.per_shard.push(ShardStats {
                shard: shard as u32,
                live: m as u32,
                pairs,
                probe_bytes,
                publish_bytes,
            });
            report.summaries.push(ShardSummary {
                shard: shard as u32,
                epoch,
                live: m as u32,
                mean_lat_s: if pairs > 0 {
                    lat_sum / pairs as f64
                } else {
                    0.0
                },
                mean_avail_bps: if pairs > 0 {
                    avail_sum / pairs as f64
                } else {
                    0.0
                },
                probe_bytes,
            });
        }
        if nlrm_obs::ctx::is_active() {
            nlrm_obs::ctx::add("monitor_pair_measurements_total", report.pairs);
            nlrm_obs::ctx::add("monitor_probe_bytes_total", report.probe_bytes);
            for s in &report.per_shard {
                nlrm_obs::ctx::add(
                    &format!("monitor_shard_probe_bytes_total_{}", s.shard),
                    s.probe_bytes,
                );
                nlrm_obs::ctx::add(
                    &format!("monitor_shard_publish_bytes_total_{}", s.shard),
                    s.publish_bytes,
                );
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;

    fn probe_fn() -> impl FnMut(NodeId, NodeId) -> PairProbe {
        |u: NodeId, v: NodeId| PairProbe {
            latency_s: 1e-5 * (u.0 + v.0) as f64,
            avail_bps: 1e9 - 1e3 * (u.0 * v.0) as f64,
            peak_bps: 1e9,
        }
    }

    #[test]
    fn sweep_measures_only_intra_shard_pairs() {
        let idx = SwitchIndex::uniform(12, 4);
        let mut sweeper = ShardSweeper::new(&idx);
        let store = SharedStore::new();
        let mut probed = Vec::new();
        let mut probe = |u: NodeId, v: NodeId| {
            probed.push((u, v));
            PairProbe {
                latency_s: 1e-4,
                avail_bps: 9e8,
                peak_bps: 1e9,
            }
        };
        let report = sweeper.sweep(SimTime::from_secs(60), &store, &mut |_| true, &mut probe);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.pairs, 3 * 6, "3 shards × C(4,2) pairs");
        assert_eq!(report.tournament_rounds, 3);
        for (u, v) in &probed {
            assert!(idx.same_switch(*u, *v), "{u:?}–{v:?} crosses shards");
        }
        assert_eq!(report.probe_bytes, 18 * PAIR_PROBE_BYTES);
        assert_eq!(store.list_prefix("shard/").len(), 3);
    }

    #[test]
    fn published_records_decode_with_sweep_epoch() {
        let idx = SwitchIndex::uniform(6, 3);
        let mut sweeper = ShardSweeper::new(&idx);
        let store = SharedStore::new();
        sweeper.sweep(
            SimTime::from_secs(60),
            &store,
            &mut |_| true,
            &mut probe_fn(),
        );
        sweeper.sweep(
            SimTime::from_secs(120),
            &store,
            &mut |_| true,
            &mut probe_fn(),
        );
        let rec = store.get(&paths::shard_nl(1)).unwrap();
        let MonitorRecord::ShardNl {
            shard,
            epoch,
            members,
            lat_s,
            ..
        } = decode(&rec.data).unwrap()
        else {
            panic!("wrong record type");
        };
        assert_eq!(shard, 1);
        assert_eq!(epoch, 2, "second sweep overwrites with epoch 2");
        assert_eq!(members, vec![NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(lat_s.len(), 3);
        // pair (0,1) of members = nodes 3,4
        assert_eq!(lat_s[0], 1e-5 * 7.0);
    }

    #[test]
    fn dead_members_are_excluded() {
        let idx = SwitchIndex::uniform(8, 4);
        let mut sweeper = ShardSweeper::new(&idx);
        let store = SharedStore::new();
        let mut alive = |n: NodeId| n.0 != 1 && n.0 != 5;
        let report = sweeper.sweep(SimTime::from_secs(60), &store, &mut alive, &mut probe_fn());
        assert_eq!(report.pairs, 2 * 3, "each shard has 3 live → C(3,2)");
        assert_eq!(report.per_shard[0].live, 3);
        for s in &report.summaries {
            assert_eq!(s.live, 3);
        }
    }

    #[test]
    fn per_shard_attribution_sums_to_totals() {
        let idx = SwitchIndex::uniform(20, 6);
        let mut sweeper = ShardSweeper::new(&idx);
        let store = SharedStore::new();
        let report = sweeper.sweep(
            SimTime::from_secs(60),
            &store,
            &mut |_| true,
            &mut probe_fn(),
        );
        assert_eq!(
            report.per_shard.iter().map(|s| s.probe_bytes).sum::<u64>(),
            report.probe_bytes
        );
        assert_eq!(
            report
                .per_shard
                .iter()
                .map(|s| s.publish_bytes)
                .sum::<u64>(),
            report.publish_bytes
        );
        assert_eq!(
            report.per_shard.iter().map(|s| s.pairs).sum::<u64>(),
            report.pairs
        );
    }

    #[test]
    fn empty_shards_publish_nothing() {
        let idx = SwitchIndex::from_assignment(
            vec![
                nlrm_topology::SwitchId(1),
                nlrm_topology::SwitchId(1),
                nlrm_topology::SwitchId(2),
                nlrm_topology::SwitchId(2),
            ],
            3,
        );
        let mut sweeper = ShardSweeper::new(&idx);
        let store = SharedStore::new();
        let report = sweeper.sweep(
            SimTime::from_secs(60),
            &store,
            &mut |_| true,
            &mut probe_fn(),
        );
        assert!(
            store.get(&paths::shard_nl(0)).is_none(),
            "router shard empty"
        );
        assert_eq!(report.per_shard.len(), 2);
    }
}
