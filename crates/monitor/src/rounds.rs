//! Tournament scheduling for pairwise measurements.
//!
//! The paper (§4) schedules the O(n²) P2P probes "in a few rounds such that
//! one node communicates with only one other node in each round (n/2
//! distinct pairs of nodes communicate at a time). There are n−1 such
//! rounds." That is exactly a round-robin tournament; we implement the
//! classic circle method.

/// Round-robin rounds over `n` participants.
///
/// Returns `n−1` rounds (or `n` rounds for odd `n`, where each round one
/// participant sits out). Every round is a set of disjoint pairs; across all
/// rounds every unordered pair appears exactly once.
///
/// ```
/// use nlrm_monitor::rounds::round_robin_rounds;
///
/// let rounds = round_robin_rounds(4);
/// assert_eq!(rounds.len(), 3);                     // n − 1 rounds
/// assert!(rounds.iter().all(|r| r.len() == 2));    // n/2 disjoint pairs each
/// let total: usize = rounds.iter().map(|r| r.len()).sum();
/// assert_eq!(total, 6);                            // C(4,2) pairs in all
/// ```
pub fn round_robin_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return Vec::new();
    }
    // Pad odd n with a phantom participant (index n) meaning "bye".
    let m = if n.is_multiple_of(2) { n } else { n + 1 };
    let rounds = m - 1;
    let mut ring: Vec<usize> = (1..m).collect(); // participant 0 is fixed
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut pairs = Vec::with_capacity(m / 2);
        // pair 0 with ring[last]; pair ring[i] with ring[m-3-i]
        let opp = ring[m - 2];
        push_pair(&mut pairs, 0, opp, n);
        for i in 0..(m / 2 - 1) {
            push_pair(&mut pairs, ring[i], ring[m - 3 - i], n);
        }
        out.push(pairs);
        ring.rotate_right(1);
    }
    out
}

fn push_pair(pairs: &mut Vec<(usize, usize)>, a: usize, b: usize, n: usize) {
    // drop pairs involving the phantom bye participant
    if a < n && b < n {
        pairs.push((a.min(b), a.max(b)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_schedule(n: usize) {
        let rounds = round_robin_rounds(n);
        let expected_rounds = if n < 2 {
            0
        } else if n.is_multiple_of(2) {
            n - 1
        } else {
            n
        };
        assert_eq!(rounds.len(), expected_rounds, "n={n}");
        let mut all = HashSet::new();
        for round in &rounds {
            let mut seen = HashSet::new();
            for &(a, b) in round {
                assert!(a < b && b < n, "bad pair ({a},{b}) for n={n}");
                // disjointness within a round
                assert!(seen.insert(a), "node {a} reused in a round (n={n})");
                assert!(seen.insert(b), "node {b} reused in a round (n={n})");
                assert!(all.insert((a, b)), "pair ({a},{b}) repeated (n={n})");
            }
        }
        // completeness: all C(n,2) pairs covered
        assert_eq!(all.len(), n * (n - 1) / 2, "n={n}");
    }

    #[test]
    fn even_sizes() {
        for n in [2, 4, 6, 10, 30, 60] {
            check_schedule(n);
        }
    }

    #[test]
    fn odd_sizes() {
        for n in [3, 5, 7, 15, 59] {
            check_schedule(n);
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(round_robin_rounds(0).is_empty());
        assert!(round_robin_rounds(1).is_empty());
    }

    #[test]
    fn even_rounds_have_half_n_pairs() {
        for round in round_robin_rounds(8) {
            assert_eq!(round.len(), 4);
        }
    }
}
