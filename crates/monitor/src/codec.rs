//! Binary record format for the shared store.
//!
//! The paper's daemons write small files to NFS; ours write small byte
//! records to the [`SharedStore`](crate::store::SharedStore). The format is
//! a hand-rolled little-endian encoding: one version byte, one tag byte,
//! then the fields. Hand-rolled because the records are tiny, fixed, and
//! must stay readable by the threaded runtime without pulling in a
//! serialization framework.

use crate::sample::{LatencyStat, NodeSample};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nlrm_cluster::NodeSpec;
use nlrm_sim_core::time::SimTime;
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::NodeId;
use std::fmt;

/// Format version; bump on incompatible change.
const VERSION: u8 = 1;

const TAG_LIVEHOSTS: u8 = 1;
const TAG_SAMPLE: u8 = 2;
const TAG_LATENCY_ROW: u8 = 3;
const TAG_BANDWIDTH_ROW: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;

/// Everything the monitoring system persists.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorRecord {
    /// The list of nodes that answered the last ping sweep.
    Livehosts(Vec<NodeId>),
    /// One node's state sample.
    Sample(NodeSample),
    /// One node's latency to every node (index = peer id; self entry 0).
    LatencyRow {
        /// Measuring node.
        node: NodeId,
        /// Per-peer latency statistics.
        stats: Vec<LatencyStat>,
    },
    /// One node's bandwidth to every node.
    BandwidthRow {
        /// Measuring node.
        node: NodeId,
        /// Instantaneous effective available bandwidth, bits/s.
        avail_bps: Vec<f64>,
        /// Peak (zero-load) bandwidth, bits/s.
        peak_bps: Vec<f64>,
    },
    /// A central-monitor liveness beacon.
    Heartbeat {
        /// `"master"` or `"slave"`.
        role: String,
        /// Monotonic incarnation number (bumped on failover/restart).
        incarnation: u32,
        /// When the beacon was written.
        at: SimTime,
    },
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Record ended before all fields were read.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown tag byte.
    BadTag(u8),
    /// Hostname was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in record"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a record to bytes.
pub fn encode(record: &MonitorRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(VERSION);
    match record {
        MonitorRecord::Livehosts(hosts) => {
            buf.put_u8(TAG_LIVEHOSTS);
            buf.put_u32_le(hosts.len() as u32);
            for h in hosts {
                buf.put_u32_le(h.0);
            }
        }
        MonitorRecord::Sample(s) => {
            buf.put_u8(TAG_SAMPLE);
            buf.put_u32_le(s.node.0);
            buf.put_u64_le(s.taken_at.as_micros());
            put_spec(&mut buf, &s.spec);
            put_windowed(&mut buf, &s.cpu_load);
            put_windowed(&mut buf, &s.cpu_util);
            put_windowed(&mut buf, &s.mem_used_frac);
            put_windowed(&mut buf, &s.flow_rate_mbps);
            buf.put_u32_le(s.users);
        }
        MonitorRecord::LatencyRow { node, stats } => {
            buf.put_u8(TAG_LATENCY_ROW);
            buf.put_u32_le(node.0);
            buf.put_u32_le(stats.len() as u32);
            for st in stats {
                buf.put_f64_le(st.instant);
                buf.put_f64_le(st.m1);
                buf.put_f64_le(st.m5);
            }
        }
        MonitorRecord::BandwidthRow {
            node,
            avail_bps,
            peak_bps,
        } => {
            buf.put_u8(TAG_BANDWIDTH_ROW);
            buf.put_u32_le(node.0);
            buf.put_u32_le(avail_bps.len() as u32);
            for &b in avail_bps {
                buf.put_f64_le(b);
            }
            debug_assert_eq!(avail_bps.len(), peak_bps.len());
            for &b in peak_bps {
                buf.put_f64_le(b);
            }
        }
        MonitorRecord::Heartbeat {
            role,
            incarnation,
            at,
        } => {
            buf.put_u8(TAG_HEARTBEAT);
            buf.put_u32_le(role.len() as u32);
            buf.put_slice(role.as_bytes());
            buf.put_u32_le(*incarnation);
            buf.put_u64_le(at.as_micros());
        }
    }
    buf.freeze()
}

/// Decode a record from bytes.
pub fn decode(mut data: &[u8]) -> Result<MonitorRecord, CodecError> {
    let version = get_u8(&mut data)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = get_u8(&mut data)?;
    match tag {
        TAG_LIVEHOSTS => {
            let n = get_u32(&mut data)? as usize;
            let mut hosts = Vec::with_capacity(n);
            for _ in 0..n {
                hosts.push(NodeId(get_u32(&mut data)?));
            }
            Ok(MonitorRecord::Livehosts(hosts))
        }
        TAG_SAMPLE => {
            let node = NodeId(get_u32(&mut data)?);
            let taken_at = SimTime::from_micros(get_u64(&mut data)?);
            let spec = get_spec(&mut data)?;
            let cpu_load = get_windowed(&mut data)?;
            let cpu_util = get_windowed(&mut data)?;
            let mem_used_frac = get_windowed(&mut data)?;
            let flow_rate_mbps = get_windowed(&mut data)?;
            let users = get_u32(&mut data)?;
            Ok(MonitorRecord::Sample(NodeSample {
                node,
                taken_at,
                spec,
                cpu_load,
                cpu_util,
                mem_used_frac,
                flow_rate_mbps,
                users,
            }))
        }
        TAG_LATENCY_ROW => {
            let node = NodeId(get_u32(&mut data)?);
            let n = get_u32(&mut data)? as usize;
            let mut stats = Vec::with_capacity(n);
            for _ in 0..n {
                stats.push(LatencyStat {
                    instant: get_f64(&mut data)?,
                    m1: get_f64(&mut data)?,
                    m5: get_f64(&mut data)?,
                });
            }
            Ok(MonitorRecord::LatencyRow { node, stats })
        }
        TAG_BANDWIDTH_ROW => {
            let node = NodeId(get_u32(&mut data)?);
            let n = get_u32(&mut data)? as usize;
            let mut avail_bps = Vec::with_capacity(n);
            for _ in 0..n {
                avail_bps.push(get_f64(&mut data)?);
            }
            let mut peak_bps = Vec::with_capacity(n);
            for _ in 0..n {
                peak_bps.push(get_f64(&mut data)?);
            }
            Ok(MonitorRecord::BandwidthRow {
                node,
                avail_bps,
                peak_bps,
            })
        }
        TAG_HEARTBEAT => {
            let len = get_u32(&mut data)? as usize;
            if data.remaining() < len {
                return Err(CodecError::Truncated);
            }
            let role = std::str::from_utf8(&data[..len])
                .map_err(|_| CodecError::BadUtf8)?
                .to_string();
            data.advance(len);
            let incarnation = get_u32(&mut data)?;
            let at = SimTime::from_micros(get_u64(&mut data)?);
            Ok(MonitorRecord::Heartbeat {
                role,
                incarnation,
                at,
            })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

fn put_spec(buf: &mut BytesMut, spec: &NodeSpec) {
    buf.put_u32_le(spec.hostname.len() as u32);
    buf.put_slice(spec.hostname.as_bytes());
    buf.put_u32_le(spec.cores);
    buf.put_f64_le(spec.freq_ghz);
    buf.put_f64_le(spec.total_mem_gb);
}

fn get_spec(data: &mut &[u8]) -> Result<NodeSpec, CodecError> {
    let len = get_u32(data)? as usize;
    if data.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let hostname = std::str::from_utf8(&data[..len])
        .map_err(|_| CodecError::BadUtf8)?
        .to_string();
    data.advance(len);
    Ok(NodeSpec {
        hostname,
        cores: get_u32(data)?,
        freq_ghz: get_f64(data)?,
        total_mem_gb: get_f64(data)?,
    })
}

fn put_windowed(buf: &mut BytesMut, w: &WindowedValue) {
    buf.put_f64_le(w.instant);
    buf.put_f64_le(w.m1);
    buf.put_f64_le(w.m5);
    buf.put_f64_le(w.m15);
}

fn get_windowed(data: &mut &[u8]) -> Result<WindowedValue, CodecError> {
    Ok(WindowedValue {
        instant: get_f64(data)?,
        m1: get_f64(data)?,
        m5: get_f64(data)?,
        m15: get_f64(data)?,
    })
}

fn get_u8(data: &mut &[u8]) -> Result<u8, CodecError> {
    if data.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u8())
}

fn get_u32(data: &mut &[u8]) -> Result<u32, CodecError> {
    if data.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn get_u64(data: &mut &[u8]) -> Result<u64, CodecError> {
    if data.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u64_le())
}

fn get_f64(data: &mut &[u8]) -> Result<f64, CodecError> {
    if data.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_f64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeSample {
        NodeSample {
            node: NodeId(7),
            taken_at: SimTime::from_secs(123),
            spec: NodeSpec {
                hostname: "csews8".into(),
                cores: 12,
                freq_ghz: 4.6,
                total_mem_gb: 16.0,
            },
            cpu_load: WindowedValue {
                instant: 0.5,
                m1: 0.4,
                m5: 0.3,
                m15: 0.2,
            },
            cpu_util: WindowedValue::constant(0.25),
            mem_used_frac: WindowedValue::constant(0.3),
            flow_rate_mbps: WindowedValue::constant(12.0),
            users: 3,
        }
    }

    #[test]
    fn livehosts_roundtrip() {
        let r = MonitorRecord::Livehosts(vec![NodeId(0), NodeId(5), NodeId(59)]);
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn sample_roundtrip() {
        let r = MonitorRecord::Sample(sample());
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn latency_row_roundtrip() {
        let r = MonitorRecord::LatencyRow {
            node: NodeId(2),
            stats: vec![LatencyStat::constant(0.0), LatencyStat::constant(1e-4)],
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn bandwidth_row_roundtrip() {
        let r = MonitorRecord::BandwidthRow {
            node: NodeId(2),
            avail_bps: vec![0.0, 9e8],
            peak_bps: vec![0.0, 1e9],
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn heartbeat_roundtrip() {
        let r = MonitorRecord::Heartbeat {
            role: "master".into(),
            incarnation: 4,
            at: SimTime::from_secs(99),
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn truncated_records_error() {
        let full = encode(&MonitorRecord::Sample(sample()));
        for cut in [0, 1, 2, 5, full.len() - 1] {
            assert!(
                matches!(decode(&full[..cut]), Err(CodecError::Truncated)),
                "cut {cut} did not fail as truncated"
            );
        }
    }

    #[test]
    fn bad_tag_and_version_detected() {
        assert_eq!(decode(&[9, 1]), Err(CodecError::BadVersion(9)));
        assert_eq!(decode(&[VERSION, 200]), Err(CodecError::BadTag(200)));
    }
}
