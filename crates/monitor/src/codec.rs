//! Binary record format for the shared store.
//!
//! The paper's daemons write small files to NFS; ours write small byte
//! records to the [`SharedStore`](crate::store::SharedStore). The format is
//! a hand-rolled little-endian encoding: one version byte, one tag byte,
//! then the fields. Hand-rolled because the records are tiny, fixed, and
//! must stay readable by the threaded runtime without pulling in a
//! serialization framework.

use crate::sample::{LatencyStat, NodeSample};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nlrm_cluster::NodeSpec;
use nlrm_sim_core::time::SimTime;
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::NodeId;
use std::fmt;

/// Format version; bump on incompatible change.
const VERSION: u8 = 1;

const TAG_LIVEHOSTS: u8 = 1;
const TAG_SAMPLE: u8 = 2;
const TAG_LATENCY_ROW: u8 = 3;
const TAG_BANDWIDTH_ROW: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_SHARD_NL: u8 = 6;
const TAG_INTER_ESTIMATE: u8 = 7;

/// One shard's uplink-contribution bands inside an
/// [`MonitorRecord::InterEstimate`] record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchBandRec {
    /// Shard (switch) id.
    pub switch: u32,
    /// Latency contribution lower bound, seconds.
    pub lat_lo: f64,
    /// Latency contribution point estimate, seconds.
    pub lat: f64,
    /// Latency contribution upper bound, seconds.
    pub lat_hi: f64,
    /// Bandwidth-complement contribution lower bound, bits/s.
    pub cbw_lo: f64,
    /// Bandwidth-complement contribution point estimate, bits/s.
    pub cbw: f64,
    /// Bandwidth-complement contribution upper bound, bits/s.
    pub cbw_hi: f64,
    /// Best observed peak bandwidth through this shard's uplink, bits/s.
    pub peak_bps: f64,
}

/// One directly measured cross-shard pair inside an
/// [`MonitorRecord::InterEstimate`] record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectPairRec {
    /// Lower shard id of the pair.
    pub s: u32,
    /// Higher shard id of the pair.
    pub t: u32,
    /// Measured latency, seconds.
    pub latency_s: f64,
    /// Measured available bandwidth, bits/s.
    pub avail_bps: f64,
    /// Measured peak bandwidth, bits/s.
    pub peak_bps: f64,
}

/// Everything the monitoring system persists.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorRecord {
    /// The list of nodes that answered the last ping sweep.
    Livehosts(Vec<NodeId>),
    /// One node's state sample.
    Sample(NodeSample),
    /// One node's latency to every node (index = peer id; self entry 0).
    LatencyRow {
        /// Measuring node.
        node: NodeId,
        /// Per-peer latency statistics.
        stats: Vec<LatencyStat>,
    },
    /// One node's bandwidth to every node.
    BandwidthRow {
        /// Measuring node.
        node: NodeId,
        /// Instantaneous effective available bandwidth, bits/s.
        avail_bps: Vec<f64>,
        /// Peak (zero-load) bandwidth, bits/s.
        peak_bps: Vec<f64>,
    },
    /// A central-monitor liveness beacon.
    Heartbeat {
        /// `"master"` or `"slave"`.
        role: String,
        /// Monotonic incarnation number (bumped on failover/restart).
        incarnation: u32,
        /// When the beacon was written.
        at: SimTime,
    },
    /// One shard's complete intra-shard NL matrices (upper triangles over
    /// `members`, pair `(i,j)` with `i<j` at index `i·(2m−i−1)/2 + j−i−1`).
    ShardNl {
        /// Shard (switch) id.
        shard: u32,
        /// Sweep epoch the shard aggregator stamped on this record.
        epoch: u64,
        /// When the sweep ran.
        taken_at: SimTime,
        /// Live members measured this sweep, ascending.
        members: Vec<NodeId>,
        /// Pairwise latency, seconds (`m·(m−1)/2` entries).
        lat_s: Vec<f64>,
        /// Pairwise available bandwidth, bits/s.
        avail_bps: Vec<f64>,
        /// Pairwise peak bandwidth, bits/s.
        peak_bps: Vec<f64>,
        /// Probe traffic this sweep cost, for per-shard attribution.
        probe_bytes: u64,
    },
    /// The sampled inter-shard estimate (per-shard uplink bands plus the
    /// directly measured pairs); see [`crate::estimate::InterEstimate`].
    InterEstimate {
        /// Estimation epoch.
        epoch: u64,
        /// When the sample was taken.
        taken_at: SimTime,
        /// Switch-id space bound.
        num_switches: u32,
        /// Probes issued to build the estimate.
        probes: u64,
        /// Probe traffic in bytes.
        probe_bytes: u64,
        /// Covered shards' uplink bands, ascending by switch id.
        switches: Vec<SwitchBandRec>,
        /// Directly measured pairs, ascending by `(s, t)`.
        direct: Vec<DirectPairRec>,
    },
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Record ended before all fields were read.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown tag byte.
    BadTag(u8),
    /// Hostname was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in record"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a record to bytes.
pub fn encode(record: &MonitorRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(VERSION);
    match record {
        MonitorRecord::Livehosts(hosts) => {
            buf.put_u8(TAG_LIVEHOSTS);
            buf.put_u32_le(hosts.len() as u32);
            for h in hosts {
                buf.put_u32_le(h.0);
            }
        }
        MonitorRecord::Sample(s) => {
            buf.put_u8(TAG_SAMPLE);
            buf.put_u32_le(s.node.0);
            buf.put_u64_le(s.taken_at.as_micros());
            put_spec(&mut buf, &s.spec);
            put_windowed(&mut buf, &s.cpu_load);
            put_windowed(&mut buf, &s.cpu_util);
            put_windowed(&mut buf, &s.mem_used_frac);
            put_windowed(&mut buf, &s.flow_rate_mbps);
            buf.put_u32_le(s.users);
        }
        MonitorRecord::LatencyRow { node, stats } => {
            buf.put_u8(TAG_LATENCY_ROW);
            buf.put_u32_le(node.0);
            buf.put_u32_le(stats.len() as u32);
            for st in stats {
                buf.put_f64_le(st.instant);
                buf.put_f64_le(st.m1);
                buf.put_f64_le(st.m5);
            }
        }
        MonitorRecord::BandwidthRow {
            node,
            avail_bps,
            peak_bps,
        } => {
            buf.put_u8(TAG_BANDWIDTH_ROW);
            buf.put_u32_le(node.0);
            buf.put_u32_le(avail_bps.len() as u32);
            for &b in avail_bps {
                buf.put_f64_le(b);
            }
            debug_assert_eq!(avail_bps.len(), peak_bps.len());
            for &b in peak_bps {
                buf.put_f64_le(b);
            }
        }
        MonitorRecord::Heartbeat {
            role,
            incarnation,
            at,
        } => {
            buf.put_u8(TAG_HEARTBEAT);
            buf.put_u32_le(role.len() as u32);
            buf.put_slice(role.as_bytes());
            buf.put_u32_le(*incarnation);
            buf.put_u64_le(at.as_micros());
        }
        MonitorRecord::ShardNl {
            shard,
            epoch,
            taken_at,
            members,
            lat_s,
            avail_bps,
            peak_bps,
            probe_bytes,
        } => {
            buf.put_u8(TAG_SHARD_NL);
            buf.put_u32_le(*shard);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(taken_at.as_micros());
            buf.put_u32_le(members.len() as u32);
            for m in members {
                buf.put_u32_le(m.0);
            }
            let pairs = members.len() * members.len().saturating_sub(1) / 2;
            debug_assert_eq!(lat_s.len(), pairs);
            debug_assert_eq!(avail_bps.len(), pairs);
            debug_assert_eq!(peak_bps.len(), pairs);
            for &v in lat_s {
                buf.put_f64_le(v);
            }
            for &v in avail_bps {
                buf.put_f64_le(v);
            }
            for &v in peak_bps {
                buf.put_f64_le(v);
            }
            buf.put_u64_le(*probe_bytes);
        }
        MonitorRecord::InterEstimate {
            epoch,
            taken_at,
            num_switches,
            probes,
            probe_bytes,
            switches,
            direct,
        } => {
            buf.put_u8(TAG_INTER_ESTIMATE);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(taken_at.as_micros());
            buf.put_u32_le(*num_switches);
            buf.put_u64_le(*probes);
            buf.put_u64_le(*probe_bytes);
            buf.put_u32_le(switches.len() as u32);
            for s in switches {
                buf.put_u32_le(s.switch);
                buf.put_f64_le(s.lat_lo);
                buf.put_f64_le(s.lat);
                buf.put_f64_le(s.lat_hi);
                buf.put_f64_le(s.cbw_lo);
                buf.put_f64_le(s.cbw);
                buf.put_f64_le(s.cbw_hi);
                buf.put_f64_le(s.peak_bps);
            }
            buf.put_u32_le(direct.len() as u32);
            for d in direct {
                buf.put_u32_le(d.s);
                buf.put_u32_le(d.t);
                buf.put_f64_le(d.latency_s);
                buf.put_f64_le(d.avail_bps);
                buf.put_f64_le(d.peak_bps);
            }
        }
    }
    buf.freeze()
}

/// Decode a record from bytes.
pub fn decode(mut data: &[u8]) -> Result<MonitorRecord, CodecError> {
    let version = get_u8(&mut data)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = get_u8(&mut data)?;
    match tag {
        TAG_LIVEHOSTS => {
            let n = get_u32(&mut data)? as usize;
            let mut hosts = Vec::with_capacity(n);
            for _ in 0..n {
                hosts.push(NodeId(get_u32(&mut data)?));
            }
            Ok(MonitorRecord::Livehosts(hosts))
        }
        TAG_SAMPLE => {
            let node = NodeId(get_u32(&mut data)?);
            let taken_at = SimTime::from_micros(get_u64(&mut data)?);
            let spec = get_spec(&mut data)?;
            let cpu_load = get_windowed(&mut data)?;
            let cpu_util = get_windowed(&mut data)?;
            let mem_used_frac = get_windowed(&mut data)?;
            let flow_rate_mbps = get_windowed(&mut data)?;
            let users = get_u32(&mut data)?;
            Ok(MonitorRecord::Sample(NodeSample {
                node,
                taken_at,
                spec,
                cpu_load,
                cpu_util,
                mem_used_frac,
                flow_rate_mbps,
                users,
            }))
        }
        TAG_LATENCY_ROW => {
            let node = NodeId(get_u32(&mut data)?);
            let n = get_u32(&mut data)? as usize;
            let mut stats = Vec::with_capacity(n);
            for _ in 0..n {
                stats.push(LatencyStat {
                    instant: get_f64(&mut data)?,
                    m1: get_f64(&mut data)?,
                    m5: get_f64(&mut data)?,
                });
            }
            Ok(MonitorRecord::LatencyRow { node, stats })
        }
        TAG_BANDWIDTH_ROW => {
            let node = NodeId(get_u32(&mut data)?);
            let n = get_u32(&mut data)? as usize;
            let mut avail_bps = Vec::with_capacity(n);
            for _ in 0..n {
                avail_bps.push(get_f64(&mut data)?);
            }
            let mut peak_bps = Vec::with_capacity(n);
            for _ in 0..n {
                peak_bps.push(get_f64(&mut data)?);
            }
            Ok(MonitorRecord::BandwidthRow {
                node,
                avail_bps,
                peak_bps,
            })
        }
        TAG_HEARTBEAT => {
            let len = get_u32(&mut data)? as usize;
            if data.remaining() < len {
                return Err(CodecError::Truncated);
            }
            let role = std::str::from_utf8(&data[..len])
                .map_err(|_| CodecError::BadUtf8)?
                .to_string();
            data.advance(len);
            let incarnation = get_u32(&mut data)?;
            let at = SimTime::from_micros(get_u64(&mut data)?);
            Ok(MonitorRecord::Heartbeat {
                role,
                incarnation,
                at,
            })
        }
        TAG_SHARD_NL => {
            let shard = get_u32(&mut data)?;
            let epoch = get_u64(&mut data)?;
            let taken_at = SimTime::from_micros(get_u64(&mut data)?);
            let m = get_u32(&mut data)? as usize;
            let mut members = Vec::with_capacity(m);
            for _ in 0..m {
                members.push(NodeId(get_u32(&mut data)?));
            }
            let pairs = m * m.saturating_sub(1) / 2;
            let tri = |data: &mut &[u8]| -> Result<Vec<f64>, CodecError> {
                let mut v = Vec::with_capacity(pairs);
                for _ in 0..pairs {
                    v.push(get_f64(data)?);
                }
                Ok(v)
            };
            let lat_s = tri(&mut data)?;
            let avail_bps = tri(&mut data)?;
            let peak_bps = tri(&mut data)?;
            let probe_bytes = get_u64(&mut data)?;
            Ok(MonitorRecord::ShardNl {
                shard,
                epoch,
                taken_at,
                members,
                lat_s,
                avail_bps,
                peak_bps,
                probe_bytes,
            })
        }
        TAG_INTER_ESTIMATE => {
            let epoch = get_u64(&mut data)?;
            let taken_at = SimTime::from_micros(get_u64(&mut data)?);
            let num_switches = get_u32(&mut data)?;
            let probes = get_u64(&mut data)?;
            let probe_bytes = get_u64(&mut data)?;
            let ns = get_u32(&mut data)? as usize;
            let mut switches = Vec::with_capacity(ns);
            for _ in 0..ns {
                switches.push(SwitchBandRec {
                    switch: get_u32(&mut data)?,
                    lat_lo: get_f64(&mut data)?,
                    lat: get_f64(&mut data)?,
                    lat_hi: get_f64(&mut data)?,
                    cbw_lo: get_f64(&mut data)?,
                    cbw: get_f64(&mut data)?,
                    cbw_hi: get_f64(&mut data)?,
                    peak_bps: get_f64(&mut data)?,
                });
            }
            let nd = get_u32(&mut data)? as usize;
            let mut direct = Vec::with_capacity(nd);
            for _ in 0..nd {
                direct.push(DirectPairRec {
                    s: get_u32(&mut data)?,
                    t: get_u32(&mut data)?,
                    latency_s: get_f64(&mut data)?,
                    avail_bps: get_f64(&mut data)?,
                    peak_bps: get_f64(&mut data)?,
                });
            }
            Ok(MonitorRecord::InterEstimate {
                epoch,
                taken_at,
                num_switches,
                probes,
                probe_bytes,
                switches,
                direct,
            })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

fn put_spec(buf: &mut BytesMut, spec: &NodeSpec) {
    buf.put_u32_le(spec.hostname.len() as u32);
    buf.put_slice(spec.hostname.as_bytes());
    buf.put_u32_le(spec.cores);
    buf.put_f64_le(spec.freq_ghz);
    buf.put_f64_le(spec.total_mem_gb);
}

fn get_spec(data: &mut &[u8]) -> Result<NodeSpec, CodecError> {
    let len = get_u32(data)? as usize;
    if data.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let hostname = std::str::from_utf8(&data[..len])
        .map_err(|_| CodecError::BadUtf8)?
        .to_string();
    data.advance(len);
    Ok(NodeSpec {
        hostname,
        cores: get_u32(data)?,
        freq_ghz: get_f64(data)?,
        total_mem_gb: get_f64(data)?,
    })
}

fn put_windowed(buf: &mut BytesMut, w: &WindowedValue) {
    buf.put_f64_le(w.instant);
    buf.put_f64_le(w.m1);
    buf.put_f64_le(w.m5);
    buf.put_f64_le(w.m15);
}

fn get_windowed(data: &mut &[u8]) -> Result<WindowedValue, CodecError> {
    Ok(WindowedValue {
        instant: get_f64(data)?,
        m1: get_f64(data)?,
        m5: get_f64(data)?,
        m15: get_f64(data)?,
    })
}

fn get_u8(data: &mut &[u8]) -> Result<u8, CodecError> {
    if data.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u8())
}

fn get_u32(data: &mut &[u8]) -> Result<u32, CodecError> {
    if data.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn get_u64(data: &mut &[u8]) -> Result<u64, CodecError> {
    if data.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u64_le())
}

fn get_f64(data: &mut &[u8]) -> Result<f64, CodecError> {
    if data.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_f64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeSample {
        NodeSample {
            node: NodeId(7),
            taken_at: SimTime::from_secs(123),
            spec: NodeSpec {
                hostname: "csews8".into(),
                cores: 12,
                freq_ghz: 4.6,
                total_mem_gb: 16.0,
            },
            cpu_load: WindowedValue {
                instant: 0.5,
                m1: 0.4,
                m5: 0.3,
                m15: 0.2,
            },
            cpu_util: WindowedValue::constant(0.25),
            mem_used_frac: WindowedValue::constant(0.3),
            flow_rate_mbps: WindowedValue::constant(12.0),
            users: 3,
        }
    }

    #[test]
    fn livehosts_roundtrip() {
        let r = MonitorRecord::Livehosts(vec![NodeId(0), NodeId(5), NodeId(59)]);
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn sample_roundtrip() {
        let r = MonitorRecord::Sample(sample());
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn latency_row_roundtrip() {
        let r = MonitorRecord::LatencyRow {
            node: NodeId(2),
            stats: vec![LatencyStat::constant(0.0), LatencyStat::constant(1e-4)],
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn bandwidth_row_roundtrip() {
        let r = MonitorRecord::BandwidthRow {
            node: NodeId(2),
            avail_bps: vec![0.0, 9e8],
            peak_bps: vec![0.0, 1e9],
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn heartbeat_roundtrip() {
        let r = MonitorRecord::Heartbeat {
            role: "master".into(),
            incarnation: 4,
            at: SimTime::from_secs(99),
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn shard_nl_roundtrip() {
        let r = MonitorRecord::ShardNl {
            shard: 3,
            epoch: 12,
            taken_at: SimTime::from_secs(120),
            members: vec![NodeId(45), NodeId(46), NodeId(48)],
            lat_s: vec![1e-4, 2e-4, 3e-4],
            avail_bps: vec![8e8, 7e8, 6e8],
            peak_bps: vec![1e9, 1e9, 1e9],
            probe_bytes: 3 * (1 << 20),
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn inter_estimate_roundtrip() {
        let r = MonitorRecord::InterEstimate {
            epoch: 5,
            taken_at: SimTime::from_secs(300),
            num_switches: 21,
            probes: 70,
            probe_bytes: 70 * ((1 << 20) + 128),
            switches: vec![SwitchBandRec {
                switch: 1,
                lat_lo: 4e-4,
                lat: 5e-4,
                lat_hi: 6e-4,
                cbw_lo: 0.0,
                cbw: 1e6,
                cbw_hi: 2e6,
                peak_bps: 1e9,
            }],
            direct: vec![DirectPairRec {
                s: 1,
                t: 2,
                latency_s: 1e-3,
                avail_bps: 9e8,
                peak_bps: 1e9,
            }],
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn truncated_records_error() {
        let full = encode(&MonitorRecord::Sample(sample()));
        for cut in [0, 1, 2, 5, full.len() - 1] {
            assert!(
                matches!(decode(&full[..cut]), Err(CodecError::Truncated)),
                "cut {cut} did not fail as truncated"
            );
        }
    }

    #[test]
    fn bad_tag_and_version_detected() {
        assert_eq!(decode(&[9, 1]), Err(CodecError::BadVersion(9)));
        assert_eq!(decode(&[VERSION, 200]), Err(CodecError::BadTag(200)));
    }
}
