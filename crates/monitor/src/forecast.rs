//! Snapshot-level forecasting: project a monitoring snapshot forward.
//!
//! The paper's related work (§2) models its composite metric on the Network
//! Weather Service, whose point is that *forecasts*, not raw last samples,
//! should guide scheduling. [`ForecastEngine`] watches the stream of
//! [`ClusterSnapshot`]s the monitor produces, learns per-node and per-pair
//! predictors (the adaptive ensemble from `nlrm_sim_core::forecast`), and
//! can project a snapshot's dynamic attributes to "what they will look like
//! when the job actually starts" — the antidote to the staleness the
//! `ablation_staleness` experiment quantifies.

use crate::sample::LatencyStat;
use crate::snapshot::ClusterSnapshot;
use nlrm_sim_core::forecast::{AdaptiveEnsemble, Ewma, Forecaster};
use nlrm_sim_core::time::SimTime;
use nlrm_topology::NodeId;

/// Forecasters for one node's dynamic attributes.
struct NodeForecasts {
    cpu_load: AdaptiveEnsemble,
    cpu_util: AdaptiveEnsemble,
    flow_rate: AdaptiveEnsemble,
    mem_used: AdaptiveEnsemble,
}

impl NodeForecasts {
    fn new() -> Self {
        NodeForecasts {
            cpu_load: AdaptiveEnsemble::standard(),
            cpu_util: AdaptiveEnsemble::standard(),
            flow_rate: AdaptiveEnsemble::standard(),
            mem_used: AdaptiveEnsemble::standard(),
        }
    }
}

/// Learns from observed snapshots; projects new ones.
///
/// Node attributes get the full adaptive ensemble; the O(n²) pairwise
/// bandwidth/latency series get lightweight EWMAs to keep the engine cheap
/// on large clusters.
pub struct ForecastEngine {
    n: usize,
    nodes: Vec<NodeForecasts>,
    bandwidth: Vec<Ewma>,
    latency: Vec<Ewma>,
    snapshots_seen: usize,
    last_time: Option<SimTime>,
}

impl ForecastEngine {
    /// An engine for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        ForecastEngine {
            n,
            nodes: (0..n).map(|_| NodeForecasts::new()).collect(),
            bandwidth: (0..n * n).map(|_| Ewma::new(0.3)).collect(),
            latency: (0..n * n).map(|_| Ewma::new(0.3)).collect(),
            snapshots_seen: 0,
            last_time: None,
        }
    }

    /// Number of snapshots consumed.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    fn pair_idx(&self, u: NodeId, v: NodeId) -> usize {
        u.index().min(v.index()) * self.n + u.index().max(v.index())
    }

    /// Learn from one snapshot (call on every fresh snapshot, in time order).
    pub fn observe(&mut self, snap: &ClusterSnapshot) {
        if let Some(last) = self.last_time {
            if snap.taken_at <= last {
                return; // ignore replays / out-of-order snapshots
            }
        }
        self.last_time = Some(snap.taken_at);
        let t = snap.taken_at;
        for info in &snap.nodes {
            if !info.live {
                continue;
            }
            let f = &mut self.nodes[info.node.index()];
            f.cpu_load.observe(t, info.sample.cpu_load.instant);
            f.cpu_util.observe(t, info.sample.cpu_util.instant);
            f.flow_rate.observe(t, info.sample.flow_rate_mbps.instant);
            f.mem_used.observe(t, info.sample.mem_used_frac.instant);
        }
        let usable = snap.usable_nodes();
        for (i, &u) in usable.iter().enumerate() {
            for &v in &usable[i + 1..] {
                let idx = self.pair_idx(u, v);
                let bw = snap.bandwidth_bps.get(u, v);
                if bw.is_finite() {
                    self.bandwidth[idx].observe(t, bw);
                }
                let lat = snap.latency.get(u, v).instant;
                if lat.is_finite() {
                    self.latency[idx].observe(t, lat);
                }
            }
        }
        self.snapshots_seen += 1;
    }

    /// Produce a copy of `snap` with every dynamic attribute replaced by the
    /// engine's prediction (where one exists). Static attributes, liveness
    /// and long-window means are passed through; the projected values land
    /// in the `instant` and 1-minute slots the allocator actually reads.
    pub fn project(&self, snap: &ClusterSnapshot) -> ClusterSnapshot {
        let mut out = snap.clone();
        for info in &mut out.nodes {
            let f = &self.nodes[info.node.index()];
            if let Some(p) = f.cpu_load.predict() {
                info.sample.cpu_load.instant = p.max(0.0);
                info.sample.cpu_load.m1 = p.max(0.0);
            }
            if let Some(p) = f.cpu_util.predict() {
                let p = p.clamp(0.0, 1.0);
                info.sample.cpu_util.instant = p;
                info.sample.cpu_util.m1 = p;
            }
            if let Some(p) = f.flow_rate.predict() {
                info.sample.flow_rate_mbps.instant = p.max(0.0);
                info.sample.flow_rate_mbps.m1 = p.max(0.0);
            }
            if let Some(p) = f.mem_used.predict() {
                let p = p.clamp(0.0, 1.0);
                info.sample.mem_used_frac.instant = p;
                info.sample.mem_used_frac.m1 = p;
            }
        }
        let usable = snap.usable_nodes();
        for (i, &u) in usable.iter().enumerate() {
            for &v in &usable[i + 1..] {
                let idx = self.pair_idx(u, v);
                if let Some(p) = self.bandwidth[idx].predict() {
                    let peak = out.peak_bandwidth_bps.get(u, v);
                    let p = if peak.is_finite() {
                        p.clamp(0.0, peak)
                    } else {
                        p.max(0.0)
                    };
                    out.bandwidth_bps.set(u, v, p);
                }
                if let Some(p) = self.latency[idx].predict() {
                    let p = p.max(0.0);
                    let st = out.latency.get(u, v);
                    out.latency.set(
                        u,
                        v,
                        LatencyStat {
                            instant: p,
                            m1: p,
                            m5: st.m5,
                        },
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::MonitorRuntime;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_sim_core::time::Duration;

    fn history(n: usize, seed: u64, snaps: usize) -> (Vec<ClusterSnapshot>, ClusterSnapshot) {
        let mut cluster = small_cluster(n, seed);
        let mut rt = MonitorRuntime::new(&cluster);
        let mut out = Vec::new();
        rt.run_until(&mut cluster, SimTime::from_secs(400));
        for _ in 0..snaps {
            let target = cluster.now() + Duration::from_secs(60);
            rt.run_until(&mut cluster, target);
            out.push(rt.snapshot(cluster.now()).unwrap());
        }
        // truth one minute after the last observed snapshot
        let target = cluster.now() + Duration::from_secs(60);
        rt.run_until(&mut cluster, target);
        let future = rt.snapshot(cluster.now()).unwrap();
        (out, future)
    }

    #[test]
    fn projection_replaces_dynamic_attributes() {
        let (history, _) = history(4, 3, 10);
        let mut engine = ForecastEngine::new(4);
        for s in &history {
            engine.observe(s);
        }
        assert_eq!(engine.snapshots_seen(), 10);
        let last = history.last().unwrap();
        let proj = engine.project(last);
        assert_eq!(proj.nodes.len(), last.nodes.len());
        // statics untouched
        for (a, b) in proj.nodes.iter().zip(&last.nodes) {
            assert_eq!(a.sample.spec, b.sample.spec);
            assert_eq!(a.live, b.live);
        }
        // values stay in valid ranges
        for info in &proj.nodes {
            assert!(info.sample.cpu_load.instant >= 0.0);
            assert!((0.0..=1.0).contains(&info.sample.cpu_util.instant));
        }
        for (u, v, bw) in proj.bandwidth_bps.pairs() {
            let peak = proj.peak_bandwidth_bps.get(u, v);
            if peak.is_finite() {
                assert!(bw <= peak + 1.0, "bw({u},{v}) above peak");
            }
        }
    }

    #[test]
    fn forecast_beats_stale_snapshot_on_average() {
        // Walk-forward one-step-ahead comparison (the NWS claim is about
        // average prediction error, so evaluate every step after a short
        // warm-up rather than a single terminal point whose error is
        // dominated by whether a load spike happened to land there):
        // projecting the previous snapshot forward must not lose to
        // carrying it unchanged, on total CPU-load error.
        let mut stale_err = 0.0;
        let mut forecast_err = 0.0;
        for seed in [3u64, 5, 7, 11, 13] {
            let (history, future) = history(6, seed, 40);
            let mut engine = ForecastEngine::new(6);
            let warmup = 10;
            let mut prev: Option<&ClusterSnapshot> = None;
            for (i, snap) in history.iter().chain(std::iter::once(&future)).enumerate() {
                if let Some(last) = prev {
                    if i > warmup {
                        let proj = engine.project(last);
                        for info in &snap.nodes {
                            let truth = info.sample.cpu_load.instant;
                            let stale = last.info(info.node).unwrap().sample.cpu_load.instant;
                            let pred = proj.info(info.node).unwrap().sample.cpu_load.instant;
                            stale_err += (stale - truth).abs();
                            forecast_err += (pred - truth).abs();
                        }
                    }
                }
                engine.observe(snap);
                prev = Some(snap);
            }
        }
        assert!(
            forecast_err <= stale_err * 1.05,
            "forecast {forecast_err:.2} should not lose to stale {stale_err:.2}"
        );
    }

    #[test]
    fn out_of_order_snapshots_are_ignored() {
        let (history, _) = history(4, 9, 5);
        let mut engine = ForecastEngine::new(4);
        for s in &history {
            engine.observe(s);
        }
        let before = engine.snapshots_seen();
        engine.observe(&history[0]); // replay: stale timestamp
        assert_eq!(engine.snapshots_seen(), before);
    }
}
