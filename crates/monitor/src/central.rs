//! The Central Monitor: master/slave supervision of the daemons (§4).
//!
//! "Central Monitor launches, supervises and removes … daemons. If any
//! daemon crashes, it is relaunched. We keep one master and one slave
//! instance to avoid single point of failure. If the master process dies,
//! the slave will detect that the process is dead, become new master and
//! launch a new slave on another node. If slave dies, master launches a new
//! slave. If both stop, all other daemons still continue to perform their
//! job but won't be restarted on failure."

use crate::codec::{decode, encode, MonitorRecord};
use crate::daemons::{BandwidthD, DaemonConfig, LatencyD, LivehostsD, NodeStateD};
use crate::store::{paths, SharedStore};
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;

/// All supervised daemons, owned together so the central monitor can sweep
/// them uniformly.
#[derive(Debug, Clone)]
pub struct DaemonSet {
    /// The ping-sweep daemon.
    pub livehosts: LivehostsD,
    /// One state sampler per node.
    pub nodestate: Vec<NodeStateD>,
    /// The latency prober.
    pub latency: LatencyD,
    /// The bandwidth prober.
    pub bandwidth: BandwidthD,
}

impl DaemonSet {
    /// Fresh daemons for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        DaemonSet {
            livehosts: LivehostsD::new(),
            nodestate: (0..n).map(|i| NodeStateD::new(NodeId(i as u32))).collect(),
            latency: LatencyD::new(n),
            bandwidth: BandwidthD::new(n),
        }
    }

    /// Count of currently dead daemons.
    pub fn dead_count(&self) -> usize {
        let mut dead = 0;
        if !self.livehosts.is_alive() {
            dead += 1;
        }
        dead += self.nodestate.iter().filter(|d| !d.is_alive()).count();
        if !self.latency.is_alive() {
            dead += 1;
        }
        if !self.bandwidth.is_alive() {
            dead += 1;
        }
        dead
    }

    fn relaunch_dead(&mut self) -> usize {
        let mut relaunched = 0;
        if !self.livehosts.is_alive() {
            self.livehosts.relaunch();
            relaunched += 1;
        }
        for d in &mut self.nodestate {
            if !d.is_alive() {
                d.relaunch();
                relaunched += 1;
            }
        }
        if !self.latency.is_alive() {
            self.latency.relaunch();
            relaunched += 1;
        }
        if !self.bandwidth.is_alive() {
            self.bandwidth.relaunch();
            relaunched += 1;
        }
        relaunched
    }
}

/// One central-monitor instance (master or slave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    /// Node the instance runs on.
    pub host: NodeId,
    /// Whether the process is running.
    pub alive: bool,
    /// Incarnation number, bumped every (re)spawn.
    pub incarnation: u32,
}

/// The redundant central monitor.
#[derive(Debug, Clone)]
pub struct CentralMonitor {
    master: Instance,
    slave: Instance,
    /// A heartbeat older than this is treated as a dead master.
    pub heartbeat_timeout: Duration,
    /// Total daemon relaunches performed.
    pub relaunch_count: usize,
    /// Total master failovers performed.
    pub failover_count: usize,
    next_incarnation: u32,
}

impl CentralMonitor {
    /// A master on `master_host` and slave on `slave_host`.
    pub fn new(master_host: NodeId, slave_host: NodeId, config: &DaemonConfig) -> Self {
        assert_ne!(master_host, slave_host, "master and slave must differ");
        CentralMonitor {
            master: Instance {
                host: master_host,
                alive: true,
                incarnation: 0,
            },
            slave: Instance {
                host: slave_host,
                alive: true,
                incarnation: 1,
            },
            // allow missing ~3 heartbeats before declaring death
            heartbeat_timeout: config.central_period.mul_f64(3.5),
            relaunch_count: 0,
            failover_count: 0,
            next_incarnation: 2,
        }
    }

    /// The current master instance.
    pub fn master(&self) -> Instance {
        self.master
    }

    /// The current slave instance.
    pub fn slave(&self) -> Instance {
        self.slave
    }

    /// Failure injection: kill the master process.
    pub fn kill_master(&mut self) {
        self.master.alive = false;
    }

    /// Failure injection: kill the slave process.
    pub fn kill_slave(&mut self) {
        self.slave.alive = false;
    }

    /// True when neither instance is running (no supervision, daemons
    /// continue but will not be relaunched).
    pub fn is_headless(&self) -> bool {
        !self.master.alive && !self.slave.alive
    }

    /// Pick a live node other than `exclude` to host a new instance.
    fn pick_host(cluster: &ClusterSim, exclude: NodeId) -> Option<NodeId> {
        cluster
            .topology()
            .node_ids()
            .find(|&n| n != exclude && cluster.is_up(n))
    }

    /// One supervision tick.
    pub fn tick(&mut self, cluster: &ClusterSim, store: &SharedStore, daemons: &mut DaemonSet) {
        let now = cluster.now();
        // instances die with their hosts
        if self.master.alive && !cluster.is_up(self.master.host) {
            self.master.alive = false;
        }
        if self.slave.alive && !cluster.is_up(self.slave.host) {
            self.slave.alive = false;
        }

        if self.master.alive {
            // master duties: heartbeat, supervise daemons, keep a slave alive
            store.put(
                paths::heartbeat("master"),
                now,
                encode(&MonitorRecord::Heartbeat {
                    role: "master".into(),
                    incarnation: self.master.incarnation,
                    at: now,
                }),
            );
            self.relaunch_count += daemons.relaunch_dead();
            if !self.slave.alive {
                if let Some(host) = Self::pick_host(cluster, self.master.host) {
                    self.slave = Instance {
                        host,
                        alive: true,
                        incarnation: self.next_incarnation,
                    };
                    self.next_incarnation += 1;
                }
            }
        } else if self.slave.alive {
            // slave duties: watch the master heartbeat; promote on staleness
            let master_stale = match store.get(&paths::heartbeat("master")) {
                None => true,
                Some(rec) => match decode(&rec.data) {
                    Ok(MonitorRecord::Heartbeat { at, .. }) => {
                        now.since(at) > self.heartbeat_timeout
                    }
                    _ => true,
                },
            };
            if master_stale {
                // promote self to master, then spawn a fresh slave
                self.failover_count += 1;
                self.master = self.slave;
                self.slave.alive = false;
                if let Some(host) = Self::pick_host(cluster, self.master.host) {
                    self.slave = Instance {
                        host,
                        alive: true,
                        incarnation: self.next_incarnation,
                    };
                    self.next_incarnation += 1;
                }
            }
        }
        // both dead: nothing happens — daemons run unsupervised (paper §4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;

    fn setup() -> (ClusterSim, SharedStore, DaemonSet, CentralMonitor) {
        let cluster = small_cluster(6, 3);
        let store = SharedStore::new();
        let daemons = DaemonSet::new(6);
        let cm = CentralMonitor::new(NodeId(0), NodeId(1), &DaemonConfig::default());
        (cluster, store, daemons, cm)
    }

    fn advance_and_tick(
        cluster: &mut ClusterSim,
        store: &SharedStore,
        daemons: &mut DaemonSet,
        cm: &mut CentralMonitor,
        ticks: usize,
    ) {
        for _ in 0..ticks {
            cluster.advance(Duration::from_secs(10));
            cm.tick(cluster, store, daemons);
        }
    }

    #[test]
    fn master_relaunches_dead_daemons() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        daemons.latency.kill();
        daemons.nodestate[2].kill();
        assert_eq!(daemons.dead_count(), 2);
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        assert_eq!(daemons.dead_count(), 0);
        assert_eq!(cm.relaunch_count, 2);
    }

    #[test]
    fn slave_promotes_after_master_death() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        // establish a heartbeat first
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        cm.kill_master();
        // within timeout: no failover yet
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 2);
        assert_eq!(cm.failover_count, 0);
        // past timeout (3.5 × 10 s): slave takes over
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 3);
        assert_eq!(cm.failover_count, 1);
        assert!(cm.master().alive);
        assert_eq!(cm.master().host, NodeId(1));
        // and a fresh slave was spawned elsewhere
        assert!(cm.slave().alive);
        assert_ne!(cm.slave().host, NodeId(1));
    }

    #[test]
    fn new_master_supervises_daemons() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        cm.kill_master();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 6);
        daemons.bandwidth.kill();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        assert!(daemons.bandwidth.is_alive());
    }

    #[test]
    fn master_respawns_dead_slave() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        let before = cm.slave().incarnation;
        cm.kill_slave();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        assert!(cm.slave().alive);
        assert!(cm.slave().incarnation > before);
    }

    #[test]
    fn headless_monitor_stops_relaunching() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        cm.kill_master();
        cm.kill_slave();
        assert!(cm.is_headless());
        daemons.latency.kill();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 10);
        // nobody relaunched it
        assert!(!daemons.latency.is_alive());
        assert_eq!(cm.relaunch_count, 0);
    }

    #[test]
    fn instance_dies_with_its_host() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        cluster.set_node_up(NodeId(0), false);
        // master host down → death detected, slave eventually promotes
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 6);
        assert_eq!(cm.failover_count, 1);
        assert_ne!(cm.master().host, NodeId(0));
    }
}
