//! The Central Monitor: master/slave supervision of the daemons (§4).
//!
//! "Central Monitor launches, supervises and removes … daemons. If any
//! daemon crashes, it is relaunched. We keep one master and one slave
//! instance to avoid single point of failure. If the master process dies,
//! the slave will detect that the process is dead, become new master and
//! launch a new slave on another node. If slave dies, master launches a new
//! slave. If both stop, all other daemons still continue to perform their
//! job but won't be restarted on failure."

use crate::codec::{decode, encode, MonitorRecord};
use crate::daemons::{BandwidthD, DaemonConfig, DaemonKind, LatencyD, LivehostsD, NodeStateD};
use crate::store::{paths, SharedStore};
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::collections::BTreeMap;

/// All supervised daemons, owned together so the central monitor can sweep
/// them uniformly.
#[derive(Debug, Clone)]
pub struct DaemonSet {
    /// The ping-sweep daemon.
    pub livehosts: LivehostsD,
    /// One state sampler per node.
    pub nodestate: Vec<NodeStateD>,
    /// The latency prober.
    pub latency: LatencyD,
    /// The bandwidth prober.
    pub bandwidth: BandwidthD,
}

impl DaemonSet {
    /// Fresh daemons for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        DaemonSet {
            livehosts: LivehostsD::new(),
            nodestate: (0..n).map(|i| NodeStateD::new(NodeId(i as u32))).collect(),
            latency: LatencyD::new(n),
            bandwidth: BandwidthD::new(n),
        }
    }

    /// Count of currently dead daemons.
    pub fn dead_count(&self) -> usize {
        let mut dead = 0;
        if !self.livehosts.is_alive() {
            dead += 1;
        }
        dead += self.nodestate.iter().filter(|d| !d.is_alive()).count();
        if !self.latency.is_alive() {
            dead += 1;
        }
        if !self.bandwidth.is_alive() {
            dead += 1;
        }
        dead
    }

    /// Whether the identified daemon process exists.
    pub fn is_alive(&self, kind: DaemonKind) -> bool {
        match kind {
            DaemonKind::Livehosts => self.livehosts.is_alive(),
            DaemonKind::NodeState(node) => self.nodestate[node.index()].is_alive(),
            DaemonKind::Latency => self.latency.is_alive(),
            DaemonKind::Bandwidth => self.bandwidth.is_alive(),
        }
    }

    /// Failure injection: kill the identified daemon.
    pub fn kill(&mut self, kind: DaemonKind) {
        match kind {
            DaemonKind::Livehosts => self.livehosts.kill(),
            DaemonKind::NodeState(node) => self.nodestate[node.index()].kill(),
            DaemonKind::Latency => self.latency.kill(),
            DaemonKind::Bandwidth => self.bandwidth.kill(),
        }
    }

    /// Failure injection: hang the identified daemon until `t`.
    pub fn hang_until(&mut self, kind: DaemonKind, t: SimTime) {
        match kind {
            DaemonKind::Livehosts => self.livehosts.hang_until(t),
            DaemonKind::NodeState(node) => self.nodestate[node.index()].hang_until(t),
            DaemonKind::Latency => self.latency.hang_until(t),
            DaemonKind::Bandwidth => self.bandwidth.hang_until(t),
        }
    }

    /// Failure injection: withhold the identified daemon's writes until `t`.
    pub fn mute_until(&mut self, kind: DaemonKind, t: SimTime) {
        match kind {
            DaemonKind::Livehosts => self.livehosts.mute_until(t),
            DaemonKind::NodeState(node) => self.nodestate[node.index()].mute_until(t),
            DaemonKind::Latency => self.latency.mute_until(t),
            DaemonKind::Bandwidth => self.bandwidth.mute_until(t),
        }
    }

    /// Relaunch the identified daemon (fresh process, state lost).
    pub fn relaunch(&mut self, kind: DaemonKind) {
        match kind {
            DaemonKind::Livehosts => self.livehosts.relaunch(),
            DaemonKind::NodeState(node) => self.nodestate[node.index()].relaunch(),
            DaemonKind::Latency => self.latency.relaunch(),
            DaemonKind::Bandwidth => self.bandwidth.relaunch(),
        }
    }
}

/// One central-monitor instance (master or slave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    /// Node the instance runs on.
    pub host: NodeId,
    /// Whether the process is running.
    pub alive: bool,
    /// Incarnation number, bumped every (re)spawn.
    pub incarnation: u32,
}

/// Crash-loop backoff state for one supervised daemon.
#[derive(Debug, Clone, Copy)]
struct Backoff {
    /// Relaunches issued without an observed healthy publication since.
    strikes: u32,
    /// No further relaunch before this time.
    next_allowed: SimTime,
}

/// The redundant central monitor.
#[derive(Debug, Clone)]
pub struct CentralMonitor {
    master: Instance,
    slave: Instance,
    /// A heartbeat older than this is treated as a dead master.
    pub heartbeat_timeout: Duration,
    /// Total daemon relaunches performed.
    pub relaunch_count: usize,
    /// Total master failovers performed.
    pub failover_count: usize,
    next_incarnation: u32,
    /// Daemon periods, used to judge record staleness during supervision.
    config: DaemonConfig,
    /// Per-daemon relaunch backoff; entries are dropped once the daemon is
    /// observed healthy again.
    backoff: BTreeMap<DaemonKind, Backoff>,
}

impl CentralMonitor {
    /// A daemon whose newest store record is older than
    /// `period × STALE_FACTOR` is treated as hung (alive but wedged) and
    /// restarted, mirroring the missed-heartbeat rule for the master.
    pub const STALE_FACTOR: f64 = 3.5;

    /// Relaunch delays stop doubling after this many strikes
    /// (`central_period × 2^MAX_BACKOFF_EXP` is the cap).
    const MAX_BACKOFF_EXP: u32 = 5;

    /// A master on `master_host` and slave on `slave_host`.
    pub fn new(master_host: NodeId, slave_host: NodeId, config: &DaemonConfig) -> Self {
        assert_ne!(master_host, slave_host, "master and slave must differ");
        CentralMonitor {
            master: Instance {
                host: master_host,
                alive: true,
                incarnation: 0,
            },
            slave: Instance {
                host: slave_host,
                alive: true,
                incarnation: 1,
            },
            // allow missing ~3 heartbeats before declaring death
            heartbeat_timeout: config.central_period.mul_f64(3.5),
            relaunch_count: 0,
            failover_count: 0,
            next_incarnation: 2,
            config: *config,
            backoff: BTreeMap::new(),
        }
    }

    /// The current master instance.
    pub fn master(&self) -> Instance {
        self.master
    }

    /// The current slave instance.
    pub fn slave(&self) -> Instance {
        self.slave
    }

    /// Failure injection: kill the master process.
    pub fn kill_master(&mut self) {
        self.master.alive = false;
    }

    /// Failure injection: kill the slave process.
    pub fn kill_slave(&mut self) {
        self.slave.alive = false;
    }

    /// True when neither instance is running (no supervision, daemons
    /// continue but will not be relaunched).
    pub fn is_headless(&self) -> bool {
        !self.master.alive && !self.slave.alive
    }

    /// Pick a live node other than `exclude` to host a new instance.
    fn pick_host(cluster: &ClusterSim, exclude: NodeId) -> Option<NodeId> {
        cluster
            .topology()
            .node_ids()
            .find(|&n| n != exclude && cluster.is_up(n))
    }

    /// One supervision tick.
    pub fn tick(&mut self, cluster: &ClusterSim, store: &SharedStore, daemons: &mut DaemonSet) {
        let now = cluster.now();
        // instances die with their hosts
        if self.master.alive && !cluster.is_up(self.master.host) {
            self.master.alive = false;
        }
        if self.slave.alive && !cluster.is_up(self.slave.host) {
            self.slave.alive = false;
        }

        if self.master.alive {
            // master duties: heartbeat, supervise daemons, keep a slave alive
            let hb = encode(&MonitorRecord::Heartbeat {
                role: "master".into(),
                incarnation: self.master.incarnation,
                at: now,
            });
            nlrm_obs::ctx::add("monitor_heartbeat_bytes_total", hb.len() as u64);
            store.put(paths::heartbeat("master"), now, hb);
            self.supervise(now, cluster, store, daemons);
            if !self.slave.alive {
                if let Some(host) = Self::pick_host(cluster, self.master.host) {
                    self.slave = Instance {
                        host,
                        alive: true,
                        incarnation: self.next_incarnation,
                    };
                    self.next_incarnation += 1;
                    nlrm_obs::ctx::emit(
                        nlrm_obs::Severity::Info,
                        now,
                        nlrm_obs::EventKind::SlaveSpawned { host },
                    );
                }
            }
        } else if self.slave.alive {
            // slave duties: watch the master heartbeat; promote on staleness
            let master_stale = match store.get(&paths::heartbeat("master")) {
                None => true,
                Some(rec) => {
                    nlrm_obs::ctx::add("monitor_heartbeat_bytes_total", rec.data.len() as u64);
                    match decode(&rec.data) {
                        Ok(MonitorRecord::Heartbeat { at, .. }) => {
                            now.since(at) > self.heartbeat_timeout
                        }
                        _ => true,
                    }
                }
            };
            if master_stale {
                // promote self to master, then spawn a fresh slave
                self.failover_count += 1;
                let dead_master = self.master.host;
                self.master = self.slave;
                self.slave.alive = false;
                nlrm_obs::ctx::emit(
                    nlrm_obs::Severity::Warn,
                    now,
                    nlrm_obs::EventKind::Failover {
                        from: dead_master,
                        to: self.master.host,
                    },
                );
                nlrm_obs::ctx::inc("monitor_failover_total");
                if let Some(host) = Self::pick_host(cluster, self.master.host) {
                    self.slave = Instance {
                        host,
                        alive: true,
                        incarnation: self.next_incarnation,
                    };
                    self.next_incarnation += 1;
                    nlrm_obs::ctx::emit(
                        nlrm_obs::Severity::Info,
                        now,
                        nlrm_obs::EventKind::SlaveSpawned { host },
                    );
                }
            }
        }
        // both dead: nothing happens — daemons run unsupervised (paper §4)
    }

    /// Age of the newest record under `prefix`, if any record exists.
    fn freshest_age(store: &SharedStore, prefix: &str, now: SimTime) -> Option<Duration> {
        store
            .list_prefix(prefix)
            .iter()
            .filter_map(|k| store.get(k))
            .map(|r| r.written_at)
            .max()
            .map(|t| now.since(t))
    }

    /// One supervision sweep over every daemon (master duty).
    ///
    /// A daemon is restarted when it is dead, or when it is nominally alive
    /// but its newest store record has gone stale (hung process, wedged
    /// write path). Restarts are rate-limited by an exponential backoff so a
    /// crash-looping daemon cannot be relaunched every heartbeat; the
    /// backoff entry is cleared as soon as the daemon is seen publishing
    /// again. A daemon that has never published is given the benefit of the
    /// doubt (slow starter) unless it is outright dead, and samplers on
    /// down nodes are expected to be silent.
    fn supervise(
        &mut self,
        now: SimTime,
        cluster: &ClusterSim,
        store: &SharedStore,
        daemons: &mut DaemonSet,
    ) {
        let cfg = self.config;
        let mut watched: Vec<(DaemonKind, Option<Duration>, Duration)> = vec![
            (
                DaemonKind::Livehosts,
                store.get(paths::LIVEHOSTS).map(|r| now.since(r.written_at)),
                cfg.livehosts_period,
            ),
            (
                DaemonKind::Latency,
                Self::freshest_age(store, "latency/", now),
                cfg.latency_period,
            ),
            (
                DaemonKind::Bandwidth,
                Self::freshest_age(store, "bandwidth/", now),
                cfg.bandwidth_period,
            ),
        ];
        for d in &daemons.nodestate {
            if !cluster.is_up(d.node()) {
                continue; // a down node's sampler is expected to be silent
            }
            watched.push((
                DaemonKind::NodeState(d.node()),
                store
                    .get(&paths::node_state(d.node()))
                    .map(|r| now.since(r.written_at)),
                cfg.nodestate_period,
            ));
        }

        for (kind, age, period) in watched {
            let alive = daemons.is_alive(kind);
            let stale_bound = period.mul_f64(Self::STALE_FACTOR);
            let hung = alive && matches!(age, Some(a) if a > stale_bound);
            if alive && !hung {
                self.backoff.remove(&kind);
                continue;
            }
            let entry = self.backoff.entry(kind).or_insert(Backoff {
                strikes: 0,
                next_allowed: SimTime::ZERO,
            });
            if now < entry.next_allowed {
                nlrm_obs::ctx::emit(
                    nlrm_obs::Severity::Debug,
                    now,
                    nlrm_obs::EventKind::RelaunchSuppressed {
                        daemon: kind.to_string(),
                        until: entry.next_allowed,
                    },
                );
                nlrm_obs::ctx::inc("monitor_relaunch_suppressed_total");
                continue;
            }
            daemons.relaunch(kind);
            self.relaunch_count += 1;
            let exp = entry.strikes.min(Self::MAX_BACKOFF_EXP);
            let delay = cfg.central_period.mul_f64(f64::from(1u32 << exp));
            // the fresh process needs a full staleness window to prove
            // itself before it can be judged (and restarted) again
            entry.next_allowed = now + delay.max(stale_bound);
            entry.strikes += 1;
            nlrm_obs::ctx::emit(
                nlrm_obs::Severity::Warn,
                now,
                nlrm_obs::EventKind::DaemonRelaunched {
                    daemon: kind.to_string(),
                    strikes: entry.strikes,
                },
            );
            nlrm_obs::ctx::inc("monitor_relaunch_total");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;

    fn setup() -> (ClusterSim, SharedStore, DaemonSet, CentralMonitor) {
        let cluster = small_cluster(6, 3);
        let store = SharedStore::new();
        let daemons = DaemonSet::new(6);
        let cm = CentralMonitor::new(NodeId(0), NodeId(1), &DaemonConfig::default());
        (cluster, store, daemons, cm)
    }

    fn advance_and_tick(
        cluster: &mut ClusterSim,
        store: &SharedStore,
        daemons: &mut DaemonSet,
        cm: &mut CentralMonitor,
        ticks: usize,
    ) {
        for _ in 0..ticks {
            cluster.advance(Duration::from_secs(10));
            cm.tick(cluster, store, daemons);
        }
    }

    #[test]
    fn master_relaunches_dead_daemons() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        daemons.latency.kill();
        daemons.nodestate[2].kill();
        assert_eq!(daemons.dead_count(), 2);
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        assert_eq!(daemons.dead_count(), 0);
        assert_eq!(cm.relaunch_count, 2);
    }

    #[test]
    fn slave_promotes_after_master_death() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        // establish a heartbeat first
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        cm.kill_master();
        // within timeout: no failover yet
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 2);
        assert_eq!(cm.failover_count, 0);
        // past timeout (3.5 × 10 s): slave takes over
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 3);
        assert_eq!(cm.failover_count, 1);
        assert!(cm.master().alive);
        assert_eq!(cm.master().host, NodeId(1));
        // and a fresh slave was spawned elsewhere
        assert!(cm.slave().alive);
        assert_ne!(cm.slave().host, NodeId(1));
    }

    #[test]
    fn new_master_supervises_daemons() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        cm.kill_master();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 6);
        daemons.bandwidth.kill();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        assert!(daemons.bandwidth.is_alive());
    }

    #[test]
    fn master_respawns_dead_slave() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        let before = cm.slave().incarnation;
        cm.kill_slave();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        assert!(cm.slave().alive);
        assert!(cm.slave().incarnation > before);
    }

    #[test]
    fn headless_monitor_stops_relaunching() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        cm.kill_master();
        cm.kill_slave();
        assert!(cm.is_headless());
        daemons.latency.kill();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 10);
        // nobody relaunched it
        assert!(!daemons.latency.is_alive());
        assert_eq!(cm.relaunch_count, 0);
    }

    #[test]
    fn hung_daemon_is_detected_and_restarted() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        // establish a fresh livehosts record: healthy, no relaunch
        cluster.advance(Duration::from_secs(10));
        daemons.livehosts.tick(&cluster, &store);
        cm.tick(&cluster, &store, &mut daemons);
        assert_eq!(cm.relaunch_count, 0);
        // the daemon wedges; its record ages past period × STALE_FACTOR
        daemons
            .livehosts
            .hang_until(cluster.now() + Duration::from_hours(1));
        for _ in 0..6 {
            cluster.advance(Duration::from_secs(10));
            daemons.livehosts.tick(&cluster, &store); // no-op while hung
            cm.tick(&cluster, &store, &mut daemons);
        }
        assert!(cm.relaunch_count >= 1, "hung daemon never restarted");
        // the relaunch cleared the hang: next tick publishes again
        cluster.advance(Duration::from_secs(10));
        daemons.livehosts.tick(&cluster, &store);
        assert_eq!(
            store.get(paths::LIVEHOSTS).unwrap().written_at,
            cluster.now()
        );
    }

    #[test]
    fn relaunch_backoff_escalates_for_crash_looping_daemon() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        // publish once so staleness is measurable
        cluster.advance(Duration::from_secs(10));
        daemons.livehosts.tick(&cluster, &store);
        // from here the daemon dies again immediately after every relaunch
        let mut relaunch_ticks = Vec::new();
        for i in 0..40 {
            daemons.livehosts.kill();
            cluster.advance(Duration::from_secs(10));
            let before = cm.relaunch_count;
            cm.tick(&cluster, &store, &mut daemons);
            if cm.relaunch_count > before {
                relaunch_ticks.push(i as i64);
            }
        }
        assert!(relaunch_ticks.len() >= 3, "backoff starved relaunches");
        assert!(
            relaunch_ticks.len() < 20,
            "no backoff: relaunched on most ticks ({relaunch_ticks:?})"
        );
        let gaps: Vec<i64> = relaunch_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.last().unwrap() > gaps.first().unwrap(),
            "relaunch gaps should grow: {gaps:?}"
        );
    }

    #[test]
    fn healthy_publication_resets_backoff() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        cluster.advance(Duration::from_secs(10));
        daemons.livehosts.tick(&cluster, &store);
        // two crash/relaunch rounds build up strikes
        for _ in 0..10 {
            daemons.livehosts.kill();
            cluster.advance(Duration::from_secs(10));
            cm.tick(&cluster, &store, &mut daemons);
        }
        let after_loop = cm.relaunch_count;
        assert!(after_loop >= 2);
        // daemon recovers and publishes: backoff entry cleared
        daemons.livehosts.relaunch();
        cluster.advance(Duration::from_secs(10));
        daemons.livehosts.tick(&cluster, &store);
        cm.tick(&cluster, &store, &mut daemons);
        // next crash is relaunched on the very next heartbeat again
        daemons.livehosts.kill();
        cluster.advance(Duration::from_secs(10));
        cm.tick(&cluster, &store, &mut daemons);
        assert_eq!(cm.relaunch_count, after_loop + 1);
    }

    #[test]
    fn instance_dies_with_its_host() {
        let (mut cluster, store, mut daemons, mut cm) = setup();
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 1);
        cluster.set_node_up(NodeId(0), false);
        // master host down → death detected, slave eventually promotes
        advance_and_tick(&mut cluster, &store, &mut daemons, &mut cm, 6);
        assert_eq!(cm.failover_count, 1);
        assert_ne!(cm.master().host, NodeId(0));
    }
}
