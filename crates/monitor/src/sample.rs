//! Records published by the monitoring daemons.

use nlrm_cluster::NodeSpec;
use nlrm_sim_core::time::SimTime;
use nlrm_sim_core::window::WindowedValue;
use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One node's published state: what `NodeStateD` writes to the store.
///
/// Mirrors the paper's Table 1: static attributes (core count, frequency,
/// total memory) plus instantaneous and 1/5/15-minute running means of the
/// dynamic attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSample {
    /// Which node this record describes.
    pub node: NodeId,
    /// When the record was taken (virtual time).
    pub taken_at: SimTime,
    /// Static hardware attributes (queried once, republished with each sample).
    pub spec: NodeSpec,
    /// CPU load (runnable processes): instant + running means.
    pub cpu_load: WindowedValue,
    /// CPU utilization fraction: instant + running means.
    pub cpu_util: WindowedValue,
    /// Used-memory fraction: instant + running means.
    pub mem_used_frac: WindowedValue,
    /// NIC data-flow rate in Mbit/s: instant + running means.
    pub flow_rate_mbps: WindowedValue,
    /// Logged-in users.
    pub users: u32,
}

impl NodeSample {
    /// Available memory in GB for a given window selector.
    pub fn available_mem_gb(&self, used_frac: f64) -> f64 {
        self.spec.total_mem_gb * (1.0 - used_frac.clamp(0.0, 1.0))
    }
}

/// A published latency statistic for one node pair. The paper maintains
/// "the average of last 1 and 5 minutes of P2P latency" alongside the
/// instantaneous measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStat {
    /// Latest measured one-way latency, seconds.
    pub instant: f64,
    /// 1-minute mean.
    pub m1: f64,
    /// 5-minute mean.
    pub m5: f64,
}

impl LatencyStat {
    /// A stat whose windows all equal `v` (first measurement).
    pub fn constant(v: f64) -> Self {
        LatencyStat {
            instant: v,
            m1: v,
            m5: v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_memory_complements_used() {
        let s = NodeSample {
            node: NodeId(0),
            taken_at: SimTime::ZERO,
            spec: NodeSpec {
                hostname: "x".into(),
                cores: 8,
                freq_ghz: 3.0,
                total_mem_gb: 16.0,
            },
            cpu_load: WindowedValue::constant(0.0),
            cpu_util: WindowedValue::constant(0.0),
            mem_used_frac: WindowedValue::constant(0.25),
            flow_rate_mbps: WindowedValue::constant(0.0),
            users: 0,
        };
        assert!((s.available_mem_gb(0.25) - 12.0).abs() < 1e-12);
        // clamped
        assert_eq!(s.available_mem_gb(2.0), 0.0);
    }
}
