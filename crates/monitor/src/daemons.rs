//! The four monitoring daemons (§4 of the paper).
//!
//! * [`LivehostsD`] pings every node and publishes the set that answered.
//! * [`NodeStateD`] runs *on each node*, samples the local OS counters every
//!   few seconds and publishes instantaneous values plus 1/5/15-minute
//!   running means. If its node is down, the daemon is down.
//! * [`LatencyD`] and [`BandwidthD`] sweep all node pairs with the
//!   round-robin tournament schedule (disjoint pairs per round) and publish
//!   per-node measurement rows.
//!
//! Daemons can be killed, hung or delayed (failure injection, see
//! [`FaultAction`](nlrm_sim_core::fault::FaultAction)) and are relaunched by
//! the [`CentralMonitor`](crate::central::CentralMonitor).

use crate::codec::{encode, MonitorRecord};
use crate::matrix::SymMatrix;
use crate::rounds::round_robin_rounds;
use crate::sample::{LatencyStat, NodeSample};
use crate::store::{paths, SharedStore};
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_sim_core::window::{MultiWindowMean, WindowedMean};
use nlrm_topology::NodeId;

/// Wire cost modeled for one latency probe (a small ping-pong packet pair).
pub const LATENCY_PROBE_BYTES: u64 = 128;

/// Wire cost modeled for one bandwidth probe (a 1 MiB bulk transfer).
pub const BANDWIDTH_PROBE_BYTES: u64 = 1 << 20;

/// The analytic wire cost of one full central monitoring cycle (one
/// latency + one bandwidth tournament plus the published rows) at `v`
/// live nodes. This is exactly what [`LatencyD::tick`] and
/// [`BandwidthD::tick`] spend per sweep — validated against the live
/// counters in a regression test — and lets `monitor_sweep` price the
/// central topology at 100k nodes without allocating `O(V²)` matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentralCycleCost {
    /// Pair measurements: `2 · v(v−1)/2` (both tournaments).
    pub pairs: u64,
    /// Probe traffic for both tournaments, bytes.
    pub probe_bytes: u64,
    /// Store-publish traffic for all `2v` rows, bytes.
    pub publish_bytes: u64,
}

impl CentralCycleCost {
    /// Probe + publish bytes.
    pub fn total_bytes(&self) -> u64 {
        self.probe_bytes + self.publish_bytes
    }
}

/// Compute [`CentralCycleCost`] for a `v`-node cluster. Row sizes come
/// from encoding one representative row of each kind, so the numbers stay
/// exact if the codec changes.
pub fn central_cycle_cost(v: usize) -> CentralCycleCost {
    let pairs_per_sweep = (v as u64) * (v as u64).saturating_sub(1) / 2;
    // representative rows: one v-entry latency row, one v-entry bandwidth
    // row; every published row has exactly this size
    let lat_row = encode(&MonitorRecord::LatencyRow {
        node: NodeId(0),
        stats: vec![LatencyStat::constant(0.0); v],
    })
    .len() as u64;
    let bw_row = encode(&MonitorRecord::BandwidthRow {
        node: NodeId(0),
        avail_bps: vec![0.0; v],
        peak_bps: vec![0.0; v],
    })
    .len() as u64;
    CentralCycleCost {
        pairs: 2 * pairs_per_sweep,
        probe_bytes: pairs_per_sweep * (LATENCY_PROBE_BYTES + BANDWIDTH_PROBE_BYTES),
        publish_bytes: (v as u64) * (lat_row + bw_row),
    }
}

/// Identifies one supervised daemon (failure injection, supervision state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DaemonKind {
    /// The livehosts ping daemon.
    Livehosts,
    /// The state sampler on one node.
    NodeState(NodeId),
    /// The latency prober.
    Latency,
    /// The bandwidth prober.
    Bandwidth,
}

impl std::fmt::Display for DaemonKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonKind::Livehosts => f.write_str("livehosts"),
            DaemonKind::NodeState(node) => write!(f, "nodestate({node})"),
            DaemonKind::Latency => f.write_str("latency"),
            DaemonKind::Bandwidth => f.write_str("bandwidth"),
        }
    }
}

/// Process-level health shared by every daemon: alive/dead plus the two
/// degraded modes of [`FaultAction`](nlrm_sim_core::fault::FaultAction) —
/// a *hang* (process stalls entirely, resumes at a deadline) and a *delay*
/// (process keeps working but its store writes are withheld, so observers
/// see stale records).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Health {
    dead: bool,
    hung_until: Option<SimTime>,
    muted_until: Option<SimTime>,
}

impl Health {
    /// Whether the process exists at all. A hung or muted daemon is still
    /// alive — only [`Health::kill`] makes this false.
    pub fn is_alive(&self) -> bool {
        !self.dead
    }

    /// Failure injection: the process dies.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Fresh process: alive, not hung, not muted.
    pub fn relaunch(&mut self) {
        *self = Health::default();
    }

    /// Failure injection: stall all work until `t`.
    pub fn hang_until(&mut self, t: SimTime) {
        self.hung_until = Some(t);
    }

    /// Failure injection: withhold store writes until `t`.
    pub fn mute_until(&mut self, t: SimTime) {
        self.muted_until = Some(t);
    }

    /// Can the process do any work at `now`? Clears an expired hang.
    pub fn can_run(&mut self, now: SimTime) -> bool {
        if self.dead {
            return false;
        }
        if let Some(t) = self.hung_until {
            if now < t {
                return false;
            }
            self.hung_until = None;
        }
        true
    }

    /// May the process publish at `now`? Clears an expired mute. (A hang
    /// already blocks everything in [`Health::can_run`]; this only gates
    /// the write path.)
    pub fn can_publish(&mut self, now: SimTime) -> bool {
        if let Some(t) = self.muted_until {
            if now < t {
                return false;
            }
            self.muted_until = None;
        }
        true
    }
}

/// Sampling/probing periods for all daemons. Defaults follow the paper:
/// node state every 5 s (the paper says 3–10 s), latency sweeps every
/// minute, bandwidth sweeps every 5 minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Ping-sweep period of `LivehostsD`.
    pub livehosts_period: Duration,
    /// Sampling period of `NodeStateD`.
    pub nodestate_period: Duration,
    /// Sweep period of `LatencyD`.
    pub latency_period: Duration,
    /// Sweep period of `BandwidthD`.
    pub bandwidth_period: Duration,
    /// Heartbeat period of the central monitor.
    pub central_period: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            livehosts_period: Duration::from_secs(10),
            nodestate_period: Duration::from_secs(5),
            latency_period: Duration::from_secs(60),
            bandwidth_period: Duration::from_secs(300),
            central_period: Duration::from_secs(10),
        }
    }
}

/// Ping-sweep daemon maintaining the livehosts list.
#[derive(Debug, Clone, Default)]
pub struct LivehostsD {
    health: Health,
}

impl LivehostsD {
    /// A running daemon.
    pub fn new() -> Self {
        LivehostsD::default()
    }

    /// Whether the daemon is running.
    pub fn is_alive(&self) -> bool {
        self.health.is_alive()
    }

    /// Failure injection: stop the daemon.
    pub fn kill(&mut self) {
        self.health.kill();
    }

    /// Failure injection: stall until `t`.
    pub fn hang_until(&mut self, t: SimTime) {
        self.health.hang_until(t);
    }

    /// Failure injection: withhold publications until `t`.
    pub fn mute_until(&mut self, t: SimTime) {
        self.health.mute_until(t);
    }

    /// Restart after a crash (idempotent, clears hang/mute).
    pub fn relaunch(&mut self) {
        self.health.relaunch();
    }

    /// Ping every node; publish those that answered.
    pub fn tick(&mut self, cluster: &ClusterSim, store: &SharedStore) {
        let now = cluster.now();
        if !self.health.can_run(now) {
            return;
        }
        let hosts: Vec<NodeId> = cluster
            .topology()
            .node_ids()
            .filter(|&n| cluster.is_up(n))
            .collect();
        if self.health.can_publish(now) {
            store.put(
                paths::LIVEHOSTS,
                now,
                encode(&MonitorRecord::Livehosts(hosts)),
            );
        }
    }
}

/// Per-node state sampler with 1/5/15-minute windows.
#[derive(Debug, Clone)]
pub struct NodeStateD {
    node: NodeId,
    health: Health,
    cpu_load: MultiWindowMean,
    cpu_util: MultiWindowMean,
    mem_used: MultiWindowMean,
    flow_rate: MultiWindowMean,
}

impl NodeStateD {
    /// A running sampler for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeStateD {
            node,
            health: Health::default(),
            cpu_load: MultiWindowMean::new(),
            cpu_util: MultiWindowMean::new(),
            mem_used: MultiWindowMean::new(),
            flow_rate: MultiWindowMean::new(),
        }
    }

    /// The node this daemon runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the daemon is running.
    pub fn is_alive(&self) -> bool {
        self.health.is_alive()
    }

    /// Failure injection: stop the daemon.
    pub fn kill(&mut self) {
        self.health.kill();
    }

    /// Failure injection: stall until `t`.
    pub fn hang_until(&mut self, t: SimTime) {
        self.health.hang_until(t);
    }

    /// Failure injection: withhold publications until `t` (sampling and the
    /// history windows keep advancing — only the store write is withheld).
    pub fn mute_until(&mut self, t: SimTime) {
        self.health.mute_until(t);
    }

    /// Restart after a crash. History windows restart empty, exactly as a
    /// freshly exec'd daemon's would.
    pub fn relaunch(&mut self) {
        *self = NodeStateD::new(self.node);
    }

    /// Sample the local node and publish. A daemon on a down node cannot run.
    pub fn tick(&mut self, cluster: &ClusterSim, store: &SharedStore) {
        let t = cluster.now();
        if !self.health.can_run(t) || !cluster.is_up(self.node) {
            return;
        }
        let state = cluster.node_state(self.node);
        self.cpu_load.push(t, state.cpu_load);
        self.cpu_util.push(t, state.cpu_util);
        self.mem_used.push(t, state.mem_used_frac);
        self.flow_rate.push(t, state.flow_rate_mbps);
        let sample = NodeSample {
            node: self.node,
            taken_at: t,
            spec: cluster.spec(self.node).clone(),
            cpu_load: self.cpu_load.value().expect("just pushed"),
            cpu_util: self.cpu_util.value().expect("just pushed"),
            mem_used_frac: self.mem_used.value().expect("just pushed"),
            flow_rate_mbps: self.flow_rate.value().expect("just pushed"),
            users: state.users,
        };
        if self.health.can_publish(t) {
            store.put(
                paths::node_state(self.node),
                t,
                encode(&MonitorRecord::Sample(sample)),
            );
        }
    }
}

/// Pairwise latency prober with 1/5-minute windows per pair.
#[derive(Debug, Clone)]
pub struct LatencyD {
    health: Health,
    n: usize,
    /// Per-pair (upper-triangle) windows: (1-min, 5-min).
    windows: Vec<(WindowedMean, WindowedMean)>,
    latest: SymMatrix<f64>,
}

impl LatencyD {
    /// A prober for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        LatencyD {
            health: Health::default(),
            n,
            windows: (0..n * n)
                .map(|_| {
                    (
                        WindowedMean::new(Duration::from_mins(1)),
                        WindowedMean::new(Duration::from_mins(5)),
                    )
                })
                .collect(),
            latest: SymMatrix::new(n, f64::NAN),
        }
    }

    /// Whether the daemon is running.
    pub fn is_alive(&self) -> bool {
        self.health.is_alive()
    }

    /// Failure injection: stop the daemon.
    pub fn kill(&mut self) {
        self.health.kill();
    }

    /// Failure injection: stall until `t`.
    pub fn hang_until(&mut self, t: SimTime) {
        self.health.hang_until(t);
    }

    /// Failure injection: withhold row publications until `t` (probing and
    /// windows keep advancing).
    pub fn mute_until(&mut self, t: SimTime) {
        self.health.mute_until(t);
    }

    /// Restart after a crash; windows restart empty.
    pub fn relaunch(&mut self) {
        *self = LatencyD::new(self.n);
    }

    /// One full tournament sweep over all live node pairs, then publish a
    /// row per live node.
    pub fn tick(&mut self, cluster: &mut ClusterSim, store: &SharedStore) {
        let t = cluster.now();
        if !self.health.can_run(t) {
            return;
        }
        let live: Vec<NodeId> = cluster
            .topology()
            .node_ids()
            .filter(|&n| cluster.is_up(n))
            .collect();
        let recording = nlrm_obs::ctx::recording();
        let mut fold = nlrm_obs::DigestFold::new();
        let mut pairs = 0u64;
        for round in round_robin_rounds(live.len()) {
            for (a, b) in round {
                let (u, v) = (live[a], live[b]);
                let lat = cluster.measure_latency_s(u, v);
                if recording {
                    fold.u64(u.index() as u64).u64(v.index() as u64).f64(lat);
                }
                self.latest.set(u, v, lat);
                let idx = u.index() * self.n + v.index();
                self.windows[idx].0.push(t, lat);
                self.windows[idx].1.push(t, lat);
                let mirror = v.index() * self.n + u.index();
                self.windows[mirror].0.push(t, lat);
                self.windows[mirror].1.push(t, lat);
                pairs += 1;
            }
        }
        if recording {
            nlrm_obs::ctx::record_stream(t, "probe:latency", pairs, fold.value());
        }
        // the O(V²) measurement traffic happens whether or not the rows can
        // be published (a mute only withholds the store writes)
        let mut round_bytes = pairs * LATENCY_PROBE_BYTES;
        nlrm_obs::ctx::add("monitor_pair_measurements_total", pairs);
        nlrm_obs::ctx::add("monitor_probe_bytes_total", round_bytes);
        if !self.health.can_publish(t) {
            nlrm_obs::ctx::set_gauge("monitor_round_pairs", pairs as f64);
            nlrm_obs::ctx::set_gauge("monitor_round_bytes", round_bytes as f64);
            return;
        }
        for &u in &live {
            let stats: Vec<LatencyStat> = (0..self.n)
                .map(|v| {
                    if v == u.index() {
                        return LatencyStat::constant(0.0);
                    }
                    let idx = u.index() * self.n + v;
                    let instant = self.latest.get(u, NodeId(v as u32));
                    if instant.is_nan() {
                        // never measured (peer down since start)
                        return LatencyStat::constant(f64::INFINITY);
                    }
                    LatencyStat {
                        instant,
                        m1: self.windows[idx].0.mean().unwrap_or(instant),
                        m5: self.windows[idx].1.mean().unwrap_or(instant),
                    }
                })
                .collect();
            let data = encode(&MonitorRecord::LatencyRow { node: u, stats });
            round_bytes += data.len() as u64;
            store.put(paths::latency_row(u), t, data);
        }
        nlrm_obs::ctx::set_gauge("monitor_round_pairs", pairs as f64);
        nlrm_obs::ctx::set_gauge("monitor_round_bytes", round_bytes as f64);
    }
}

/// Pairwise bandwidth prober. The paper uses the *instantaneous* effective
/// bandwidth for allocation, so no windows are kept here.
#[derive(Debug, Clone)]
pub struct BandwidthD {
    health: Health,
    n: usize,
    latest: SymMatrix<f64>,
    peak: SymMatrix<f64>,
}

impl BandwidthD {
    /// A prober for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        BandwidthD {
            health: Health::default(),
            n,
            latest: SymMatrix::new(n, f64::NAN),
            peak: SymMatrix::new(n, f64::NAN),
        }
    }

    /// Whether the daemon is running.
    pub fn is_alive(&self) -> bool {
        self.health.is_alive()
    }

    /// Failure injection: stop the daemon.
    pub fn kill(&mut self) {
        self.health.kill();
    }

    /// Failure injection: stall until `t`.
    pub fn hang_until(&mut self, t: SimTime) {
        self.health.hang_until(t);
    }

    /// Failure injection: withhold row publications until `t`.
    pub fn mute_until(&mut self, t: SimTime) {
        self.health.mute_until(t);
    }

    /// Restart after a crash.
    pub fn relaunch(&mut self) {
        *self = BandwidthD::new(self.n);
    }

    /// One tournament sweep; publish a row per live node.
    pub fn tick(&mut self, cluster: &mut ClusterSim, store: &SharedStore) {
        let t = cluster.now();
        if !self.health.can_run(t) {
            return;
        }
        let live: Vec<NodeId> = cluster
            .topology()
            .node_ids()
            .filter(|&n| cluster.is_up(n))
            .collect();
        let recording = nlrm_obs::ctx::recording();
        let mut fold = nlrm_obs::DigestFold::new();
        let mut pairs = 0u64;
        for round in round_robin_rounds(live.len()) {
            for (a, b) in round {
                let (u, v) = (live[a], live[b]);
                let bw = cluster.measure_bandwidth_bps(u, v);
                let peak = cluster.peak_bandwidth_bps(u, v);
                if recording {
                    fold.u64(u.index() as u64)
                        .u64(v.index() as u64)
                        .f64(bw)
                        .f64(peak);
                }
                self.latest.set(u, v, bw);
                self.peak.set(u, v, peak);
                pairs += 1;
            }
        }
        if recording {
            nlrm_obs::ctx::record_stream(t, "probe:bandwidth", pairs, fold.value());
        }
        let mut round_bytes = pairs * BANDWIDTH_PROBE_BYTES;
        nlrm_obs::ctx::add("monitor_pair_measurements_total", pairs);
        nlrm_obs::ctx::add("monitor_probe_bytes_total", round_bytes);
        if !self.health.can_publish(t) {
            nlrm_obs::ctx::set_gauge("monitor_round_pairs", pairs as f64);
            nlrm_obs::ctx::set_gauge("monitor_round_bytes", round_bytes as f64);
            return;
        }
        for &u in &live {
            let mut avail = vec![0.0; self.n];
            let mut peak = vec![0.0; self.n];
            for v in 0..self.n {
                if v == u.index() {
                    avail[v] = f64::INFINITY;
                    peak[v] = f64::INFINITY;
                    continue;
                }
                let b = self.latest.get(u, NodeId(v as u32));
                // unmeasured peers report 0 available bandwidth (worst case)
                avail[v] = if b.is_nan() { 0.0 } else { b };
                let p = self.peak.get(u, NodeId(v as u32));
                peak[v] = if p.is_nan() { 0.0 } else { p };
            }
            let data = encode(&MonitorRecord::BandwidthRow {
                node: u,
                avail_bps: avail,
                peak_bps: peak,
            });
            round_bytes += data.len() as u64;
            store.put(paths::bandwidth_row(u), t, data);
        }
        nlrm_obs::ctx::set_gauge("monitor_round_pairs", pairs as f64);
        nlrm_obs::ctx::set_gauge("monitor_round_bytes", round_bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_sim_core::time::SimTime;

    #[test]
    fn livehosts_excludes_down_nodes() {
        let mut cluster = small_cluster(4, 7);
        cluster.set_node_up(NodeId(2), false);
        let store = SharedStore::new();
        LivehostsD::new().tick(&cluster, &store);
        let rec = decode(&store.get(paths::LIVEHOSTS).unwrap().data).unwrap();
        match rec {
            MonitorRecord::Livehosts(hosts) => {
                assert_eq!(hosts, vec![NodeId(0), NodeId(1), NodeId(3)]);
            }
            other => panic!("wrong record {other:?}"),
        }
    }

    #[test]
    fn nodestate_publishes_windows() {
        let mut cluster = small_cluster(2, 7);
        let store = SharedStore::new();
        let mut d = NodeStateD::new(NodeId(0));
        for _ in 0..20 {
            cluster.advance(Duration::from_secs(5));
            d.tick(&cluster, &store);
        }
        let rec = decode(&store.get(&paths::node_state(NodeId(0))).unwrap().data).unwrap();
        match rec {
            MonitorRecord::Sample(s) => {
                assert_eq!(s.node, NodeId(0));
                assert!(s.cpu_util.m1 >= 0.0);
                assert_eq!(s.spec.cores, 8);
                assert_eq!(s.taken_at, cluster.now());
            }
            other => panic!("wrong record {other:?}"),
        }
    }

    #[test]
    fn dead_daemon_publishes_nothing() {
        let mut cluster = small_cluster(2, 7);
        cluster.advance(Duration::from_secs(5));
        let store = SharedStore::new();
        let mut d = NodeStateD::new(NodeId(0));
        d.kill();
        d.tick(&cluster, &store);
        assert!(store.is_empty());
        d.relaunch();
        d.tick(&cluster, &store);
        assert!(!store.is_empty());
    }

    #[test]
    fn daemon_on_down_node_is_silent() {
        let mut cluster = small_cluster(2, 7);
        cluster.set_node_up(NodeId(0), false);
        cluster.advance(Duration::from_secs(5));
        cluster.set_node_up(NodeId(0), false); // state refresh keeps up flag
        let store = SharedStore::new();
        let mut d = NodeStateD::new(NodeId(0));
        d.tick(&cluster, &store);
        assert!(store.is_empty());
    }

    #[test]
    fn latency_sweep_covers_all_live_pairs() {
        let mut cluster = small_cluster(5, 7);
        cluster.advance(Duration::from_secs(5));
        let store = SharedStore::new();
        let mut d = LatencyD::new(5);
        d.tick(&mut cluster, &store);
        for u in 0..5u32 {
            let rec = decode(&store.get(&paths::latency_row(NodeId(u))).unwrap().data).unwrap();
            match rec {
                MonitorRecord::LatencyRow { node, stats } => {
                    assert_eq!(node, NodeId(u));
                    assert_eq!(stats.len(), 5);
                    assert_eq!(stats[u as usize].instant, 0.0);
                    for (v, st) in stats.iter().enumerate() {
                        if v != u as usize {
                            assert!(st.instant > 0.0 && st.instant.is_finite());
                        }
                    }
                }
                other => panic!("wrong record {other:?}"),
            }
        }
    }

    #[test]
    fn bandwidth_rows_have_peak_and_available() {
        let mut cluster = small_cluster(4, 7);
        cluster.advance(Duration::from_secs(5));
        let store = SharedStore::new();
        let mut d = BandwidthD::new(4);
        d.tick(&mut cluster, &store);
        let rec = decode(&store.get(&paths::bandwidth_row(NodeId(1))).unwrap().data).unwrap();
        match rec {
            MonitorRecord::BandwidthRow {
                avail_bps,
                peak_bps,
                ..
            } => {
                for v in 0..4 {
                    if v == 1 {
                        assert!(avail_bps[v].is_infinite());
                    } else {
                        assert!(avail_bps[v] > 0.0);
                        assert!(avail_bps[v] <= peak_bps[v] + 1.0);
                        assert_eq!(peak_bps[v], 1e9);
                    }
                }
            }
            other => panic!("wrong record {other:?}"),
        }
    }

    #[test]
    fn down_peer_reports_zero_bandwidth() {
        let mut cluster = small_cluster(3, 7);
        cluster.set_node_up(NodeId(2), false);
        cluster.advance(Duration::from_secs(5));
        cluster.set_node_up(NodeId(2), false);
        let store = SharedStore::new();
        let mut d = BandwidthD::new(3);
        d.tick(&mut cluster, &store);
        let rec = decode(&store.get(&paths::bandwidth_row(NodeId(0))).unwrap().data).unwrap();
        match rec {
            MonitorRecord::BandwidthRow { avail_bps, .. } => {
                assert_eq!(avail_bps[2], 0.0);
                assert!(avail_bps[1] > 0.0);
            }
            other => panic!("wrong record {other:?}"),
        }
        let _ = SimTime::ZERO;
    }

    #[test]
    fn hung_daemon_is_alive_but_silent_until_deadline() {
        let mut cluster = small_cluster(2, 7);
        let store = SharedStore::new();
        let mut d = NodeStateD::new(NodeId(0));
        cluster.advance(Duration::from_secs(5));
        d.hang_until(cluster.now() + Duration::from_secs(30));
        d.tick(&cluster, &store);
        assert!(store.is_empty());
        assert!(d.is_alive(), "a hang is not a crash");
        cluster.advance(Duration::from_secs(30));
        d.tick(&cluster, &store);
        assert!(!store.is_empty(), "hang expired, work resumes");
    }

    #[test]
    fn muted_daemon_leaves_stale_records_then_resumes() {
        let mut cluster = small_cluster(3, 7);
        let store = SharedStore::new();
        let mut d = LivehostsD::new();
        cluster.advance(Duration::from_secs(10));
        d.tick(&cluster, &store);
        let first = store.get(paths::LIVEHOSTS).unwrap().written_at;
        d.mute_until(cluster.now() + Duration::from_secs(60));
        cluster.advance(Duration::from_secs(10));
        d.tick(&cluster, &store);
        // observers keep seeing the pre-mute record
        assert_eq!(store.get(paths::LIVEHOSTS).unwrap().written_at, first);
        cluster.advance(Duration::from_secs(60));
        d.tick(&cluster, &store);
        assert!(store.get(paths::LIVEHOSTS).unwrap().written_at > first);
    }

    #[test]
    fn sweep_records_exactly_v_choose_2_pair_measurements() {
        // the O(V²) wall: a V-node round is exactly V·(V−1)/2 pairs
        for v in [2usize, 5, 8, 13] {
            let obs = nlrm_obs::Obs::new();
            let _g = nlrm_obs::install(&obs);
            let mut cluster = small_cluster(v, 7);
            cluster.advance(Duration::from_secs(5));
            let store = SharedStore::new();
            LatencyD::new(v).tick(&mut cluster, &store);
            let expect = (v * (v - 1) / 2) as u64;
            assert_eq!(
                obs.metrics.counter_value("monitor_pair_measurements_total"),
                expect,
                "latency sweep over {v} nodes"
            );
            assert_eq!(
                obs.metrics.gauge_value("monitor_round_pairs"),
                expect as f64
            );
            BandwidthD::new(v).tick(&mut cluster, &store);
            assert_eq!(
                obs.metrics.counter_value("monitor_pair_measurements_total"),
                2 * expect,
                "bandwidth sweep over {v} nodes"
            );
            // a sweep's bytes include both probe traffic and published rows
            assert!(
                obs.metrics.gauge_value("monitor_round_bytes")
                    >= (expect * BANDWIDTH_PROBE_BYTES) as f64
            );
        }
    }

    #[test]
    fn central_cycle_cost_matches_live_counters() {
        for v in [3usize, 6, 10] {
            let obs = nlrm_obs::Obs::new();
            let _g = nlrm_obs::install(&obs);
            let mut cluster = small_cluster(v, 7);
            cluster.advance(Duration::from_secs(5));
            let store = SharedStore::new();
            LatencyD::new(v).tick(&mut cluster, &store);
            BandwidthD::new(v).tick(&mut cluster, &store);
            let cost = central_cycle_cost(v);
            assert_eq!(
                obs.metrics.counter_value("monitor_pair_measurements_total"),
                cost.pairs,
                "pair count at v={v}"
            );
            assert_eq!(
                obs.metrics.counter_value("monitor_probe_bytes_total"),
                cost.probe_bytes,
                "probe bytes at v={v}"
            );
            let published: u64 = store
                .list_prefix("latency/")
                .iter()
                .chain(store.list_prefix("bandwidth/").iter())
                .map(|p| store.get(p).unwrap().data.len() as u64)
                .sum();
            assert_eq!(published, cost.publish_bytes, "publish bytes at v={v}");
        }
    }

    #[test]
    fn muted_sweep_still_counts_measurement_traffic() {
        let obs = nlrm_obs::Obs::new();
        let _g = nlrm_obs::install(&obs);
        let mut cluster = small_cluster(4, 7);
        cluster.advance(Duration::from_secs(5));
        let store = SharedStore::new();
        let mut d = LatencyD::new(4);
        d.mute_until(cluster.now() + Duration::from_secs(600));
        d.tick(&mut cluster, &store);
        assert!(store.is_empty(), "muted daemon publishes nothing");
        assert_eq!(
            obs.metrics.counter_value("monitor_pair_measurements_total"),
            6
        );
        // bytes are probe-only: no rows were written
        assert_eq!(
            obs.metrics.gauge_value("monitor_round_bytes"),
            (6 * LATENCY_PROBE_BYTES) as f64
        );
    }

    #[test]
    fn relaunch_clears_hang_and_mute() {
        let mut cluster = small_cluster(2, 7);
        let store = SharedStore::new();
        let mut d = NodeStateD::new(NodeId(0));
        cluster.advance(Duration::from_secs(5));
        d.hang_until(cluster.now() + Duration::from_secs(3600));
        d.mute_until(cluster.now() + Duration::from_secs(3600));
        d.relaunch();
        d.tick(&cluster, &store);
        assert!(!store.is_empty(), "relaunched process starts fresh");
    }
}
