//! The virtual-time monitoring runtime.
//!
//! Schedules daemon ticks on a deterministic event queue and drives a
//! [`ClusterSim`] forward between ticks. This is the monitoring stack the
//! experiments use: fast (48 hours of cluster time in milliseconds) and
//! perfectly reproducible.

use crate::central::{CentralMonitor, DaemonSet};
use crate::daemons::DaemonConfig;
use crate::snapshot::{ClusterSnapshot, SnapshotError};
use crate::store::SharedStore;
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::event::EventQueue;
use nlrm_sim_core::time::SimTime;
use nlrm_topology::NodeId;

/// Which daemon a scheduled tick belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tick {
    Livehosts,
    NodeState,
    Latency,
    Bandwidth,
    Central,
}

/// Daemon failure-injection targets (tests, ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonKind {
    /// The livehosts ping daemon.
    Livehosts,
    /// The state sampler on one node.
    NodeState(NodeId),
    /// The latency prober.
    Latency,
    /// The bandwidth prober.
    Bandwidth,
}

/// The full monitoring stack bound to one cluster, run in virtual time.
#[derive(Debug, Clone)]
pub struct MonitorRuntime {
    config: DaemonConfig,
    store: SharedStore,
    daemons: DaemonSet,
    central: CentralMonitor,
    queue: EventQueue<Tick>,
    n: usize,
}

impl MonitorRuntime {
    /// Build a runtime for `cluster` with default periods. The central
    /// monitor's master runs on node 0 and slave on node 1.
    pub fn new(cluster: &ClusterSim) -> Self {
        Self::with_config(cluster, DaemonConfig::default())
    }

    /// Build with custom daemon periods.
    pub fn with_config(cluster: &ClusterSim, config: DaemonConfig) -> Self {
        let n = cluster.num_nodes();
        assert!(n >= 2, "monitoring needs at least two nodes");
        let mut queue = EventQueue::new();
        let t0 = cluster.now();
        // First ticks fire one period in, so the cluster has state to report.
        queue.push(t0 + config.nodestate_period, Tick::NodeState);
        queue.push(t0 + config.livehosts_period, Tick::Livehosts);
        queue.push(t0 + config.latency_period, Tick::Latency);
        queue.push(t0 + config.bandwidth_period, Tick::Bandwidth);
        queue.push(t0 + config.central_period, Tick::Central);
        MonitorRuntime {
            config,
            store: SharedStore::new(),
            daemons: DaemonSet::new(n),
            central: CentralMonitor::new(NodeId(0), NodeId(1), &config),
            queue,
            n,
        }
    }

    /// The shared store (what the allocator reads).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The daemon periods in force.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The central monitor (failover state, counters).
    pub fn central(&self) -> &CentralMonitor {
        &self.central
    }

    /// Mutable central monitor (failure injection).
    pub fn central_mut(&mut self) -> &mut CentralMonitor {
        &mut self.central
    }

    /// Kill a daemon (failure injection). It stays dead until the central
    /// monitor's next supervision pass relaunches it.
    pub fn kill_daemon(&mut self, kind: DaemonKind) {
        match kind {
            DaemonKind::Livehosts => self.daemons.livehosts.kill(),
            DaemonKind::NodeState(node) => self.daemons.nodestate[node.index()].kill(),
            DaemonKind::Latency => self.daemons.latency.kill(),
            DaemonKind::Bandwidth => self.daemons.bandwidth.kill(),
        }
    }

    /// Number of currently dead daemons.
    pub fn dead_daemons(&self) -> usize {
        self.daemons.dead_count()
    }

    /// Run monitoring (and the cluster) forward to `target` virtual time.
    pub fn run_until(&mut self, cluster: &mut ClusterSim, target: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > target {
                break;
            }
            let (t, tick) = self.queue.pop().expect("peeked");
            cluster.advance_to(t);
            match tick {
                Tick::Livehosts => {
                    self.daemons.livehosts.tick(cluster, &self.store);
                    self.queue.push(t + self.config.livehosts_period, tick);
                }
                Tick::NodeState => {
                    for d in &mut self.daemons.nodestate {
                        d.tick(cluster, &self.store);
                    }
                    self.queue.push(t + self.config.nodestate_period, tick);
                }
                Tick::Latency => {
                    self.daemons.latency.tick(cluster, &self.store);
                    self.queue.push(t + self.config.latency_period, tick);
                }
                Tick::Bandwidth => {
                    self.daemons.bandwidth.tick(cluster, &self.store);
                    self.queue.push(t + self.config.bandwidth_period, tick);
                }
                Tick::Central => {
                    self.central.tick(cluster, &self.store, &mut self.daemons);
                    self.queue.push(t + self.config.central_period, tick);
                }
            }
        }
        cluster.advance_to(target);
    }

    /// Assemble the allocator's snapshot from the store.
    pub fn snapshot(&self, now: SimTime) -> Result<ClusterSnapshot, SnapshotError> {
        ClusterSnapshot::assemble(&self.store, self.n, now)
    }

    /// Convenience: warm the monitor for `warmup` then return a snapshot.
    pub fn warm_snapshot(
        &mut self,
        cluster: &mut ClusterSim,
        warmup: nlrm_sim_core::time::Duration,
    ) -> Result<ClusterSnapshot, SnapshotError> {
        let target = cluster.now() + warmup;
        self.run_until(cluster, target);
        self.snapshot(cluster.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_sim_core::time::Duration;

    #[test]
    fn runtime_produces_complete_snapshot() {
        let mut cluster = small_cluster(6, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        // bandwidth sweeps every 5 min: warm for 6 min
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        assert_eq!(snap.usable_nodes().len(), 6);
        for (_, _, bw) in snap.bandwidth_bps.pairs() {
            assert!(bw > 0.0);
        }
    }

    #[test]
    fn snapshot_reflects_node_failures() {
        let mut cluster = small_cluster(6, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(360));
        cluster.schedule_failure(SimTime::from_secs(400), NodeId(4));
        rt.run_until(&mut cluster, SimTime::from_secs(500));
        let snap = rt.snapshot(cluster.now()).unwrap();
        let usable = snap.usable_nodes();
        assert_eq!(usable.len(), 5);
        assert!(!usable.contains(&NodeId(4)));
    }

    #[test]
    fn killed_daemon_is_relaunched_by_central() {
        let mut cluster = small_cluster(4, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(60));
        rt.kill_daemon(DaemonKind::Bandwidth);
        assert_eq!(rt.dead_daemons(), 1);
        rt.run_until(&mut cluster, SimTime::from_secs(120));
        assert_eq!(rt.dead_daemons(), 0);
        assert!(rt.central().relaunch_count >= 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut cluster = small_cluster(5, 99);
            let mut rt = MonitorRuntime::new(&cluster);
            let snap = rt
                .warm_snapshot(&mut cluster, Duration::from_secs(400))
                .unwrap();
            snap.bandwidth_bps
                .pairs()
                .map(|(_, _, b)| b)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn state_samples_age_with_staleness() {
        let mut cluster = small_cluster(4, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(60));
        // stop monitoring but advance the cluster an hour
        cluster.advance(Duration::from_hours(1));
        let snap = rt.snapshot(cluster.now()).unwrap();
        assert!(snap.max_sample_age().unwrap() >= Duration::from_secs(3600));
    }
}
