//! The virtual-time monitoring runtime.
//!
//! Schedules daemon ticks on a deterministic event queue and drives a
//! [`ClusterSim`] forward between ticks. This is the monitoring stack the
//! experiments use: fast (48 hours of cluster time in milliseconds) and
//! perfectly reproducible.
//!
//! Fault injection: attach a [`FaultPlan`] over [`FaultTarget`]s with
//! [`MonitorRuntime::set_fault_plan`] and the runtime applies each
//! scheduled kill/hang/delay at its exact virtual time while running.

use crate::central::{CentralMonitor, DaemonSet};
use crate::daemons::DaemonConfig;
pub use crate::daemons::DaemonKind;
use crate::estimate::{InterEstimate, NlEstimator, PairProbe};
use crate::gossip::GossipNet;
use crate::shard::{ShardSummary, ShardSweeper};
use crate::snapshot::{ClusterSnapshot, SnapshotError};
use crate::store::{paths, SharedStore};
use nlrm_cluster::ClusterSim;
use nlrm_sim_core::event::EventQueue;
use nlrm_sim_core::fault::{FaultAction, FaultEvent, FaultPlan};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::tier::SwitchIndex;
use nlrm_topology::{NodeId, SwitchId};

/// Histogram bucket bounds (µs wall clock) for monitor tick latency.
const TICK_WALL_BOUNDS: &[f64] = &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0];

/// Which daemon a scheduled tick belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tick {
    Livehosts,
    NodeState,
    Latency,
    Bandwidth,
    Central,
    /// Sharded topology: intra-shard tournaments + inter-shard estimation.
    Shard,
    /// Sharded topology: one anti-entropy gossip round.
    Gossip,
    /// Drain due events from the attached fault plan.
    Fault,
}

/// What a [`FaultPlan`] entry can hit in the monitoring stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// One monitoring daemon.
    Daemon(DaemonKind),
    /// A whole node. `Kill` downs it permanently; `Hang`/`Delay` down it
    /// for the given duration, after which it recovers.
    Node(NodeId),
    /// The master central-monitor instance. Any action is a crash: the
    /// heartbeat protocol cannot tell a hung master from a dead one.
    Master,
    /// The slave central-monitor instance (same crash semantics).
    Slave,
}

/// A fault schedule against the monitoring stack.
pub type MonitorFaultPlan = FaultPlan<FaultTarget>;

/// Configuration for the sharded monitoring topology.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Node→shard assignment (usually `Topology::switch_index()`).
    pub index: SwitchIndex,
    /// How often each shard reruns its intra-shard tournament and the
    /// inter-shard estimator resamples.
    pub shard_period: Duration,
    /// How often the gossip layer runs one anti-entropy round.
    pub gossip_period: Duration,
    /// Gossip targets contacted per peer per round.
    pub fanout: usize,
    /// Seed for the deterministic gossip target selection.
    pub gossip_seed: u64,
}

impl ShardConfig {
    /// Defaults: sweep every 60 s (the central latency cadence), gossip
    /// every 10 s with fanout 2.
    pub fn new(index: SwitchIndex) -> ShardConfig {
        ShardConfig {
            index,
            shard_period: Duration::from_secs(60),
            gossip_period: Duration::from_secs(10),
            fanout: 2,
            gossip_seed: 0x5ea1_ab1e,
        }
    }
}

/// Which monitoring topology a [`MonitorRuntime`] runs.
#[derive(Debug, Clone)]
pub enum MonitorTopo {
    /// The paper's topology: central daemons probing all `O(V²)` pairs.
    Central,
    /// Sharded: intra-shard tournaments + sampled inter-shard estimation
    /// + gossip dissemination of shard aggregates.
    Sharded(ShardConfig),
}

/// Live state of the sharded topology.
#[derive(Debug, Clone)]
struct ShardedState {
    cfg: ShardConfig,
    sweeper: ShardSweeper,
    estimator: NlEstimator,
    gossip: GossipNet<ShardSummary>,
}

/// The full monitoring stack bound to one cluster, run in virtual time.
#[derive(Debug, Clone)]
pub struct MonitorRuntime {
    config: DaemonConfig,
    store: SharedStore,
    daemons: DaemonSet,
    central: CentralMonitor,
    queue: EventQueue<Tick>,
    faults: MonitorFaultPlan,
    n: usize,
    sharded: Option<Box<ShardedState>>,
}

impl MonitorRuntime {
    /// Build a runtime for `cluster` with default periods. The central
    /// monitor's master runs on node 0 and slave on node 1.
    pub fn new(cluster: &ClusterSim) -> Self {
        Self::with_config(cluster, DaemonConfig::default())
    }

    /// Build with custom daemon periods.
    pub fn with_config(cluster: &ClusterSim, config: DaemonConfig) -> Self {
        Self::with_topo(cluster, config, MonitorTopo::Central)
    }

    /// Build with an explicit monitoring topology. `Central` probes all
    /// pairs through the latency/bandwidth daemons; `Sharded` replaces
    /// those two with per-shard sweeps, sampled estimation, and gossip.
    /// Livehosts, node state, and central supervision run in both modes,
    /// and [`MonitorRuntime::snapshot`] serves the allocator either way.
    pub fn with_topo(cluster: &ClusterSim, config: DaemonConfig, topo: MonitorTopo) -> Self {
        let n = cluster.num_nodes();
        assert!(n >= 2, "monitoring needs at least two nodes");
        let mut queue = EventQueue::new();
        let t0 = cluster.now();
        // First ticks fire one period in, so the cluster has state to report.
        queue.push(t0 + config.nodestate_period, Tick::NodeState);
        queue.push(t0 + config.livehosts_period, Tick::Livehosts);
        queue.push(t0 + config.central_period, Tick::Central);
        let sharded = match topo {
            MonitorTopo::Central => {
                queue.push(t0 + config.latency_period, Tick::Latency);
                queue.push(t0 + config.bandwidth_period, Tick::Bandwidth);
                None
            }
            MonitorTopo::Sharded(cfg) => {
                assert_eq!(
                    cfg.index.num_nodes(),
                    n,
                    "shard index must cover the whole cluster"
                );
                queue.push(t0 + cfg.shard_period, Tick::Shard);
                queue.push(t0 + cfg.gossip_period, Tick::Gossip);
                let num_shards = cfg.index.num_switches();
                let mut gossip = GossipNet::new(
                    num_shards,
                    cfg.fanout,
                    cfg.gossip_seed,
                    ShardSummary::WIRE_BYTES,
                );
                for s in 0..num_shards {
                    // empty shards (e.g. a campus router switch) never
                    // gossip; marking them dead keeps convergence honest
                    if cfg.index.members(SwitchId(s as u32)).is_empty() {
                        gossip.set_alive(s, false);
                    }
                }
                Some(Box::new(ShardedState {
                    sweeper: ShardSweeper::new(&cfg.index),
                    estimator: NlEstimator::new(num_shards),
                    gossip,
                    cfg,
                }))
            }
        };
        MonitorRuntime {
            config,
            store: SharedStore::new(),
            daemons: DaemonSet::new(n),
            central: CentralMonitor::new(NodeId(0), NodeId(1), &config),
            queue,
            faults: MonitorFaultPlan::new(),
            n,
            sharded,
        }
    }

    /// Attach a fault schedule. Each event is applied at its exact virtual
    /// time during [`MonitorRuntime::run_until`]. Replaces any plan set
    /// earlier; events already in the past fire on the next run.
    pub fn set_fault_plan(&mut self, plan: MonitorFaultPlan) {
        for ev in plan.events() {
            self.queue.push(ev.at, Tick::Fault);
        }
        self.faults = plan;
    }

    /// Number of fault events not yet applied.
    pub fn pending_faults(&self) -> usize {
        self.faults.remaining()
    }

    /// The shared store (what the allocator reads).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The daemon periods in force.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The central monitor (failover state, counters).
    pub fn central(&self) -> &CentralMonitor {
        &self.central
    }

    /// Mutable central monitor (failure injection).
    pub fn central_mut(&mut self) -> &mut CentralMonitor {
        &mut self.central
    }

    /// Kill a daemon (failure injection). It stays dead until the central
    /// monitor's next supervision pass relaunches it.
    pub fn kill_daemon(&mut self, kind: DaemonKind) {
        self.daemons.kill(kind);
    }

    /// Number of currently dead daemons.
    pub fn dead_daemons(&self) -> usize {
        self.daemons.dead_count()
    }

    /// Label for tick events and metrics.
    fn tick_label(tick: Tick) -> &'static str {
        match tick {
            Tick::Livehosts => "livehosts",
            Tick::NodeState => "nodestate",
            Tick::Latency => "latency",
            Tick::Bandwidth => "bandwidth",
            Tick::Central => "central",
            Tick::Shard => "shard",
            Tick::Gossip => "gossip",
            Tick::Fault => "fault",
        }
    }

    /// One sharded sweep: intra-shard tournaments, inter-shard sampling,
    /// record publication, and gossip seeding.
    fn shard_tick(&mut self, cluster: &mut ClusterSim, t: SimTime) {
        let state = self.sharded.as_mut().expect("shard tick in central mode");
        let up: Vec<bool> = (0..self.n)
            .map(|i| cluster.is_up(NodeId(i as u32)))
            .collect();
        let mut alive = |n: NodeId| up[n.index()];
        let recording = nlrm_obs::ctx::recording();
        let mut probed = 0u64;
        let mut fold = nlrm_obs::DigestFold::new();
        let mut probe = |u: NodeId, v: NodeId| {
            let p = PairProbe {
                latency_s: cluster.measure_latency_s(u, v),
                avail_bps: cluster.measure_bandwidth_bps(u, v),
                peak_bps: cluster.peak_bandwidth_bps(u, v),
            };
            if recording {
                probed += 1;
                fold.u64(u.index() as u64)
                    .u64(v.index() as u64)
                    .f64(p.latency_s)
                    .f64(p.avail_bps)
                    .f64(p.peak_bps);
            }
            p
        };
        let report = state.sweeper.sweep(t, &self.store, &mut alive, &mut probe);
        // inter-shard sampling: probe between each shard's live members
        let reps: Vec<Vec<NodeId>> = (0..state.cfg.index.num_switches())
            .map(|s| {
                state
                    .cfg
                    .index
                    .members(SwitchId(s as u32))
                    .iter()
                    .copied()
                    .filter(|&n| up[n.index()])
                    .collect()
            })
            .collect();
        let est = state.estimator.estimate(&reps, &mut probe);
        let est_probe_bytes = est.probe_bytes;
        let est_record = est.to_record(report.epoch, t);
        let est_publish_bytes = est_record.len() as u64;
        self.store.put(paths::INTER_ESTIMATE, t, est_record);
        for summary in &report.summaries {
            state.gossip.publish(summary.shard, report.epoch, *summary);
        }
        if recording {
            nlrm_obs::ctx::record_stream(t, "probe:shard", probed, fold.value());
        }
        if nlrm_obs::ctx::is_active() {
            let pairs = report.pairs + est.probes;
            let bytes =
                report.probe_bytes + report.publish_bytes + est_probe_bytes + est_publish_bytes;
            nlrm_obs::ctx::set_gauge("monitor_round_pairs", pairs as f64);
            nlrm_obs::ctx::set_gauge("monitor_round_bytes", bytes as f64);
        }
    }

    /// Run monitoring (and the cluster) forward to `target` virtual time.
    pub fn run_until(&mut self, cluster: &mut ClusterSim, target: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > target {
                break;
            }
            let (t, tick) = self.queue.pop().expect("peeked");
            cluster.advance_to(t);
            let observed = nlrm_obs::ctx::is_active();
            let started = observed.then(std::time::Instant::now);
            match tick {
                Tick::Livehosts => {
                    self.daemons.livehosts.tick(cluster, &self.store);
                    self.queue.push(t + self.config.livehosts_period, tick);
                }
                Tick::NodeState => {
                    for d in &mut self.daemons.nodestate {
                        d.tick(cluster, &self.store);
                    }
                    self.queue.push(t + self.config.nodestate_period, tick);
                }
                Tick::Latency => {
                    self.daemons.latency.tick(cluster, &self.store);
                    self.queue.push(t + self.config.latency_period, tick);
                }
                Tick::Bandwidth => {
                    self.daemons.bandwidth.tick(cluster, &self.store);
                    self.queue.push(t + self.config.bandwidth_period, tick);
                }
                Tick::Central => {
                    self.central.tick(cluster, &self.store, &mut self.daemons);
                    self.queue.push(t + self.config.central_period, tick);
                }
                Tick::Shard => {
                    self.shard_tick(cluster, t);
                    let period = self.sharded.as_ref().expect("sharded").cfg.shard_period;
                    self.queue.push(t + period, tick);
                }
                Tick::Gossip => {
                    let state = self.sharded.as_mut().expect("sharded");
                    // mirror node liveness into gossip: a shard gossips
                    // while it has at least one live member
                    for s in 0..state.cfg.index.num_switches() {
                        let members = state.cfg.index.members(SwitchId(s as u32));
                        if members.is_empty() {
                            continue;
                        }
                        let up = members.iter().any(|&n| cluster.is_up(n));
                        state.gossip.set_alive(s, up);
                    }
                    let round = state.gossip.round();
                    if nlrm_obs::ctx::recording() {
                        let mut fold = nlrm_obs::DigestFold::new();
                        fold.u64(round.bytes)
                            .u64(round.updates)
                            .u64(state.gossip.rounds_run());
                        nlrm_obs::ctx::record_stream(t, "gossip", round.exchanges, fold.value());
                    }
                    let period = state.cfg.gossip_period;
                    self.queue.push(t + period, tick);
                }
                Tick::Fault => {
                    for ev in self.faults.due(t) {
                        self.apply_fault(cluster, t, ev);
                    }
                }
            }
            if let Some(started) = started {
                let label = Self::tick_label(tick);
                let wall_micros = started.elapsed().as_secs_f64() * 1e6;
                if tick != Tick::Fault {
                    nlrm_obs::ctx::emit(
                        nlrm_obs::Severity::Debug,
                        t,
                        nlrm_obs::EventKind::DaemonTick {
                            daemon: label.to_string(),
                        },
                    );
                    // instant span on the system trace: daemon ticks consume
                    // no virtual time, but their marks let allocation traces
                    // be correlated with the freshness of monitor data
                    nlrm_obs::ctx::span_closed(
                        nlrm_obs::TraceId::SYSTEM,
                        None,
                        "monitor_tick",
                        &format!("monitor/{label}"),
                        t,
                        t,
                        vec![("wall_micros".into(), format!("{wall_micros:.1}"))],
                    );
                }
                nlrm_obs::ctx::observe("monitor_tick_wall_micros", TICK_WALL_BOUNDS, wall_micros);
                nlrm_obs::ctx::inc(&format!("monitor_tick_total_{label}"));
                // offer the continuous-telemetry loop a tick; it gates
                // itself on its own cadence, so this is cheap
                nlrm_obs::ctx::telemetry_tick(t);
            }
        }
        cluster.advance_to(target);
    }

    /// Apply one fault event at virtual time `now`.
    fn apply_fault(&mut self, cluster: &mut ClusterSim, now: SimTime, ev: FaultEvent<FaultTarget>) {
        if nlrm_obs::ctx::is_active() {
            let target = match ev.target {
                FaultTarget::Daemon(kind) => format!("daemon:{kind}"),
                FaultTarget::Node(node) => format!("node:{node}"),
                FaultTarget::Master => "master".to_string(),
                FaultTarget::Slave => "slave".to_string(),
            };
            let action = match ev.action {
                FaultAction::Kill => "kill".to_string(),
                FaultAction::Hang(d) => format!("hang({d})"),
                FaultAction::Delay(d) => format!("delay({d})"),
            };
            nlrm_obs::ctx::emit(
                nlrm_obs::Severity::Warn,
                now,
                nlrm_obs::EventKind::FaultApplied { target, action },
            );
            nlrm_obs::ctx::inc("monitor_fault_applied_total");
        }
        match ev.target {
            FaultTarget::Daemon(kind) => match ev.action {
                FaultAction::Kill => self.daemons.kill(kind),
                FaultAction::Hang(d) => self.daemons.hang_until(kind, now + d),
                FaultAction::Delay(d) => self.daemons.mute_until(kind, now + d),
            },
            FaultTarget::Node(node) => {
                cluster.set_node_up(node, false);
                match ev.action {
                    FaultAction::Kill => {}
                    FaultAction::Hang(d) | FaultAction::Delay(d) => {
                        cluster.schedule_recovery(now + d, node);
                    }
                }
            }
            FaultTarget::Master => self.central.kill_master(),
            FaultTarget::Slave => self.central.kill_slave(),
        }
    }

    /// Whether this runtime runs the sharded topology.
    pub fn is_sharded(&self) -> bool {
        self.sharded.is_some()
    }

    /// The gossip network state (sharded topology only).
    pub fn gossip(&self) -> Option<&GossipNet<ShardSummary>> {
        self.sharded.as_ref().map(|s| &s.gossip)
    }

    /// The latest published inter-shard estimate, decoded from the store
    /// (sharded topology only; `None` before the first shard sweep).
    pub fn inter_estimate(&self) -> Option<InterEstimate> {
        let rec = self.store.get(paths::INTER_ESTIMATE)?;
        let record = crate::codec::decode(&rec.data).ok()?;
        InterEstimate::from_record(&record)
    }

    /// Assemble the allocator's snapshot from the store. Central and
    /// sharded stores produce the same snapshot shape, so consumers never
    /// know which topology ran.
    pub fn snapshot(&self, now: SimTime) -> Result<ClusterSnapshot, SnapshotError> {
        if self.sharded.is_some() {
            ClusterSnapshot::assemble_sharded(&self.store, self.n, now)
        } else {
            ClusterSnapshot::assemble(&self.store, self.n, now)
        }
    }

    /// Convenience: warm the monitor for `warmup` then return a snapshot.
    pub fn warm_snapshot(
        &mut self,
        cluster: &mut ClusterSim,
        warmup: nlrm_sim_core::time::Duration,
    ) -> Result<ClusterSnapshot, SnapshotError> {
        let target = cluster.now() + warmup;
        self.run_until(cluster, target);
        self.snapshot(cluster.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_cluster::iitk::small_cluster;
    use nlrm_sim_core::time::Duration;

    #[test]
    fn runtime_produces_complete_snapshot() {
        let mut cluster = small_cluster(6, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        // bandwidth sweeps every 5 min: warm for 6 min
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        assert_eq!(snap.usable_nodes().len(), 6);
        for (_, _, bw) in snap.bandwidth_bps.pairs() {
            assert!(bw > 0.0);
        }
    }

    #[test]
    fn snapshot_reflects_node_failures() {
        let mut cluster = small_cluster(6, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(360));
        cluster.schedule_failure(SimTime::from_secs(400), NodeId(4));
        rt.run_until(&mut cluster, SimTime::from_secs(500));
        let snap = rt.snapshot(cluster.now()).unwrap();
        let usable = snap.usable_nodes();
        assert_eq!(usable.len(), 5);
        assert!(!usable.contains(&NodeId(4)));
    }

    #[test]
    fn killed_daemon_is_relaunched_by_central() {
        let mut cluster = small_cluster(4, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(60));
        rt.kill_daemon(DaemonKind::Bandwidth);
        assert_eq!(rt.dead_daemons(), 1);
        rt.run_until(&mut cluster, SimTime::from_secs(120));
        assert_eq!(rt.dead_daemons(), 0);
        assert!(rt.central().relaunch_count >= 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut cluster = small_cluster(5, 99);
            let mut rt = MonitorRuntime::new(&cluster);
            let snap = rt
                .warm_snapshot(&mut cluster, Duration::from_secs(400))
                .unwrap();
            snap.bandwidth_bps
                .pairs()
                .map(|(_, _, b)| b)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_plan_kills_hangs_and_recovers() {
        use nlrm_sim_core::fault::FaultAction;
        let mut cluster = small_cluster(6, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        let mut plan = MonitorFaultPlan::new();
        plan.schedule(
            SimTime::from_secs(100),
            FaultTarget::Daemon(DaemonKind::Latency),
            FaultAction::Kill,
        );
        plan.schedule(
            SimTime::from_secs(100),
            FaultTarget::Node(NodeId(5)),
            FaultAction::Hang(Duration::from_secs(120)),
        );
        plan.schedule(
            SimTime::from_secs(120),
            FaultTarget::Master,
            FaultAction::Kill,
        );
        rt.set_fault_plan(plan);
        rt.run_until(&mut cluster, SimTime::from_secs(150));
        assert_eq!(rt.pending_faults(), 0);
        assert!(!cluster.is_up(NodeId(5)), "node fault not applied");
        rt.run_until(&mut cluster, SimTime::from_secs(400));
        // the node recovered on schedule, the supervisor relaunched the
        // killed prober, and the slave promoted itself to master
        assert!(cluster.is_up(NodeId(5)));
        assert_eq!(rt.dead_daemons(), 0);
        assert!(rt.central().relaunch_count >= 1);
        assert_eq!(rt.central().failover_count, 1);
        let snap = rt.snapshot(cluster.now()).unwrap();
        assert_eq!(snap.usable_nodes().len(), 6);
    }

    #[test]
    fn delayed_daemon_serves_stale_rows() {
        use nlrm_sim_core::fault::FaultAction;
        let mut cluster = small_cluster(4, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(360));
        let before = rt
            .store()
            .get(&crate::store::paths::bandwidth_row(NodeId(0)));
        let mut plan = MonitorFaultPlan::new();
        plan.schedule(
            SimTime::from_secs(400),
            FaultTarget::Daemon(DaemonKind::Bandwidth),
            FaultAction::Delay(Duration::from_secs(600)),
        );
        rt.set_fault_plan(plan);
        rt.run_until(&mut cluster, SimTime::from_secs(900));
        let during = rt
            .store()
            .get(&crate::store::paths::bandwidth_row(NodeId(0)));
        assert_eq!(
            before.unwrap().written_at,
            during.unwrap().written_at,
            "muted daemon should not publish"
        );
    }

    #[test]
    fn sharded_runtime_produces_complete_snapshot() {
        let mut cluster = nlrm_cluster::iitk::iitk_cluster(11);
        let idx = cluster.topology().switch_index();
        let mut rt = MonitorRuntime::with_topo(
            &cluster,
            DaemonConfig::default(),
            MonitorTopo::Sharded(ShardConfig::new(idx)),
        );
        assert!(rt.is_sharded());
        let snap = rt
            .warm_snapshot(&mut cluster, Duration::from_secs(360))
            .unwrap();
        assert_eq!(snap.usable_nodes().len(), 60);
        for (u, v, bw) in snap.bandwidth_bps.pairs() {
            assert!(bw > 0.0, "bw({u},{v}) = {bw}");
        }
        for (u, v, lat) in snap.latency.pairs() {
            assert!(
                lat.instant > 0.0 && lat.instant.is_finite(),
                "lat({u},{v}) = {}",
                lat.instant
            );
        }
        assert!(rt.inter_estimate().is_some());
    }

    #[test]
    fn sharded_gossip_converges_between_sweeps() {
        let mut cluster = nlrm_cluster::iitk::iitk_cluster(11);
        let idx = cluster.topology().switch_index();
        let mut rt = MonitorRuntime::with_topo(
            &cluster,
            DaemonConfig::default(),
            MonitorTopo::Sharded(ShardConfig::new(idx)),
        );
        // sweeps run at 60 s cadence; stop between the 6-minute sweep and
        // the next one so gossip had rounds to spread the newest epochs
        rt.run_until(&mut cluster, SimTime::from_secs(415));
        let gossip = rt.gossip().unwrap();
        assert!(gossip.converged(), "live shards should agree");
        assert!(gossip.total_bytes() > 0);
    }

    #[test]
    fn sharded_deterministic_replay() {
        let run = || {
            let mut cluster = nlrm_cluster::iitk::iitk_cluster(42);
            let idx = cluster.topology().switch_index();
            let mut rt = MonitorRuntime::with_topo(
                &cluster,
                DaemonConfig::default(),
                MonitorTopo::Sharded(ShardConfig::new(idx)),
            );
            let snap = rt
                .warm_snapshot(&mut cluster, Duration::from_secs(400))
                .unwrap();
            snap.bandwidth_bps
                .pairs()
                .map(|(_, _, b)| b)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_survives_node_failures() {
        let mut cluster = nlrm_cluster::iitk::iitk_cluster(11);
        let idx = cluster.topology().switch_index();
        let mut rt = MonitorRuntime::with_topo(
            &cluster,
            DaemonConfig::default(),
            MonitorTopo::Sharded(ShardConfig::new(idx)),
        );
        rt.run_until(&mut cluster, SimTime::from_secs(120));
        cluster.schedule_failure(SimTime::from_secs(130), NodeId(7));
        rt.run_until(&mut cluster, SimTime::from_secs(360));
        let snap = rt.snapshot(cluster.now()).unwrap();
        let usable = snap.usable_nodes();
        assert_eq!(usable.len(), 59);
        assert!(!usable.contains(&NodeId(7)));
    }

    #[test]
    fn state_samples_age_with_staleness() {
        let mut cluster = small_cluster(4, 11);
        let mut rt = MonitorRuntime::new(&cluster);
        rt.run_until(&mut cluster, SimTime::from_secs(60));
        // stop monitoring but advance the cluster an hour
        cluster.advance(Duration::from_hours(1));
        let snap = rt.snapshot(cluster.now()).unwrap();
        assert!(snap.max_sample_age().unwrap() >= Duration::from_secs(3600));
    }
}
