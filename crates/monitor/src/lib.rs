//! # nlrm-monitor
//!
//! The paper's **Resource Monitor** (§4): a distributed set of light-weight
//! daemons that publish cluster state to a shared filesystem, supervised by
//! a redundant central monitor.
//!
//! * [`store`] — [`SharedStore`], the NFS stand-in: a
//!   concurrent path→bytes keyspace; [`codec`] defines the on-"disk" binary
//!   record format.
//! * [`sample`] — the per-node record `NodeStateD` publishes: static spec +
//!   instantaneous and 1/5/15-minute means of every dynamic attribute
//!   (Table 1 of the paper).
//! * [`rounds`] — the tournament schedule for pairwise measurements: n/2
//!   disjoint pairs per round, n−1 rounds, so no node is measured twice at
//!   once (§4, "P2P latency and bandwidth").
//! * [`daemons`] — `LivehostsD`, `NodeStateD`, `LatencyD`, `BandwidthD`.
//! * [`central`] — the master/slave `CentralMonitor` that relaunches dead
//!   daemons and fails over when the master dies.
//! * [`shard`] — per-switch aggregators running the pair tournament
//!   intra-shard only, publishing epoch-stamped shard NL records.
//! * [`gossip`] — version-stamped anti-entropy dissemination of shard
//!   aggregates, with convergence-round and byte accounting.
//! * [`estimate`] — landmark-sampled inter-shard NL estimation with
//!   per-pair error bounds (`O(V log V)` probes instead of `O(V²)`).
//! * [`forecast`] — NWS-style projection of snapshots to job-start time.
//! * [`runtime`] — drives everything in virtual time against a
//!   [`ClusterSim`](nlrm_cluster::ClusterSim).
//! * [`threaded`] — the same daemon topology on real OS threads, for
//!   demonstrations outside the simulator.
//! * [`snapshot`] — [`ClusterSnapshot`], the
//!   allocator's input, assembled purely from store contents (the allocator
//!   never peeks at simulator truth).

pub mod central;
pub mod codec;
pub mod daemons;
pub mod estimate;
pub mod forecast;
pub mod gossip;
pub mod matrix;
pub mod rounds;
pub mod runtime;
pub mod sample;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod threaded;

pub use estimate::{Band, InterEstimate, NlEstimator, PairProbe};
pub use gossip::GossipNet;
pub use matrix::SymMatrix;
pub use runtime::{
    DaemonKind, FaultTarget, MonitorFaultPlan, MonitorRuntime, MonitorTopo, ShardConfig,
};
pub use sample::{LatencyStat, NodeSample};
pub use shard::{ShardSummary, ShardSweepReport, ShardSweeper};
pub use snapshot::{ClusterSnapshot, NodeInfo};
pub use store::SharedStore;
