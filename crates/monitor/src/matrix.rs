//! Symmetric pairwise matrices (latency, bandwidth) indexed by node.

use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A symmetric `n × n` matrix with a default diagonal, stored densely.
///
/// Writing `(u, v)` also writes `(v, u)`: P2P latency and bandwidth are
/// treated as symmetric, as in the paper's measurement scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Copy> SymMatrix<T> {
    /// An `n × n` matrix filled with `fill`.
    pub fn new(n: usize, fill: T) -> Self {
        SymMatrix {
            n,
            data: vec![fill; n * n],
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Value at `(u, v)`.
    pub fn get(&self, u: NodeId, v: NodeId) -> T {
        self.data[u.index() * self.n + v.index()]
    }

    /// Set `(u, v)` and `(v, u)`.
    pub fn set(&mut self, u: NodeId, v: NodeId, value: T) {
        self.data[u.index() * self.n + v.index()] = value;
        self.data[v.index() * self.n + u.index()] = value;
    }

    /// Iterate over the strict upper triangle `(u < v)`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, T)> + '_ {
        (0..self.n).flat_map(move |u| {
            ((u + 1)..self.n).map(move |v| {
                (
                    NodeId(u as u32),
                    NodeId(v as u32),
                    self.data[u * self.n + v],
                )
            })
        })
    }

    /// Row `u` as a slice (length `n`).
    pub fn row(&self, u: NodeId) -> &[T] {
        &self.data[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// Overwrite row `u` *and* the mirrored column.
    pub fn set_row(&mut self, u: NodeId, row: &[T]) {
        assert_eq!(row.len(), self.n);
        for (v, &val) in row.iter().enumerate() {
            self.data[u.index() * self.n + v] = val;
            self.data[v * self.n + u.index()] = val;
        }
    }
}

impl SymMatrix<f64> {
    /// Mean over the strict upper triangle (pairwise average, as used for a
    /// group's network load). Returns 0 for matrices smaller than 2×2.
    pub fn pair_mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (_, _, v) in self.pairs() {
            sum += v;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_symmetric() {
        let mut m = SymMatrix::new(4, 0.0);
        m.set(NodeId(1), NodeId(3), 7.5);
        assert_eq!(m.get(NodeId(3), NodeId(1)), 7.5);
        assert_eq!(m.get(NodeId(1), NodeId(3)), 7.5);
    }

    #[test]
    fn pairs_covers_upper_triangle() {
        let m = SymMatrix::new(4, 1.0);
        assert_eq!(m.pairs().count(), 6); // C(4,2)
    }

    #[test]
    fn pair_mean_averages() {
        let mut m = SymMatrix::new(3, 0.0);
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(0), NodeId(2), 2.0);
        m.set(NodeId(1), NodeId(2), 3.0);
        assert!((m.pair_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn set_row_mirrors() {
        let mut m = SymMatrix::new(3, 0.0);
        m.set_row(NodeId(1), &[4.0, 0.0, 6.0]);
        assert_eq!(m.get(NodeId(0), NodeId(1)), 4.0);
        assert_eq!(m.get(NodeId(2), NodeId(1)), 6.0);
    }

    #[test]
    fn empty_matrix_pair_mean_is_zero() {
        let m: SymMatrix<f64> = SymMatrix::new(1, 0.0);
        assert_eq!(m.pair_mean(), 0.0);
    }
}
