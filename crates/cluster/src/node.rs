//! Per-node static attributes and simulated dynamic state.
//!
//! The attribute set mirrors Table 1 of the paper: static attributes
//! (core count, CPU frequency, total memory) and dynamic ones (CPU load,
//! CPU utilization, memory usage, logged-in users, NIC data-flow rate).

use nlrm_sim_core::process::{
    BoundedWalk, Diurnal, MarkovChain, OrnsteinUhlenbeck, PoissonSpikes, Process,
};
use nlrm_sim_core::time::SimTime;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Static hardware description of a node (the `lscpu`-style facts the
/// paper's NodeStateD queries once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Hostname, e.g. `csews12`.
    pub hostname: String,
    /// Logical core count (hyperthreads included, as in the paper).
    pub cores: u32,
    /// Nominal clock in GHz.
    pub freq_ghz: f64,
    /// Total physical memory in GB.
    pub total_mem_gb: f64,
}

impl NodeSpec {
    /// Relative compute speed of one core (GHz as the proxy, like the paper's
    /// "CPU frequency: maximize" attribute).
    pub fn core_speed(&self) -> f64 {
        self.freq_ghz
    }
}

/// Instantaneous dynamic state of a node as the OS utilities would report it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// CPU load: number of runnable processes waiting/executing (like
    /// `uptime` load, aggregated across cores).
    pub cpu_load: f64,
    /// CPU utilization in `[0, 1]` across all logical cores.
    pub cpu_util: f64,
    /// Fraction of physical memory in use, `[0, 1]`.
    pub mem_used_frac: f64,
    /// Count of logged-in users.
    pub users: u32,
    /// NIC data-flow rate (bytes in+out per second), in Mbit/s.
    pub flow_rate_mbps: f64,
    /// Whether the node answers pings.
    pub up: bool,
}

impl NodeState {
    /// A freshly booted idle node.
    pub fn idle() -> Self {
        NodeState {
            cpu_load: 0.0,
            cpu_util: 0.0,
            mem_used_frac: 0.1,
            users: 0,
            flow_rate_mbps: 0.0,
            up: true,
        }
    }
}

/// Parameters of the stochastic processes driving one node's background
/// activity. See [`crate::profiles`] for calibrated presets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeDynamicsParams {
    /// Long-run mean of the baseline CPU load (runnable processes).
    pub load_mean: f64,
    /// OU volatility of the baseline load.
    pub load_sigma: f64,
    /// OU reversion rate of the baseline load (1/s).
    pub load_rate: f64,
    /// Load-spike arrival rate (events/s): a user launching a job.
    pub spike_rate: f64,
    /// Mean spike amplitude (runnable processes added).
    pub spike_amp: f64,
    /// Spike decay rate (1/s).
    pub spike_decay: f64,
    /// Band of baseline CPU utilization contributed by non-load activity.
    pub util_base: (f64, f64),
    /// Band of memory usage fraction.
    pub mem_band: (f64, f64),
    /// Mean number of logged-in users.
    pub users_mean: f64,
    /// Baseline NIC flow in Mbit/s.
    pub flow_base_mbps: f64,
    /// Flow-burst arrival rate (events/s).
    pub flow_burst_rate: f64,
    /// Mean burst amplitude in Mbit/s.
    pub flow_burst_amp: f64,
    /// Burst decay rate (1/s).
    pub flow_burst_decay: f64,
    /// Diurnal amplitude applied to load and flow, `[0, 1]`.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) at which activity peaks.
    pub diurnal_peak_hour: f64,
}

/// The live stochastic state of one node's background activity.
#[derive(Debug, Clone)]
pub struct NodeDynamics {
    params: NodeDynamicsParams,
    cores: u32,
    load_base: OrnsteinUhlenbeck,
    load_spikes: PoissonSpikes,
    util_base: BoundedWalk,
    mem: BoundedWalk,
    users: MarkovChain,
    flow_base: OrnsteinUhlenbeck,
    flow_bursts: PoissonSpikes,
    diurnal: Diurnal,
    rng: StdRng,
}

impl NodeDynamics {
    /// Build dynamics for a node with `cores` logical cores.
    pub fn new(params: NodeDynamicsParams, cores: u32, rng: StdRng) -> Self {
        let users_levels: Vec<f64> = (0..6).map(|i| i as f64).collect();
        // Dwell longer near the mean user count; uniform jumps otherwise.
        let n = users_levels.len();
        let dwell: Vec<f64> = users_levels
            .iter()
            .map(|&u| {
                let d = (u - params.users_mean).abs();
                (1800.0 / (1.0 + d)).max(120.0)
            })
            .collect();
        let transition: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                // jump to a neighbouring level with high probability
                let mut row = vec![0.0; n];
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(n - 1);
                let choices: Vec<usize> = (lo..=hi).filter(|&j| j != i).collect();
                let p = 1.0 / choices.len() as f64;
                for j in choices {
                    row[j] = p;
                }
                row
            })
            .collect();
        let start_state = (params.users_mean.round() as usize).min(n - 1);
        NodeDynamics {
            cores,
            load_base: OrnsteinUhlenbeck::with_stationary_std(
                params.load_mean,
                params.load_rate,
                params.load_sigma,
                0.0,
            ),
            load_spikes: PoissonSpikes::new(
                params.spike_rate,
                params.spike_amp,
                params.spike_decay,
            ),
            util_base: BoundedWalk::new(
                params.util_base.0,
                params.util_base.1,
                0.02,
                (params.util_base.0 + params.util_base.1) / 2.0,
            ),
            mem: BoundedWalk::new(
                params.mem_band.0,
                params.mem_band.1,
                0.005,
                (params.mem_band.0 + params.mem_band.1) / 2.0,
            ),
            users: MarkovChain::new(users_levels, dwell, transition, start_state),
            flow_base: OrnsteinUhlenbeck::with_stationary_std(
                params.flow_base_mbps,
                0.01,
                params.flow_base_mbps * 0.5,
                0.0,
            ),
            flow_bursts: PoissonSpikes::new(
                params.flow_burst_rate,
                params.flow_burst_amp,
                params.flow_burst_decay,
            ),
            diurnal: Diurnal::daily(params.diurnal_amplitude, params.diurnal_peak_hour),
            params,
            rng,
        }
    }

    /// Advance all processes by `dt` seconds ending at absolute time `t`,
    /// and return the resulting instantaneous state (without job load —
    /// the cluster adds that on top).
    pub fn step(&mut self, dt: f64, t: SimTime) -> NodeState {
        let day = self.diurnal.multiplier(t);
        let load = (self.load_base.step(dt, &mut self.rng)
            + self.load_spikes.step(dt, &mut self.rng))
            * day;
        let util_base = self.util_base.step(dt, &mut self.rng);
        // Runnable processes occupy cores: utilization follows load, saturating at 1.
        let cpu_util = (util_base * day + load / self.cores as f64).clamp(0.0, 1.0);
        let mem = self.mem.step(dt, &mut self.rng);
        let users = self.users.step(dt, &mut self.rng) as u32;
        let flow = (self.flow_base.step(dt, &mut self.rng)
            + self.flow_bursts.step(dt, &mut self.rng))
            * day;
        NodeState {
            cpu_load: load,
            cpu_util,
            mem_used_frac: mem,
            users,
            flow_rate_mbps: flow.max(0.0),
            up: true,
        }
    }

    /// Parameters this node was configured with.
    pub fn params(&self) -> &NodeDynamicsParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ClusterProfile;
    use nlrm_sim_core::rng::RngFactory;

    fn dynamics() -> NodeDynamics {
        // a typical (non-hot) node: hot nodes are tested via the profile
        let mut prof = ClusterProfile::shared_lab();
        prof.hot_node_fraction = 0.0;
        let p = prof.sample_node_params(&mut RngFactory::new(5).named("p"));
        NodeDynamics::new(p, 12, RngFactory::new(5).named("d"))
    }

    #[test]
    fn state_fields_stay_in_valid_ranges() {
        let mut d = dynamics();
        for i in 0..5000 {
            let t = SimTime::from_secs(i * 5);
            let s = d.step(5.0, t);
            assert!(s.cpu_load >= 0.0, "load {}", s.cpu_load);
            assert!((0.0..=1.0).contains(&s.cpu_util));
            assert!((0.0..=1.0).contains(&s.mem_used_frac));
            assert!(s.users <= 5);
            assert!(s.flow_rate_mbps >= 0.0);
        }
    }

    #[test]
    fn calibration_matches_paper_bands() {
        // Fig. 1c: average CPU utilization 20–35%, memory ~25%.
        let mut d = dynamics();
        let mut util = 0.0;
        let mut mem = 0.0;
        let n = 17_280; // 24 h at 5 s
        for i in 0..n {
            let s = d.step(5.0, SimTime::from_secs(i * 5));
            util += s.cpu_util;
            mem += s.mem_used_frac;
        }
        let util = util / n as f64;
        let mem = mem / n as f64;
        assert!((0.10..=0.45).contains(&util), "mean util {util}");
        assert!((0.15..=0.40).contains(&mem), "mean mem {mem}");
    }

    #[test]
    fn load_spikes_exist_but_are_rare() {
        // Fig. 1a: load mostly low with occasional spikes. A single draw
        // from the parameter distribution can legitimately land on the
        // spiky corner (spike_rate 1/1200 s⁻¹ with amplitude ~6 keeps the
        // load elevated most of the day), so calibrate over several
        // sampled nodes rather than one lucky seed.
        let mut prof = ClusterProfile::shared_lab();
        prof.hot_node_fraction = 0.0;
        let n = 17_280u64; // 24 h at 5 s
        let nodes = 6u64;
        let mut above2 = 0usize;
        let mut peak: f64 = 0.0;
        for node in 0..nodes {
            let mut factory = RngFactory::new(5 + node).named("p");
            let p = prof.sample_node_params(&mut factory);
            let mut d = NodeDynamics::new(p, 12, RngFactory::new(5 + node).named("d"));
            for i in 0..n {
                let s = d.step(5.0, SimTime::from_secs(i * 5));
                if s.cpu_load > 2.0 {
                    above2 += 1;
                }
                peak = peak.max(s.cpu_load);
            }
        }
        let frac = above2 as f64 / (n * nodes) as f64;
        assert!(frac < 0.35, "loaded fraction {frac}");
        assert!(peak > 1.0, "no spikes at all, peak {peak}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = dynamics();
        let mut b = dynamics();
        for i in 0..100 {
            let t = SimTime::from_secs(i * 5);
            assert_eq!(a.step(5.0, t), b.step(5.0, t));
        }
    }
}
