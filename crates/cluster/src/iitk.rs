//! Reference clusters, including the paper's IIT Kanpur testbed.

use crate::cluster::ClusterSim;
use crate::node::NodeSpec;
use crate::profiles::ClusterProfile;
use nlrm_topology::{LinkParams, Topology};

/// The paper's evaluation cluster (§5): 60 nodes — 40 × 12-core Intel Core
/// @ 4.6 GHz and 20 × 8-core @ 2.8 GHz — on a tree of 4 Gigabit-Ethernet
/// switches with 15 nodes each. Hostnames follow the paper's `csewsN`
/// scheme. The two node classes are interleaved (every third node is an
/// 8-core box) so that heterogeneity is spread across switches.
pub fn iitk_cluster(seed: u64) -> ClusterSim {
    iitk_cluster_with_profile(ClusterProfile::shared_lab(), seed)
}

/// [`iitk_cluster`] with a custom background profile.
pub fn iitk_cluster_with_profile(profile: ClusterProfile, seed: u64) -> ClusterSim {
    let topo = Topology::star_of_switches(
        &[15, 15, 15, 15],
        LinkParams::gigabit(),
        LinkParams::gigabit(),
    );
    let specs = (0..60).map(iitk_spec).collect();
    ClusterSim::new(topo, specs, profile, seed)
}

/// The 30-node subset used for the paper's Fig. 2(a) bandwidth heatmap:
/// three switches of ten, node numbering following physical proximity.
pub fn iitk30(seed: u64) -> ClusterSim {
    let topo =
        Topology::star_of_switches(&[10, 10, 10], LinkParams::gigabit(), LinkParams::gigabit());
    let specs = (0..30).map(iitk_spec).collect();
    ClusterSim::new(topo, specs, ClusterProfile::shared_lab(), seed)
}

/// Hardware spec of node `i` in the IIT-K inventory: every third node is one
/// of the twenty 8-core 2.8 GHz machines, the rest are 12-core 4.6 GHz.
fn iitk_spec(i: usize) -> NodeSpec {
    let eight_core = i % 3 == 2;
    NodeSpec {
        hostname: format!("csews{}", i + 1),
        cores: if eight_core { 8 } else { 12 },
        freq_ghz: if eight_core { 2.8 } else { 4.6 },
        total_mem_gb: 16.0,
    }
}

/// A department "campus" spanning multiple clusters (the paper's §6 future
/// work: "a large department/institute that may span over multiple
/// clusters … large overheads between nodes from different clusters").
///
/// Each cluster is a switch of `nodes_per_cluster` IIT-K-style nodes; the
/// clusters hang off a campus router over links with full GigE capacity
/// but **millisecond-class latency** and heavier background traffic, so
/// spanning clusters is expensive exactly the way the paper warns.
pub fn campus(clusters: usize, nodes_per_cluster: usize, seed: u64) -> ClusterSim {
    campus_with_profile(
        clusters,
        nodes_per_cluster,
        ClusterProfile::shared_lab(),
        seed,
    )
}

/// [`campus`] with an explicit dynamics profile (equivalence scenarios
/// zero out the measurement noise to isolate estimation error).
pub fn campus_with_profile(
    clusters: usize,
    nodes_per_cluster: usize,
    profile: ClusterProfile,
    seed: u64,
) -> ClusterSim {
    assert!(clusters >= 1 && nodes_per_cluster >= 1);
    // switch 0 = campus router (no nodes); switches 1..=clusters = clusters
    let mut parents: Vec<Option<usize>> = vec![None];
    parents.extend((0..clusters).map(|_| Some(0)));
    let mut node_switches = Vec::new();
    for c in 0..clusters {
        node_switches.extend(std::iter::repeat_n(c + 1, nodes_per_cluster));
    }
    let campus_link = nlrm_topology::LinkParams {
        capacity_bps: 1e9,
        latency_s: 1e-3, // campus routing: ~20× a LAN hop
    };
    let topo = Topology::tree(&parents, &node_switches, LinkParams::gigabit(), campus_link);
    let specs = (0..clusters * nodes_per_cluster).map(iitk_spec).collect();
    ClusterSim::new(topo, specs, profile, seed)
}

/// A small homogeneous single-switch cluster for unit tests: `n` nodes of
/// 8 cores @ 3 GHz.
pub fn small_cluster(n: usize, seed: u64) -> ClusterSim {
    small_cluster_with_profile(n, ClusterProfile::shared_lab(), seed)
}

/// [`small_cluster`] with a custom profile.
pub fn small_cluster_with_profile(n: usize, profile: ClusterProfile, seed: u64) -> ClusterSim {
    let topo = Topology::single_switch(n, LinkParams::gigabit());
    let specs = (0..n)
        .map(|i| NodeSpec {
            hostname: format!("test{i}"),
            cores: 8,
            freq_ghz: 3.0,
            total_mem_gb: 16.0,
        })
        .collect();
    ClusterSim::new(topo, specs, profile, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_topology::NodeId;

    #[test]
    fn iitk_inventory_matches_paper() {
        let c = iitk_cluster(1);
        assert_eq!(c.num_nodes(), 60);
        let twelve = (0..60).filter(|&i| c.spec(NodeId(i)).cores == 12).count();
        let eight = (0..60).filter(|&i| c.spec(NodeId(i)).cores == 8).count();
        assert_eq!(twelve, 40);
        assert_eq!(eight, 20);
        assert_eq!(c.topology().num_switches(), 4);
        assert_eq!(c.spec(NodeId(0)).hostname, "csews1");
        assert_eq!(c.spec(NodeId(59)).hostname, "csews60");
    }

    #[test]
    fn iitk_speeds_match_classes() {
        let c = iitk_cluster(1);
        for i in 0..60 {
            let s = c.spec(NodeId(i));
            if s.cores == 12 {
                assert_eq!(s.freq_ghz, 4.6);
            } else {
                assert_eq!(s.freq_ghz, 2.8);
            }
        }
    }

    #[test]
    fn iitk30_has_three_switches_of_ten() {
        let c = iitk30(1);
        assert_eq!(c.num_nodes(), 30);
        assert_eq!(c.topology().num_switches(), 3);
    }

    #[test]
    fn campus_spanning_is_expensive() {
        let mut c = campus(2, 10, 5);
        c.advance(nlrm_sim_core::time::Duration::from_secs(60));
        // intra-cluster: nodes 0,1 (cluster 1); cross: node 0 and node 10
        let intra = c.latency_s(NodeId(0), NodeId(1));
        let cross = c.latency_s(NodeId(0), NodeId(10));
        assert!(
            cross > intra * 5.0,
            "campus hop should dominate: intra {intra}, cross {cross}"
        );
        assert_eq!(c.num_nodes(), 20);
        assert_eq!(c.topology().num_switches(), 3);
    }

    #[test]
    fn heterogeneity_spread_across_switches() {
        let c = iitk_cluster(1);
        let topo = c.topology();
        for sw in 0..4u32 {
            let nodes = topo.nodes_of_switch(nlrm_topology::SwitchId(sw));
            let eight = nodes.iter().filter(|&&n| c.spec(n).cores == 8).count();
            assert!(eight >= 3, "switch {sw} has too few 8-core nodes: {eight}");
        }
    }
}
