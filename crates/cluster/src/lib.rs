//! # nlrm-cluster
//!
//! A discrete-time simulator of a **shared, non-dedicated compute cluster** —
//! the substrate the ICPP'20 paper evaluates on (60 heterogeneous nodes at
//! IIT Kanpur, 4 Gigabit-Ethernet switches, real students generating
//! background load).
//!
//! The simulator has three layers:
//!
//! * [`node`] — per-node dynamic state (CPU load, CPU utilization, memory,
//!   logged-in users, NIC data-flow rate) driven by stochastic processes,
//! * [`network`] — per-link background utilization; effective peer-to-peer
//!   bandwidth is the bottleneck residual capacity along the tree path, and
//!   latency grows with queueing on congested links,
//! * [`cluster`] — [`ClusterSim`], which owns the
//!   topology, advances everything in virtual time, injects failures, and
//!   answers the measurement queries the monitoring daemons make.
//!
//! [`profiles`] contains calibrated parameter sets reproducing the activity
//! ranges reported in the paper's Figures 1–2, [`iitk`] builds the paper's
//! exact hardware inventory, and [`trace`] records/replays cluster
//! histories so the pipeline can run on captured data.

pub mod cluster;
pub mod iitk;
pub mod network;
pub mod node;
pub mod profiles;
pub mod trace;

pub use cluster::ClusterSim;
pub use node::{NodeSpec, NodeState};
pub use profiles::ClusterProfile;
