//! Background network traffic and effective P2P performance.
//!
//! Each link carries a background utilization process: a mean-reverting
//! component (ambient chatter from the shared cluster's users) plus an
//! on/off heavy-flow component (someone copying a dataset across the trunk).
//! Effective available bandwidth between two nodes is the bottleneck
//! residual capacity along their tree path; latency grows with queueing on
//! congested links. This is what produces the paper's Fig. 2: a heatmap with
//! topology-determined base values and strong temporal fluctuation.

use crate::profiles::ClusterProfile;
use nlrm_sim_core::process::{MarkovChain, OrnsteinUhlenbeck, Process};
use nlrm_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;

/// Maximum modeled utilization: a link never quite reaches 100% background
/// load, leaving a residual trickle (real TCP backs off similarly).
const UTIL_CAP: f64 = 0.97;

/// Queueing-delay inflation factor: per-hop latency grows as
/// `1 + QUEUE_FACTOR · u/(1−u)` with utilization `u` (M/M/1-like shape).
const QUEUE_FACTOR: f64 = 3.0;

/// The stochastic background traffic on one link.
#[derive(Debug, Clone)]
pub struct LinkTraffic {
    base: OrnsteinUhlenbeck,
    heavy: MarkovChain,
    rng: StdRng,
    util: f64,
}

impl LinkTraffic {
    /// Build traffic for a link. `mean_util` is the long-run background
    /// utilization; heavy flows come and go per the profile.
    pub fn new(profile: &ClusterProfile, mean_util: f64, rng: StdRng) -> Self {
        let heavy = if profile.heavy_flow_rate > 0.0 {
            MarkovChain::on_off(
                0.0,
                profile.heavy_flow_util,
                1.0 / profile.heavy_flow_rate,
                profile.heavy_flow_duration,
            )
        } else {
            MarkovChain::on_off(0.0, 0.0, 1.0, 1.0)
        };
        LinkTraffic {
            base: OrnsteinUhlenbeck::with_stationary_std(
                mean_util,
                1.0 / 120.0,
                profile.link_util_sigma,
                0.0,
            ),
            heavy,
            rng,
            util: mean_util,
        }
    }

    /// Advance by `dt` seconds; returns the new background utilization.
    pub fn step(&mut self, dt: f64) -> f64 {
        let base = self.base.step(dt, &mut self.rng);
        let heavy = self.heavy.step(dt, &mut self.rng);
        self.util = (base + heavy).clamp(0.0, UTIL_CAP);
        self.util
    }

    /// Current background utilization fraction.
    pub fn util(&self) -> f64 {
        self.util
    }

    /// Force the current utilization (trace replay).
    pub fn set_util(&mut self, util: f64) {
        self.util = util.clamp(0.0, UTIL_CAP);
    }
}

/// The network layer: per-link background traffic plus job-injected load.
#[derive(Debug, Clone)]
pub struct NetworkSim {
    traffic: Vec<LinkTraffic>,
    /// Additional utilization injected by simulated MPI jobs, per link.
    job_util: Vec<f64>,
    /// Utilization contributed by the attached node's own NIC traffic
    /// (access links only): couples the paper's "node data flow rate"
    /// attribute to the bandwidth that node's peers actually see.
    node_flow_util: Vec<f64>,
}

impl NetworkSim {
    /// Build traffic processes for every link of `topo`.
    pub fn new(
        topo: &Topology,
        profile: &ClusterProfile,
        mut link_rng: impl FnMut(usize) -> StdRng,
    ) -> Self {
        let traffic = topo
            .links()
            .iter()
            .map(|link| {
                let is_trunk = matches!(
                    (link.a, link.b),
                    (
                        nlrm_topology::graph::Endpoint::Switch(_),
                        nlrm_topology::graph::Endpoint::Switch(_)
                    )
                );
                let mean = if is_trunk {
                    profile.trunk_util_mean
                } else {
                    profile.access_util_mean
                };
                LinkTraffic::new(profile, mean, link_rng(link.id.index()))
            })
            .collect::<Vec<_>>();
        let n = traffic.len();
        NetworkSim {
            traffic,
            job_util: vec![0.0; n],
            node_flow_util: vec![0.0; n],
        }
    }

    /// Record the attached node's NIC flow as background utilization on its
    /// access link. Called by the cluster each dynamics step.
    pub fn set_node_flow_util(&mut self, l: LinkId, util: f64) {
        self.node_flow_util[l.index()] = util.clamp(0.0, UTIL_CAP);
    }

    /// Force a link's background utilization (trace replay). Clears any
    /// node-flow component so the override is exact.
    pub fn override_background(&mut self, l: LinkId, util: f64) {
        self.traffic[l.index()].set_util(util);
        self.node_flow_util[l.index()] = 0.0;
    }

    /// Advance all link processes by `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        for t in &mut self.traffic {
            t.step(dt);
        }
    }

    /// Background utilization of a link (without job traffic).
    pub fn background_util(&self, l: LinkId) -> f64 {
        self.traffic[l.index()].util()
    }

    /// Total utilization including the attached node's NIC traffic and
    /// job-injected traffic, capped.
    pub fn total_util(&self, l: LinkId) -> f64 {
        (self.traffic[l.index()].util() + self.node_flow_util[l.index()] + self.job_util[l.index()])
            .clamp(0.0, UTIL_CAP)
    }

    /// Add (or with a negative value, remove) job-injected utilization.
    pub fn add_job_util(&mut self, l: LinkId, delta: f64) {
        let u = &mut self.job_util[l.index()];
        *u = (*u + delta).max(0.0);
    }

    /// Residual capacity of a link in bits/s, after background + job load.
    pub fn residual_bps(&self, topo: &Topology, l: LinkId) -> f64 {
        let cap = topo.link(l).params.capacity_bps;
        cap * (1.0 - self.total_util(l))
    }

    /// Effective available bandwidth between two nodes: the bottleneck
    /// residual along the tree path (bits/s). `u == v` → +∞ (no network).
    pub fn available_bandwidth_bps(&self, topo: &Topology, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return f64::INFINITY;
        }
        topo.path(u, v)
            .into_iter()
            .map(|l| self.residual_bps(topo, l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Current latency between two nodes in seconds: base propagation plus
    /// congestion-dependent queueing on every hop.
    pub fn latency_s(&self, topo: &Topology, u: NodeId, v: NodeId) -> f64 {
        topo.path(u, v)
            .into_iter()
            .map(|l| {
                let base = topo.link(l).params.latency_s;
                let util = self.total_util(l);
                base * (1.0 + QUEUE_FACTOR * (util / (1.0 - util)).min(20.0))
            })
            .sum()
    }

    /// Peak (zero-load) bandwidth between two nodes: the raw bottleneck
    /// capacity. This is the paper's "peak bandwidth" used to form the
    /// complement of available bandwidth.
    pub fn peak_bandwidth_bps(&self, topo: &Topology, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return f64::INFINITY;
        }
        topo.path(u, v)
            .into_iter()
            .map(|l| topo.link(l).params.capacity_bps)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_sim_core::rng::RngFactory;
    use nlrm_topology::LinkParams;

    fn network() -> (Topology, NetworkSim) {
        let topo =
            Topology::star_of_switches(&[2, 2], LinkParams::gigabit(), LinkParams::gigabit());
        let f = RngFactory::new(21);
        let net = NetworkSim::new(&topo, &ClusterProfile::shared_lab(), |i| {
            f.stream("link", i as u64)
        });
        (topo, net)
    }

    #[test]
    fn utilization_stays_in_bounds() {
        let (_, mut net) = network();
        for _ in 0..2000 {
            net.step(5.0);
            for l in 0..net.traffic.len() {
                let u = net.total_util(LinkId(l as u32));
                assert!((0.0..=UTIL_CAP).contains(&u), "util {u}");
            }
        }
    }

    #[test]
    fn same_node_is_infinite_bandwidth() {
        let (topo, net) = network();
        assert!(net
            .available_bandwidth_bps(&topo, NodeId(0), NodeId(0))
            .is_infinite());
    }

    #[test]
    fn cross_switch_bandwidth_not_above_same_switch_on_average() {
        let (topo, mut net) = network();
        let mut same = 0.0;
        let mut cross = 0.0;
        let n = 500;
        for _ in 0..n {
            net.step(30.0);
            same += net.available_bandwidth_bps(&topo, NodeId(0), NodeId(1));
            cross += net.available_bandwidth_bps(&topo, NodeId(0), NodeId(2));
        }
        assert!(
            cross / n as f64 <= same / n as f64,
            "cross {} vs same {}",
            cross / n as f64,
            same / n as f64
        );
    }

    #[test]
    fn job_traffic_reduces_residual() {
        let (topo, mut net) = network();
        let l = topo.access_link(NodeId(0));
        let before = net.residual_bps(&topo, l);
        net.add_job_util(l, 0.5);
        let after = net.residual_bps(&topo, l);
        assert!(after < before);
        net.add_job_util(l, -0.5);
        assert!((net.residual_bps(&topo, l) - before).abs() < 1e-6);
    }

    #[test]
    fn job_util_never_negative() {
        let (topo, mut net) = network();
        let l = topo.access_link(NodeId(0));
        net.add_job_util(l, -5.0);
        assert!(net.total_util(l) >= 0.0);
        assert!(net.residual_bps(&topo, l) <= topo.link(l).params.capacity_bps);
    }

    #[test]
    fn latency_grows_with_congestion() {
        let (topo, mut net) = network();
        let quiet = net.latency_s(&topo, NodeId(0), NodeId(2));
        for l in topo.path(NodeId(0), NodeId(2)) {
            net.add_job_util(l, 0.9);
        }
        let busy = net.latency_s(&topo, NodeId(0), NodeId(2));
        assert!(busy > quiet * 2.0, "quiet {quiet}, busy {busy}");
    }

    #[test]
    fn peak_bandwidth_is_capacity() {
        let (topo, net) = network();
        assert_eq!(net.peak_bandwidth_bps(&topo, NodeId(0), NodeId(2)), 1e9);
    }

    #[test]
    fn heavy_flows_eventually_appear_on_trunks() {
        let (topo, mut net) = network();
        // find a trunk link
        let trunk = topo
            .links()
            .iter()
            .find(|l| {
                matches!(
                    (l.a, l.b),
                    (
                        nlrm_topology::graph::Endpoint::Switch(_),
                        nlrm_topology::graph::Endpoint::Switch(_)
                    )
                )
            })
            .unwrap()
            .id;
        let mut peak: f64 = 0.0;
        for _ in 0..10_000 {
            net.step(10.0);
            peak = peak.max(net.background_util(trunk));
        }
        // heavy flow adds ~0.45 util; with OU base this should exceed 0.5 at some point
        assert!(peak > 0.5, "trunk never got busy, peak {peak}");
    }
}
