//! Calibrated background-activity profiles.
//!
//! A profile describes the *population* a cluster's nodes and links are drawn
//! from. Per-node parameters are sampled from the profile so that the cluster
//! is heterogeneous in practice — some nodes chronically busy, many mostly
//! idle — which is what gives the allocator something to choose between
//! (cf. the light/dark patches of the paper's Figures 1–2 and 7).

use crate::node::NodeDynamicsParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Population-level description of background activity on a shared cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// Range of per-node mean baseline CPU load (runnable processes).
    pub load_mean_range: (f64, f64),
    /// Fraction of nodes that are "hot" (students camp on them): their mean
    /// load is drawn from `hot_load_mean_range` instead.
    pub hot_node_fraction: f64,
    /// Mean-load range for hot nodes.
    pub hot_load_mean_range: (f64, f64),
    /// Load spike arrival rate range (events/s).
    pub spike_rate_range: (f64, f64),
    /// Mean spike amplitude range.
    pub spike_amp_range: (f64, f64),
    /// Baseline utilization band (applies to every node).
    pub util_base: (f64, f64),
    /// Memory usage band.
    pub mem_band: (f64, f64),
    /// Range of per-node mean user counts.
    pub users_mean_range: (f64, f64),
    /// Range of baseline NIC flow (Mbit/s).
    pub flow_base_range: (f64, f64),
    /// Flow burst arrival rate range (events/s).
    pub flow_burst_rate_range: (f64, f64),
    /// Mean flow-burst amplitude range (Mbit/s).
    pub flow_burst_amp_range: (f64, f64),
    /// Diurnal amplitude for node activity.
    pub diurnal_amplitude: f64,
    /// Peak activity hour (0–24).
    pub diurnal_peak_hour: f64,
    /// Mean background utilization of access links (fraction of capacity).
    pub access_util_mean: f64,
    /// Mean background utilization of trunk (switch↔switch) links.
    pub trunk_util_mean: f64,
    /// OU volatility of link utilization.
    pub link_util_sigma: f64,
    /// Rate (events/s) at which a heavy bulk flow appears on a trunk.
    pub heavy_flow_rate: f64,
    /// Mean utilization a heavy flow adds while active.
    pub heavy_flow_util: f64,
    /// Mean duration of a heavy flow (s).
    pub heavy_flow_duration: f64,
    /// Multiplicative measurement noise (std of a lognormal-ish factor).
    pub measurement_noise: f64,
}

impl ClusterProfile {
    /// The default calibration: a shared departmental lab cluster matching
    /// the activity ranges reported in the paper's Figures 1–2
    /// (CPU utilization averaging 20–35%, ~25% memory in use, CPU load
    /// mostly below 1 with occasional spikes, bursty NIC traffic, and trunk
    /// links that other users' jobs periodically saturate).
    pub fn shared_lab() -> Self {
        ClusterProfile {
            load_mean_range: (0.05, 0.6),
            hot_node_fraction: 0.3,
            hot_load_mean_range: (1.5, 6.0),
            spike_rate_range: (1.0 / 7200.0, 1.0 / 1200.0),
            spike_amp_range: (1.5, 6.0),
            util_base: (0.08, 0.22),
            mem_band: (0.15, 0.40),
            users_mean_range: (0.5, 3.0),
            flow_base_range: (1.0, 60.0),
            flow_burst_rate_range: (1.0 / 3600.0, 1.0 / 600.0),
            flow_burst_amp_range: (100.0, 600.0),
            diurnal_amplitude: 0.35,
            diurnal_peak_hour: 15.0,
            access_util_mean: 0.05,
            trunk_util_mean: 0.35,
            link_util_sigma: 0.15,
            heavy_flow_rate: 1.0 / 1200.0,
            heavy_flow_util: 0.55,
            heavy_flow_duration: 900.0,
            measurement_noise: 0.06,
        }
    }

    /// A nearly idle cluster: useful to verify that all policies converge
    /// when there is nothing to avoid.
    pub fn quiet() -> Self {
        ClusterProfile {
            load_mean_range: (0.0, 0.1),
            hot_node_fraction: 0.0,
            hot_load_mean_range: (0.0, 0.1),
            spike_rate_range: (0.0, 0.0),
            spike_amp_range: (0.0, 0.0),
            util_base: (0.01, 0.05),
            mem_band: (0.10, 0.15),
            users_mean_range: (0.0, 0.5),
            flow_base_range: (0.1, 1.0),
            flow_burst_rate_range: (0.0, 0.0),
            flow_burst_amp_range: (0.0, 0.0),
            diurnal_amplitude: 0.0,
            diurnal_peak_hour: 12.0,
            access_util_mean: 0.01,
            trunk_util_mean: 0.02,
            link_util_sigma: 0.01,
            heavy_flow_rate: 0.0,
            heavy_flow_util: 0.0,
            heavy_flow_duration: 1.0,
            measurement_noise: 0.01,
        }
    }

    /// A cluster under extreme pressure: nearly every core busy, trunks
    /// saturated. Exercises the paper's §6 "recommend waiting" advice.
    pub fn overloaded() -> Self {
        ClusterProfile {
            load_mean_range: (6.0, 14.0),
            hot_node_fraction: 0.6,
            hot_load_mean_range: (10.0, 24.0),
            spike_rate_range: (1.0 / 600.0, 1.0 / 120.0),
            spike_amp_range: (4.0, 12.0),
            util_base: (0.6, 0.9),
            mem_band: (0.55, 0.9),
            users_mean_range: (3.0, 5.0),
            flow_base_range: (100.0, 400.0),
            flow_burst_rate_range: (1.0 / 300.0, 1.0 / 60.0),
            flow_burst_amp_range: (200.0, 800.0),
            diurnal_amplitude: 0.1,
            diurnal_peak_hour: 15.0,
            access_util_mean: 0.4,
            trunk_util_mean: 0.7,
            link_util_sigma: 0.15,
            heavy_flow_rate: 1.0 / 300.0,
            heavy_flow_util: 0.6,
            heavy_flow_duration: 1200.0,
            measurement_noise: 0.08,
        }
    }

    /// Sample the dynamics parameters for one node.
    pub fn sample_node_params(&self, rng: &mut impl Rng) -> NodeDynamicsParams {
        let hot = rng.gen::<f64>() < self.hot_node_fraction;
        let (lo, hi) = if hot {
            self.hot_load_mean_range
        } else {
            self.load_mean_range
        };
        let load_mean = sample_range(rng, (lo, hi));
        NodeDynamicsParams {
            load_mean,
            load_sigma: (load_mean * 0.6).max(0.02),
            load_rate: 1.0 / 300.0,
            spike_rate: sample_range(rng, self.spike_rate_range),
            spike_amp: sample_range(rng, self.spike_amp_range),
            spike_decay: 1.0 / 600.0,
            util_base: self.util_base,
            mem_band: self.mem_band,
            users_mean: sample_range(rng, self.users_mean_range),
            flow_base_mbps: sample_range(rng, self.flow_base_range),
            flow_burst_rate: sample_range(rng, self.flow_burst_rate_range),
            flow_burst_amp: sample_range(rng, self.flow_burst_amp_range),
            flow_burst_decay: 1.0 / 120.0,
            diurnal_amplitude: self.diurnal_amplitude,
            diurnal_peak_hour: self.diurnal_peak_hour,
        }
    }
}

fn sample_range(rng: &mut impl Rng, (lo, hi): (f64, f64)) -> f64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_sim_core::rng::RngFactory;

    #[test]
    fn sampling_is_within_ranges() {
        let prof = ClusterProfile::shared_lab();
        let mut rng = RngFactory::new(9).named("profiles");
        for _ in 0..200 {
            let p = prof.sample_node_params(&mut rng);
            let in_cold = p.load_mean >= prof.load_mean_range.0 - 1e-12
                && p.load_mean <= prof.load_mean_range.1 + 1e-12;
            let in_hot = p.load_mean >= prof.hot_load_mean_range.0 - 1e-12
                && p.load_mean <= prof.hot_load_mean_range.1 + 1e-12;
            assert!(in_cold || in_hot, "load_mean {}", p.load_mean);
            assert!(p.spike_rate >= 0.0 && p.flow_base_mbps >= 0.0);
        }
    }

    #[test]
    fn hot_nodes_appear_at_roughly_declared_fraction() {
        let prof = ClusterProfile::shared_lab();
        let mut rng = RngFactory::new(10).named("profiles");
        let n = 2000;
        let hot = (0..n)
            .map(|_| prof.sample_node_params(&mut rng))
            .filter(|p| p.load_mean >= prof.hot_load_mean_range.0)
            .count();
        let frac = hot as f64 / n as f64;
        assert!(
            (frac - prof.hot_node_fraction).abs() < 0.05,
            "hot frac {frac}"
        );
    }

    #[test]
    fn quiet_profile_generates_near_zero_activity() {
        let prof = ClusterProfile::quiet();
        let mut rng = RngFactory::new(11).named("profiles");
        let p = prof.sample_node_params(&mut rng);
        assert!(p.load_mean < 0.1);
        assert_eq!(p.spike_rate, 0.0);
    }

    #[test]
    fn overloaded_profile_is_heavier_than_lab() {
        let lab = ClusterProfile::shared_lab();
        let over = ClusterProfile::overloaded();
        assert!(over.load_mean_range.0 > lab.load_mean_range.1);
        assert!(over.trunk_util_mean > lab.trunk_util_mean);
    }
}
