//! The cluster simulator: nodes + network under one virtual clock.

use crate::network::NetworkSim;
use crate::node::{NodeDynamics, NodeSpec, NodeState};
use crate::profiles::ClusterProfile;
use nlrm_sim_core::process::standard_normal;
use nlrm_sim_core::rng::RngFactory;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;

/// A simulated shared cluster.
///
/// Owns the topology, per-node background dynamics, and per-link background
/// traffic, and advances them all in fixed-resolution virtual time. The
/// monitoring daemons and the MPI executor both talk to this type: daemons
/// through the noisy `measure_*` API (they see what a real probe would see),
/// the executor through the exact residual-capacity API (the network itself
/// is never fooled by measurement noise).
///
/// `ClusterSim` is `Clone`, and a clone replays *identically*: the
/// experiment harness clones one cluster per allocation policy so that every
/// policy faces exactly the same future — the simulation equivalent of the
/// paper's "we ran all four approaches in sequence … repeated 5 times".
#[derive(Debug, Clone)]
pub struct ClusterSim {
    topo: Topology,
    specs: Vec<NodeSpec>,
    dynamics: Vec<NodeDynamics>,
    states: Vec<NodeState>,
    network: NetworkSim,
    /// Runnable processes injected by simulated jobs, per node.
    job_load: Vec<f64>,
    clock: SimTime,
    step: Duration,
    measure_rng: StdRng,
    measurement_noise: f64,
    /// Scheduled up/down transitions: `(time, node, up)`, kept sorted.
    failures: Vec<(SimTime, NodeId, bool)>,
}

impl ClusterSim {
    /// Build a cluster over `topo` with the given node hardware and
    /// background-activity profile. All randomness derives from `seed`.
    pub fn new(topo: Topology, specs: Vec<NodeSpec>, profile: ClusterProfile, seed: u64) -> Self {
        assert_eq!(
            specs.len(),
            topo.num_nodes(),
            "one spec per topology node required"
        );
        let factory = RngFactory::new(seed).child("cluster");
        let mut param_rng = factory.named("node-params");
        let dynamics: Vec<NodeDynamics> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let params = profile.sample_node_params(&mut param_rng);
                NodeDynamics::new(params, spec.cores, factory.stream("node-dyn", i as u64))
            })
            .collect();
        let network = NetworkSim::new(&topo, &profile, |i| factory.stream("link", i as u64));
        let n = specs.len();
        ClusterSim {
            topo,
            specs,
            dynamics,
            states: vec![NodeState::idle(); n],
            network,
            job_load: vec![0.0; n],
            clock: SimTime::ZERO,
            step: Duration::from_secs(5),
            measure_rng: factory.named("measurement"),
            measurement_noise: profile.measurement_noise,
            failures: Vec::new(),
        }
    }

    /// Simulation resolution (default 5 s). Dynamics are stepped at this
    /// granularity; `advance_to` snaps to multiples of it.
    pub fn set_resolution(&mut self, step: Duration) {
        assert!(!step.is_zero());
        self.step = step;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Static spec of a node.
    pub fn spec(&self, node: NodeId) -> &NodeSpec {
        &self.specs[node.index()]
    }

    /// All specs, indexed by node.
    pub fn specs(&self) -> &[NodeSpec] {
        &self.specs
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.specs.len()
    }

    /// Schedule a node failure (down) at time `t`.
    pub fn schedule_failure(&mut self, t: SimTime, node: NodeId) {
        self.failures.push((t, node, false));
        self.failures.sort_by_key(|&(t, n, _)| (t, n));
    }

    /// Schedule a node recovery (up) at time `t`.
    pub fn schedule_recovery(&mut self, t: SimTime, node: NodeId) {
        self.failures.push((t, node, true));
        self.failures.sort_by_key(|&(t, n, _)| (t, n));
    }

    /// Immediately mark a node up or down.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.states[node.index()].up = up;
    }

    /// Advance virtual time to `target`, stepping all dynamics.
    pub fn advance_to(&mut self, target: SimTime) {
        while self.clock < target {
            let next = self.clock + self.step;
            let dt = self.step.as_secs_f64();
            // apply failures due in (clock, next]
            while let Some(&(t, node, up)) = self.failures.first() {
                if t <= next {
                    self.states[node.index()].up = up;
                    self.failures.remove(0);
                } else {
                    break;
                }
            }
            for i in 0..self.dynamics.len() {
                let was_up = self.states[i].up;
                let mut s = self.dynamics[i].step(dt, next);
                s.up = was_up;
                // the node's own NIC traffic congests its access link: this
                // is why the paper's "node data flow rate" attribute matters
                let node = NodeId(i as u32);
                let access = self.topo.access_link(node);
                let cap_mbps = self.topo.link(access).params.capacity_bps / 1e6;
                self.network
                    .set_node_flow_util(access, s.flow_rate_mbps / cap_mbps);
                self.states[i] = s;
            }
            self.network.step(dt);
            self.clock = next;
        }
    }

    /// Advance by a duration.
    pub fn advance(&mut self, d: Duration) {
        self.advance_to(self.clock + d);
    }

    /// Whether the node currently answers pings.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.states[node.index()].up
    }

    /// The node's current state as the OS would report it: background
    /// activity plus any job-injected load.
    pub fn node_state(&self, node: NodeId) -> NodeState {
        let i = node.index();
        let mut s = self.states[i];
        let cores = self.specs[i].cores as f64;
        s.cpu_load += self.job_load[i];
        s.cpu_util = (s.cpu_util + self.job_load[i] / cores).clamp(0.0, 1.0);
        s
    }

    /// Job-load injection: `procs` additional runnable processes on `node`.
    pub fn add_job_load(&mut self, node: NodeId, procs: f64) {
        let l = &mut self.job_load[node.index()];
        *l = (*l + procs).max(0.0);
    }

    /// Job traffic injection on a link (utilization fraction delta).
    pub fn add_job_util(&mut self, link: LinkId, delta: f64) {
        self.network.add_job_util(link, delta);
    }

    /// Exact residual capacity of a link in bits/s (used by the MPI
    /// executor's contention solver — no measurement noise).
    pub fn link_residual_bps(&self, link: LinkId) -> f64 {
        self.network.residual_bps(&self.topo, link)
    }

    /// Exact current latency between nodes, seconds.
    pub fn latency_s(&self, u: NodeId, v: NodeId) -> f64 {
        self.network.latency_s(&self.topo, u, v)
    }

    /// Exact available bandwidth between nodes, bits/s.
    pub fn available_bandwidth_bps(&self, u: NodeId, v: NodeId) -> f64 {
        self.network.available_bandwidth_bps(&self.topo, u, v)
    }

    /// Peak (zero-load) bandwidth between nodes, bits/s.
    pub fn peak_bandwidth_bps(&self, u: NodeId, v: NodeId) -> f64 {
        self.network.peak_bandwidth_bps(&self.topo, u, v)
    }

    fn noise_factor(&mut self) -> f64 {
        // multiplicative lognormal noise ≈ what a short probe measures
        (self.measurement_noise * standard_normal(&mut self.measure_rng)).exp()
    }

    /// Probe the P2P bandwidth like the paper's `BandwidthD` (a short MPI
    /// transfer): the true available bandwidth blurred by measurement noise,
    /// clamped to the physical capacity.
    pub fn measure_bandwidth_bps(&mut self, u: NodeId, v: NodeId) -> f64 {
        let truth = self.network.available_bandwidth_bps(&self.topo, u, v);
        if truth.is_infinite() {
            return truth;
        }
        let peak = self.network.peak_bandwidth_bps(&self.topo, u, v);
        (truth * self.noise_factor()).min(peak)
    }

    /// Probe P2P latency like `LatencyD` (a ping-pong): truth × noise.
    pub fn measure_latency_s(&mut self, u: NodeId, v: NodeId) -> f64 {
        let truth = self.network.latency_s(&self.topo, u, v);
        truth * self.noise_factor()
    }

    /// Raw access to the network layer (ablations and tests).
    pub fn network(&self) -> &NetworkSim {
        &self.network
    }

    /// Force a node's instantaneous state (trace replay). The override
    /// lasts until the next dynamics step; replay drivers re-apply their
    /// frame after every advance.
    pub fn override_node_state(&mut self, node: NodeId, state: NodeState) {
        self.states[node.index()] = state;
    }

    /// Force a link's background utilization (trace replay); same lifetime
    /// as [`override_node_state`](Self::override_node_state).
    pub fn override_link_background(&mut self, link: LinkId, util: f64) {
        self.network.override_background(link, util);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iitk;

    fn small() -> ClusterSim {
        iitk::small_cluster(8, 42)
    }

    #[test]
    fn advance_moves_clock_in_steps() {
        let mut c = small();
        c.advance_to(SimTime::from_secs(17));
        // snapped up to a multiple of the 5 s resolution
        assert_eq!(c.now(), SimTime::from_secs(20));
        c.advance(Duration::from_secs(10));
        assert_eq!(c.now(), SimTime::from_secs(30));
    }

    #[test]
    fn clone_replays_identically() {
        let mut a = small();
        let mut b = a.clone();
        a.advance_to(SimTime::from_secs(3600));
        b.advance_to(SimTime::from_secs(3600));
        for n in a.topology().node_ids().collect::<Vec<_>>() {
            assert_eq!(a.node_state(n), b.node_state(n));
        }
        assert_eq!(
            a.available_bandwidth_bps(NodeId(0), NodeId(5)),
            b.available_bandwidth_bps(NodeId(0), NodeId(5))
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = iitk::small_cluster(8, 1);
        let mut b = iitk::small_cluster(8, 2);
        a.advance_to(SimTime::from_secs(3600));
        b.advance_to(SimTime::from_secs(3600));
        let sa: f64 = (0..8).map(|i| a.node_state(NodeId(i)).cpu_load).sum();
        let sb: f64 = (0..8).map(|i| b.node_state(NodeId(i)).cpu_load).sum();
        assert_ne!(sa, sb);
    }

    #[test]
    fn job_load_shows_up_in_state() {
        let mut c = small();
        c.advance_to(SimTime::from_secs(60));
        let before = c.node_state(NodeId(0));
        c.add_job_load(NodeId(0), 4.0);
        let after = c.node_state(NodeId(0));
        assert!((after.cpu_load - before.cpu_load - 4.0).abs() < 1e-9);
        assert!(after.cpu_util >= before.cpu_util);
        c.add_job_load(NodeId(0), -4.0);
        let restored = c.node_state(NodeId(0));
        assert!((restored.cpu_load - before.cpu_load).abs() < 1e-9);
    }

    #[test]
    fn failures_apply_at_scheduled_time() {
        let mut c = small();
        c.schedule_failure(SimTime::from_secs(100), NodeId(3));
        c.schedule_recovery(SimTime::from_secs(200), NodeId(3));
        c.advance_to(SimTime::from_secs(50));
        assert!(c.is_up(NodeId(3)));
        c.advance_to(SimTime::from_secs(150));
        assert!(!c.is_up(NodeId(3)));
        c.advance_to(SimTime::from_secs(250));
        assert!(c.is_up(NodeId(3)));
    }

    #[test]
    fn measurement_noise_is_bounded_and_unbiased() {
        let mut c = small();
        c.advance_to(SimTime::from_secs(300));
        let truth = c.available_bandwidth_bps(NodeId(0), NodeId(4));
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| c.measure_bandwidth_bps(NodeId(0), NodeId(4)))
            .sum::<f64>()
            / n as f64;
        // lognormal with small sigma: mean within a few percent of truth
        assert!((mean / truth - 1.0).abs() < 0.05, "ratio {}", mean / truth);
        // never above physical capacity
        for _ in 0..200 {
            assert!(c.measure_bandwidth_bps(NodeId(0), NodeId(4)) <= 1e9 + 1.0);
        }
    }

    #[test]
    fn job_traffic_depresses_measured_bandwidth() {
        let mut c = small();
        c.advance_to(SimTime::from_secs(60));
        let before = c.available_bandwidth_bps(NodeId(0), NodeId(1));
        for l in c.topology().path(NodeId(0), NodeId(1)) {
            c.add_job_util(l, 0.6);
        }
        let after = c.available_bandwidth_bps(NodeId(0), NodeId(1));
        assert!(after < before * 0.7, "before {before}, after {after}");
    }
}
