//! Trace recording and replay.
//!
//! The paper's Figures 1–2 come from *recorded* monitoring data of the real
//! cluster. This module closes that loop for the reproduction: any cluster
//! run can be recorded to a portable CSV trace, and a recorded trace can be
//! replayed into a [`ClusterSim`] so the whole pipeline (daemons, allocator,
//! executor) runs against captured data instead of live stochastics —
//! including data captured from a *real* cluster, if a user exports their
//! own monitoring in this format.

use crate::cluster::ClusterSim;
use crate::node::NodeState;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::{LinkId, NodeId};
use std::fmt::Write as _;

/// One recorded instant of the whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFrame {
    /// Capture time.
    pub t: SimTime,
    /// Per-node states, indexed by node id.
    pub node_states: Vec<NodeState>,
    /// Per-link background utilization, indexed by link id.
    pub link_utils: Vec<f64>,
}

/// A recorded cluster history: frames in strictly increasing time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterTrace {
    frames: Vec<TraceFrame>,
}

impl ClusterTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames are recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames.
    pub fn frames(&self) -> &[TraceFrame] {
        &self.frames
    }

    /// Capture the cluster's current state as a frame.
    pub fn record(&mut self, cluster: &ClusterSim) {
        let t = cluster.now();
        if let Some(last) = self.frames.last() {
            assert!(t > last.t, "frames must advance in time");
        }
        let node_states = cluster
            .topology()
            .node_ids()
            .map(|n| cluster.node_state(n))
            .collect();
        let link_utils = (0..cluster.topology().num_links())
            .map(|l| cluster.network().total_util(LinkId(l as u32)))
            .collect();
        self.frames.push(TraceFrame {
            t,
            node_states,
            link_utils,
        });
    }

    /// The latest frame at or before `t`, if any.
    pub fn frame_at(&self, t: SimTime) -> Option<&TraceFrame> {
        match self.frames.binary_search_by(|f| f.t.cmp(&t)) {
            Ok(i) => Some(&self.frames[i]),
            Err(0) => None,
            Err(i) => Some(&self.frames[i - 1]),
        }
    }

    /// Serialize to CSV (`t_us,kind,index,fields…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "t_us,kind,index,cpu_load,cpu_util,mem_used,users,flow_mbps,up,link_util\n",
        );
        for f in &self.frames {
            for (i, s) in f.node_states.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},node,{},{:.6},{:.6},{:.6},{},{:.6},{},",
                    f.t.as_micros(),
                    i,
                    s.cpu_load,
                    s.cpu_util,
                    s.mem_used_frac,
                    s.users,
                    s.flow_rate_mbps,
                    s.up as u8
                );
            }
            for (i, u) in f.link_utils.iter().enumerate() {
                let _ = writeln!(out, "{},link,{},,,,,,,{u:.6}", f.t.as_micros(), i);
            }
        }
        out
    }

    /// Parse a trace from CSV produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(csv: &str) -> Result<ClusterTrace, String> {
        let mut trace = ClusterTrace::new();
        let mut current: Option<TraceFrame> = None;
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 10 {
                return Err(format!("line {}: expected 10 columns", lineno + 1));
            }
            let t = SimTime::from_micros(
                cols[0]
                    .parse()
                    .map_err(|_| format!("line {}: bad timestamp", lineno + 1))?,
            );
            if current.as_ref().map(|f| f.t) != Some(t) {
                if let Some(f) = current.take() {
                    trace.frames.push(f);
                }
                current = Some(TraceFrame {
                    t,
                    node_states: Vec::new(),
                    link_utils: Vec::new(),
                });
            }
            let frame = current.as_mut().expect("just set");
            let idx: usize = cols[2]
                .parse()
                .map_err(|_| format!("line {}: bad index", lineno + 1))?;
            let parse = |s: &str, what: &str| -> Result<f64, String> {
                s.parse()
                    .map_err(|_| format!("line {}: bad {what}", lineno + 1))
            };
            match cols[1] {
                "node" => {
                    if idx != frame.node_states.len() {
                        return Err(format!("line {}: node rows out of order", lineno + 1));
                    }
                    frame.node_states.push(NodeState {
                        cpu_load: parse(cols[3], "cpu_load")?,
                        cpu_util: parse(cols[4], "cpu_util")?,
                        mem_used_frac: parse(cols[5], "mem_used")?,
                        users: cols[6]
                            .parse()
                            .map_err(|_| format!("line {}: bad users", lineno + 1))?,
                        flow_rate_mbps: parse(cols[7], "flow")?,
                        up: cols[8] == "1",
                    });
                }
                "link" => {
                    if idx != frame.link_utils.len() {
                        return Err(format!("line {}: link rows out of order", lineno + 1));
                    }
                    frame.link_utils.push(parse(cols[9], "link_util")?);
                }
                other => return Err(format!("line {}: unknown kind '{other}'", lineno + 1)),
            }
        }
        if let Some(f) = current.take() {
            trace.frames.push(f);
        }
        Ok(trace)
    }
}

/// Replays a trace into a live [`ClusterSim`], overriding its stochastic
/// state with the recorded frames.
#[derive(Debug, Clone)]
pub struct TracePlayer {
    trace: ClusterTrace,
}

impl TracePlayer {
    /// A player over `trace`.
    pub fn new(trace: ClusterTrace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TracePlayer { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &ClusterTrace {
        &self.trace
    }

    /// Advance `cluster` to `t` and pin its state to the trace's latest
    /// frame at or before `t`. Call after every time jump you make.
    pub fn seek(&self, cluster: &mut ClusterSim, t: SimTime) {
        cluster.advance_to(t);
        self.apply(cluster, t);
    }

    /// Apply the frame for time `t` without advancing.
    pub fn apply(&self, cluster: &mut ClusterSim, t: SimTime) {
        let Some(frame) = self.trace.frame_at(t) else {
            return; // before the first frame: leave the simulation as-is
        };
        assert_eq!(
            frame.node_states.len(),
            cluster.num_nodes(),
            "trace/cluster node count mismatch"
        );
        assert_eq!(
            frame.link_utils.len(),
            cluster.topology().num_links(),
            "trace/cluster link count mismatch"
        );
        for (i, &s) in frame.node_states.iter().enumerate() {
            cluster.override_node_state(NodeId(i as u32), s);
        }
        for (i, &u) in frame.link_utils.iter().enumerate() {
            cluster.override_link_background(LinkId(i as u32), u);
        }
    }

    /// Drive the cluster across `[cluster.now(), until]` in `step`-sized
    /// seeks (the common replay loop).
    pub fn replay_until(&self, cluster: &mut ClusterSim, until: SimTime, step: Duration) {
        while cluster.now() < until {
            let next = (cluster.now() + step).min(until);
            self.seek(cluster, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iitk::small_cluster;

    fn recorded(n: usize, seed: u64, frames: usize) -> (ClusterSim, ClusterTrace) {
        let mut cluster = small_cluster(n, seed);
        let mut trace = ClusterTrace::new();
        for _ in 0..frames {
            cluster.advance(Duration::from_secs(30));
            trace.record(&cluster);
        }
        (cluster, trace)
    }

    #[test]
    fn record_captures_cluster_state() {
        let (cluster, trace) = recorded(4, 3, 5);
        assert_eq!(trace.len(), 5);
        let last = trace.frames().last().unwrap();
        assert_eq!(last.t, cluster.now());
        for (i, s) in last.node_states.iter().enumerate() {
            assert_eq!(*s, cluster.node_state(NodeId(i as u32)));
        }
    }

    #[test]
    fn csv_roundtrip_is_exact_enough() {
        let (_, trace) = recorded(3, 7, 4);
        let parsed = ClusterTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.frames().iter().zip(trace.frames()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.node_states.len(), b.node_states.len());
            for (x, y) in a.node_states.iter().zip(&b.node_states) {
                assert!((x.cpu_load - y.cpu_load).abs() < 1e-5);
                assert_eq!(x.users, y.users);
                assert_eq!(x.up, y.up);
            }
            for (x, y) in a.link_utils.iter().zip(&b.link_utils) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(ClusterTrace::from_csv("header\n1,bogus,0,,,,,,,\n").is_err());
        assert!(ClusterTrace::from_csv("header\nnot-a-number,node,0,1,1,1,1,1,1,\n").is_err());
        // wrong column count
        assert!(ClusterTrace::from_csv("header\n1,node,0,1\n").is_err());
    }

    #[test]
    fn replay_pins_state_to_frames() {
        let (_, trace) = recorded(4, 11, 6);
        let frame_times: Vec<SimTime> = trace.frames().iter().map(|f| f.t).collect();
        let expect: Vec<Vec<NodeState>> = trace
            .frames()
            .iter()
            .map(|f| f.node_states.clone())
            .collect();
        // replay into a cluster with a *different* seed: recorded data wins
        let mut replayed = small_cluster(4, 999);
        let player = TracePlayer::new(trace);
        for (k, &t) in frame_times.iter().enumerate() {
            player.seek(&mut replayed, t);
            for i in 0..4u32 {
                assert_eq!(
                    replayed.node_state(NodeId(i)),
                    expect[k][i as usize],
                    "frame {k} node {i}"
                );
            }
        }
    }

    #[test]
    fn frame_at_picks_latest_not_after() {
        let (_, trace) = recorded(2, 5, 3);
        let t1 = trace.frames()[1].t;
        assert_eq!(trace.frame_at(t1).unwrap().t, t1);
        assert_eq!(trace.frame_at(t1 + Duration::from_secs(10)).unwrap().t, t1);
        assert!(trace.frame_at(SimTime::ZERO).is_none());
    }

    #[test]
    fn replayed_pipeline_is_reproducible() {
        // monitoring over a replayed cluster gives identical snapshots on
        // repeated replays, even with different puppet seeds
        let (_, trace) = recorded(4, 13, 10);
        let run = |seed: u64| {
            let mut cluster = small_cluster(4, seed);
            let player = TracePlayer::new(trace.clone());
            player.replay_until(
                &mut cluster,
                trace.frames().last().unwrap().t,
                Duration::from_secs(30),
            );
            (0..4u32)
                .map(|i| cluster.node_state(NodeId(i)).cpu_load)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(2));
    }
}
