//! Property-based tests for the cluster simulator's physical invariants.

use nlrm_cluster::iitk::{small_cluster, small_cluster_with_profile};
use nlrm_cluster::ClusterProfile;
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Physical ranges hold at every instant for any seed and horizon.
    #[test]
    fn state_stays_physical(seed in 0u64..500, hours in 1u64..12) {
        let mut c = small_cluster(4, seed);
        c.advance(Duration::from_hours(hours));
        for i in 0..4u32 {
            let s = c.node_state(NodeId(i));
            prop_assert!(s.cpu_load >= 0.0 && s.cpu_load.is_finite());
            prop_assert!((0.0..=1.0).contains(&s.cpu_util));
            prop_assert!((0.0..=1.0).contains(&s.mem_used_frac));
            prop_assert!(s.flow_rate_mbps >= 0.0 && s.flow_rate_mbps.is_finite());
        }
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                let bw = c.available_bandwidth_bps(NodeId(u), NodeId(v));
                let peak = c.peak_bandwidth_bps(NodeId(u), NodeId(v));
                prop_assert!(bw > 0.0 && bw <= peak);
                let lat = c.latency_s(NodeId(u), NodeId(v));
                prop_assert!(lat > 0.0 && lat < 1.0, "latency {lat}");
            }
        }
    }

    /// Cloning at any point forks identical futures.
    #[test]
    fn clone_forks_identical_futures(
        seed in 0u64..200,
        before_s in 1u64..7200,
        after_s in 1u64..7200,
    ) {
        let mut a = small_cluster(3, seed);
        a.advance(Duration::from_secs(before_s));
        let mut b = a.clone();
        a.advance(Duration::from_secs(after_s));
        b.advance(Duration::from_secs(after_s));
        for i in 0..3u32 {
            prop_assert_eq!(a.node_state(NodeId(i)), b.node_state(NodeId(i)));
        }
        prop_assert_eq!(
            a.available_bandwidth_bps(NodeId(0), NodeId(2)),
            b.available_bandwidth_bps(NodeId(0), NodeId(2))
        );
    }

    /// Job load add/remove is exactly reversible at any magnitude.
    #[test]
    fn job_load_is_reversible(
        seed in 0u64..100,
        procs in 0.0f64..64.0,
    ) {
        let mut c = small_cluster(2, seed);
        c.advance(Duration::from_secs(60));
        let before = c.node_state(NodeId(0));
        c.add_job_load(NodeId(0), procs);
        let during = c.node_state(NodeId(0));
        prop_assert!((during.cpu_load - before.cpu_load - procs).abs() < 1e-9);
        c.add_job_load(NodeId(0), -procs);
        let after = c.node_state(NodeId(0));
        prop_assert!((after.cpu_load - before.cpu_load).abs() < 1e-9);
    }

    /// Measurement noise never produces unphysical values.
    #[test]
    fn measurements_stay_physical(seed in 0u64..100, probes in 1usize..50) {
        let mut c = small_cluster(3, seed);
        c.advance(Duration::from_secs(120));
        for _ in 0..probes {
            let bw = c.measure_bandwidth_bps(NodeId(0), NodeId(1));
            prop_assert!(bw > 0.0 && bw <= 1e9 + 1.0);
            let lat = c.measure_latency_s(NodeId(0), NodeId(1));
            prop_assert!(lat > 0.0 && lat.is_finite());
        }
    }

    /// The quiet profile really is quieter than the overloaded one, for any
    /// seed (profile ordering is preserved through all the stochastics).
    #[test]
    fn profile_ordering_holds(seed in 0u64..50) {
        let mut quiet = small_cluster_with_profile(4, ClusterProfile::quiet(), seed);
        let mut busy = small_cluster_with_profile(4, ClusterProfile::overloaded(), seed);
        quiet.advance(Duration::from_hours(1));
        busy.advance(Duration::from_hours(1));
        let load = |c: &nlrm_cluster::ClusterSim| -> f64 {
            (0..4).map(|i| c.node_state(NodeId(i)).cpu_load).sum()
        };
        prop_assert!(load(&quiet) < load(&busy));
    }
}
