//! Property-based tests for the event journal, the span store, the
//! time-series sampler, and the SLO tracker.

use nlrm_obs::{
    json, Event, EventKind, Journal, Metrics, Objective, Series, Severity, Slo, SloTracker,
    SpanStore, TraceId,
};
use nlrm_sim_core::time::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn sev(code: u8) -> Severity {
    match code % 4 {
        0 => Severity::Debug,
        1 => Severity::Info,
        2 => Severity::Warn,
        _ => Severity::Error,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring never exceeds its capacity, and the bookkeeping counters
    /// add up: everything accepted is either retained or dropped.
    #[test]
    fn ring_respects_capacity(
        capacity in 1usize..48,
        stream in proptest::collection::vec((0u8..4, 0u64..10_000), 0..200),
    ) {
        let journal = Journal::new(capacity);
        for &(code, t) in &stream {
            journal.record(
                sev(code),
                SimTime::from_secs(t),
                EventKind::DaemonTick { daemon: "p".into() },
            );
        }
        prop_assert!(journal.len() <= capacity);
        prop_assert_eq!(journal.total_recorded(), stream.len() as u64);
        prop_assert_eq!(
            journal.dropped(),
            stream.len() as u64 - journal.len() as u64
        );
        prop_assert_eq!(journal.filtered(), 0);
    }

    /// Events with equal `SimTime` keep their emission order: the journal
    /// stores in arrival order and `seq` is strictly increasing, so two
    /// same-timestamp events can never swap.
    #[test]
    fn equal_sim_time_preserves_emission_order(
        capacity in 1usize..64,
        times in proptest::collection::vec(0u64..5, 0..150),
    ) {
        let journal = Journal::new(capacity);
        for (i, &t) in times.iter().enumerate() {
            journal.record_kv(
                Severity::Info,
                SimTime::from_secs(t),
                EventKind::DaemonTick { daemon: "p".into() },
                vec![("emit_index".into(), i.to_string())],
            );
        }
        let events: Vec<Event> = journal.events();
        // retained events are exactly the newest suffix of the stream,
        // in emission order
        let start = times.len().saturating_sub(capacity);
        prop_assert_eq!(events.len(), times.len() - start);
        let mut prev_seq = None;
        for (offset, e) in events.iter().enumerate() {
            let emit_index: usize = e.fields[0].1.parse().unwrap();
            prop_assert_eq!(emit_index, start + offset);
            prop_assert_eq!(e.at, SimTime::from_secs(times[emit_index]));
            if let Some(p) = prev_seq {
                prop_assert!(e.seq > p, "seq must be strictly increasing");
            }
            prev_seq = Some(e.seq);
        }
    }

    /// A severity floor filters exactly the events below it, and the
    /// `filtered` counter accounts for them.
    #[test]
    fn severity_floor_filters_exactly(
        stream in proptest::collection::vec(0u8..4, 0..120),
    ) {
        let journal = Journal::new(1024);
        journal.set_min_severity(Severity::Warn);
        for &code in &stream {
            journal.record(
                sev(code),
                SimTime::ZERO,
                EventKind::DaemonTick { daemon: "p".into() },
            );
        }
        let expected = stream.iter().filter(|&&c| c % 4 >= 2).count();
        prop_assert_eq!(journal.len(), expected);
        prop_assert_eq!(
            journal.filtered(),
            (stream.len() - expected) as u64
        );
    }
}

/// One fuzzed span-store operation: `(op, pick, at_secs)`. Even `op`
/// opens a span, odd closes one; `pick` selects a parent (for open) or a
/// victim (for close) among the spans created so far; `at_secs` is the
/// timestamp — deliberately unconstrained, so children may be "opened"
/// before their parent and "closed" after it.
type SpanOp = (u8, usize, u64);

/// Replay a fuzzed op stream against a store; returns the trace used.
fn replay(store: &SpanStore, ops: &[SpanOp]) -> TraceId {
    let trace = store.new_trace();
    let mut ids = Vec::new();
    for &(op, pick, at_secs) in ops {
        let at = SimTime::from_secs(at_secs);
        if op % 2 == 0 || ids.is_empty() {
            let parent = if ids.is_empty() || pick % 3 == 0 {
                None
            } else {
                Some(ids[pick % ids.len()])
            };
            if let Some(id) = store.start(trace, parent, "k", "fuzz/track", at) {
                ids.push(id);
            }
        } else {
            store.end(ids[pick % ids.len()], at);
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No matter how adversarial the open/close sequence — children
    /// opened before their parent, closed after it, closed twice, never
    /// closed at all — a child's recorded interval never escapes its
    /// parent's.
    #[test]
    fn span_intervals_always_nest(
        ops in proptest::collection::vec(
            (0u8..2, 0usize..32, 0u64..1000),
            1..120,
        ),
    ) {
        let store = SpanStore::new(4096);
        let trace = replay(&store, &ops);
        let spans = store.trace_spans(trace);
        let by_id: BTreeMap<u64, _> = spans.iter().map(|s| (s.id.0, s)).collect();
        for s in &spans {
            if let Some(end) = s.end {
                prop_assert!(s.start <= end, "span ends before it starts");
            }
            let Some(parent) = s.parent.and_then(|p| by_id.get(&p.0)) else {
                continue;
            };
            prop_assert!(
                s.start >= parent.start,
                "child {} starts at {} before parent start {}",
                s.id, s.start, parent.start
            );
            if let Some(pend) = parent.end {
                prop_assert!(
                    s.start <= pend,
                    "child {} starts at {} after parent end {}",
                    s.id, s.start, pend
                );
                // A still-open child has no recorded interval yet; once it
                // closes, `end()` clamps it into the parent's interval.
                if let Some(cend) = s.end {
                    prop_assert!(
                        cend <= pend,
                        "child {} ends at {} after parent end {}",
                        s.id, cend, pend
                    );
                }
            }
        }
    }

    /// The Chrome trace-event export of any fuzzed store state parses as
    /// valid JSON (round-trips through the validator), and so does the
    /// text rendering path's JSON sibling for each critical path.
    #[test]
    fn chrome_export_is_always_valid_json(
        ops in proptest::collection::vec(
            (0u8..2, 0usize..32, 0u64..1000),
            1..120,
        ),
    ) {
        let store = SpanStore::new(4096);
        let trace = replay(&store, &ops);
        let chrome = store.to_chrome_json();
        prop_assert!(
            json::validate(&chrome).is_ok(),
            "chrome export failed validation: {:?}",
            json::validate(&chrome)
        );
        if let Some(path) = store.critical_path(trace) {
            prop_assert!(json::validate(&path.to_json()).is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Downsampling never loses mass: however adversarial the push
    /// stream (including out-of-order timestamps, which absorb into the
    /// current tail), the ring stays within capacity, the retained points
    /// carry exactly the pushed sum/count, per-point extrema bound the
    /// true extrema, and point timestamps are monotone non-decreasing.
    #[test]
    fn series_downsampling_preserves_mass(
        capacity in 2usize..24,
        stream in proptest::collection::vec(
            (0u64..100_000, -1000.0f64..1000.0),
            0..400,
        ),
    ) {
        let mut s = Series::new(capacity);
        for &(t, v) in &stream {
            s.push(SimTime::from_secs(t), v);
        }
        prop_assert!(s.len() <= s.capacity());
        prop_assert_eq!(s.total_count(), stream.len() as u64);
        let expected_sum: f64 = stream.iter().map(|&(_, v)| v).sum();
        prop_assert!(
            (s.total_sum() - expected_sum).abs()
                <= 1e-9 * (1.0 + expected_sum.abs()) + 1e-6,
            "sum drifted: {} vs {}", s.total_sum(), expected_sum
        );
        let mut prev_t = None;
        for p in s.points() {
            prop_assert!(p.count > 0);
            prop_assert!(p.min <= p.max);
            if let Some(prev) = prev_t {
                prop_assert!(p.t >= prev, "timestamps must be monotone");
            }
            prev_t = Some(p.t);
        }
        if !stream.is_empty() {
            let true_min = stream.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
            let true_max = stream.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
            let kept_min = s.points().iter().map(|p| p.min).fold(f64::MAX, f64::min);
            let kept_max = s.points().iter().map(|p| p.max).fold(f64::MIN, f64::max);
            prop_assert_eq!(kept_min, true_min);
            prop_assert_eq!(kept_max, true_max);
        }
        prop_assert!(json::validate(&s.to_json()).is_ok());
    }

    /// Error-budget accounting is coherent under any compliance pattern:
    /// totals only grow, the remaining budget stays inside [0, 1], a bad
    /// tick never *increases* the remaining budget, and a good tick never
    /// decreases it.
    #[test]
    fn slo_error_budget_is_monotone_per_tick(
        target in 0.5f64..0.999,
        values in proptest::collection::vec(0.0f64..2.0, 1..200),
    ) {
        let metrics = Metrics::new();
        let mut tracker = SloTracker::new();
        tracker.add(Slo::new(
            "g_le_1",
            Objective::GaugeAtMost { gauge: "g".into(), max: 1.0 },
            target,
            32,
        ));
        let mut prev_budget = 1.0f64;
        let mut prev_bad = 0u64;
        for (i, &v) in values.iter().enumerate() {
            metrics.set("g", v);
            tracker.evaluate(SimTime::from_secs(i as u64 + 1), &metrics);
            let st = &tracker.latest()[0];
            prop_assert_eq!(st.ticks_total, i as u64 + 1);
            prop_assert!(st.bad_ticks_total >= prev_bad, "bad ticks must be monotone");
            prop_assert!(st.bad_ticks_total <= st.ticks_total);
            let budget = st.error_budget_remaining;
            prop_assert!((0.0..=1.0).contains(&budget));
            let bad_tick = v > 1.0;
            prop_assert_eq!(st.bad_ticks_total - prev_bad, u64::from(bad_tick));
            if bad_tick {
                prop_assert!(
                    budget <= prev_budget + 1e-12,
                    "bad tick grew the budget: {} -> {}", prev_budget, budget
                );
            } else {
                prop_assert!(
                    budget >= prev_budget - 1e-12,
                    "good tick shrank the budget: {} -> {}", prev_budget, budget
                );
            }
            prop_assert!(st.burn_rate >= 0.0);
            prev_budget = budget;
            prev_bad = st.bad_ticks_total;
        }
    }
}
