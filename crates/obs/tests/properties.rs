//! Property-based tests for the event journal.

use nlrm_obs::{Event, EventKind, Journal, Severity};
use nlrm_sim_core::time::SimTime;
use proptest::prelude::*;

fn sev(code: u8) -> Severity {
    match code % 4 {
        0 => Severity::Debug,
        1 => Severity::Info,
        2 => Severity::Warn,
        _ => Severity::Error,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring never exceeds its capacity, and the bookkeeping counters
    /// add up: everything accepted is either retained or dropped.
    #[test]
    fn ring_respects_capacity(
        capacity in 1usize..48,
        stream in proptest::collection::vec((0u8..4, 0u64..10_000), 0..200),
    ) {
        let journal = Journal::new(capacity);
        for &(code, t) in &stream {
            journal.record(
                sev(code),
                SimTime::from_secs(t),
                EventKind::DaemonTick { daemon: "p".into() },
            );
        }
        prop_assert!(journal.len() <= capacity);
        prop_assert_eq!(journal.total_recorded(), stream.len() as u64);
        prop_assert_eq!(
            journal.dropped(),
            stream.len() as u64 - journal.len() as u64
        );
        prop_assert_eq!(journal.filtered(), 0);
    }

    /// Events with equal `SimTime` keep their emission order: the journal
    /// stores in arrival order and `seq` is strictly increasing, so two
    /// same-timestamp events can never swap.
    #[test]
    fn equal_sim_time_preserves_emission_order(
        capacity in 1usize..64,
        times in proptest::collection::vec(0u64..5, 0..150),
    ) {
        let journal = Journal::new(capacity);
        for (i, &t) in times.iter().enumerate() {
            journal.record_kv(
                Severity::Info,
                SimTime::from_secs(t),
                EventKind::DaemonTick { daemon: "p".into() },
                vec![("emit_index".into(), i.to_string())],
            );
        }
        let events: Vec<Event> = journal.events();
        // retained events are exactly the newest suffix of the stream,
        // in emission order
        let start = times.len().saturating_sub(capacity);
        prop_assert_eq!(events.len(), times.len() - start);
        let mut prev_seq = None;
        for (offset, e) in events.iter().enumerate() {
            let emit_index: usize = e.fields[0].1.parse().unwrap();
            prop_assert_eq!(emit_index, start + offset);
            prop_assert_eq!(e.at, SimTime::from_secs(times[emit_index]));
            if let Some(p) = prev_seq {
                prop_assert!(e.seq > p, "seq must be strictly increasing");
            }
            prev_seq = Some(e.seq);
        }
    }

    /// A severity floor filters exactly the events below it, and the
    /// `filtered` counter accounts for them.
    #[test]
    fn severity_floor_filters_exactly(
        stream in proptest::collection::vec(0u8..4, 0..120),
    ) {
        let journal = Journal::new(1024);
        journal.set_min_severity(Severity::Warn);
        for &code in &stream {
            journal.record(
                sev(code),
                SimTime::ZERO,
                EventKind::DaemonTick { daemon: "p".into() },
            );
        }
        let expected = stream.iter().filter(|&&c| c % 4 >= 2).count();
        prop_assert_eq!(journal.len(), expected);
        prop_assert_eq!(
            journal.filtered(),
            (stream.len() - expected) as u64
        );
    }
}
