//! Allocation-decision explain traces.
//!
//! Algorithm 2 (`select_best`) scores every contiguous candidate group by
//! `alpha * CL_norm + beta * NL_norm` and takes the minimum. An
//! [`ExplainTrace`] captures enough of that ranking to answer "why these
//! nodes?" after the fact: the top-k groups with their normalized cost
//! components, the winner's margin over the runner-up, and a one-line
//! verdict naming the component that decided it. Traces travel on
//! `nlrm_core`'s `Diagnostics`, so every granted allocation carries one.

use crate::json;
use nlrm_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One ranked candidate group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupExplain {
    /// 1-based rank by total cost (1 = winner).
    pub rank: usize,
    /// The start node the candidate group grew from (Algorithm 1).
    pub start: NodeId,
    /// The group's nodes.
    pub nodes: Vec<NodeId>,
    /// Normalized compute-load component (`alpha * CL / sum CL`).
    pub compute_term: f64,
    /// Normalized network-load component (`beta * NL / sum NL`).
    pub network_term: f64,
    /// Eq. 4 total cost (`compute_term + network_term`).
    pub total: f64,
}

impl GroupExplain {
    fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| json::string(&n.to_string()))
            .collect();
        json::object(&[
            ("rank", self.rank.to_string()),
            ("start", json::string(&self.start.to_string())),
            ("nodes", json::array(&nodes)),
            ("compute_term", json::num(self.compute_term)),
            ("network_term", json::num(self.network_term)),
            ("total", json::num(self.total)),
        ])
    }
}

/// Why one candidate group won an allocation decision.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExplainTrace {
    /// Compute-load weight used in the decision.
    pub alpha: f64,
    /// Network-load weight used in the decision.
    pub beta: f64,
    /// Number of candidate groups scored.
    pub considered: usize,
    /// Top-k groups, ascending by total cost (`top[0]` is the winner).
    pub top: Vec<GroupExplain>,
    /// Winner's cost advantage over the runner-up (0 when unique).
    pub margin: f64,
    /// One line naming what decided it.
    pub verdict: String,
}

impl ExplainTrace {
    /// The winning group, if the trace is non-empty.
    pub fn winner(&self) -> Option<&GroupExplain> {
        self.top.first()
    }

    /// Export as one JSON object.
    pub fn to_json(&self) -> String {
        let top: Vec<String> = self.top.iter().map(GroupExplain::to_json).collect();
        json::object(&[
            ("alpha", json::num(self.alpha)),
            ("beta", json::num(self.beta)),
            ("considered", self.considered.to_string()),
            ("margin", json::num(self.margin)),
            ("verdict", json::string(&self.verdict)),
            ("top", json::array(&top)),
        ])
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "decision over {} groups (alpha={}, beta={}), margin={:.4}: {}\n",
            self.considered, self.alpha, self.beta, self.margin, self.verdict
        );
        for g in &self.top {
            let nodes: Vec<String> = g.nodes.iter().map(|n| n.to_string()).collect();
            out.push_str(&format!(
                "  #{} [{}] total={:.4} (compute={:.4} network={:.4})\n",
                g.rank,
                nodes.join(","),
                g.total,
                g.compute_term,
                g.network_term,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ExplainTrace {
        ExplainTrace {
            alpha: 0.3,
            beta: 0.7,
            considered: 5,
            top: vec![
                GroupExplain {
                    rank: 1,
                    start: NodeId(2),
                    nodes: vec![NodeId(2), NodeId(3)],
                    compute_term: 0.05,
                    network_term: 0.10,
                    total: 0.15,
                },
                GroupExplain {
                    rank: 2,
                    start: NodeId(0),
                    nodes: vec![NodeId(0), NodeId(1)],
                    compute_term: 0.04,
                    network_term: 0.20,
                    total: 0.24,
                },
            ],
            margin: 0.09,
            verdict: "lower network load decided it".into(),
        }
    }

    #[test]
    fn winner_is_first_of_top() {
        let t = trace();
        assert_eq!(t.winner().unwrap().nodes, vec![NodeId(2), NodeId(3)]);
        assert!(ExplainTrace::default().winner().is_none());
    }

    #[test]
    fn json_and_render_contain_the_ranking() {
        let t = trace();
        let js = t.to_json();
        assert!(js.contains("\"considered\":5"));
        assert!(js.contains("\"nodes\":[\"n2\",\"n3\"]"));
        assert!(js.contains("\"verdict\":\"lower network load decided it\""));
        let text = t.render();
        assert!(text.contains("#1 [n2,n3]"));
        assert!(text.contains("#2 [n0,n1]"));
    }
}
