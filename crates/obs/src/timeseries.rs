//! Virtual-time metric time series: bounded rings with lossless-aggregate
//! downsampling.
//!
//! A [`Series`] is a ring of [`Point`]s, each an aggregate (sum, count,
//! min, max, last timestamp) of one or more raw samples. When the ring
//! fills, adjacent points are merged pairwise — the ring halves, the
//! per-point sample stride doubles, and the series keeps covering its
//! whole history at ever-coarser resolution. Total sum and count are
//! preserved exactly across any number of compactions, so rates and means
//! computed over the series stay correct no matter how long a scenario
//! runs.
//!
//! A [`Sampler`] snapshots registered metrics (counter deltas, gauge
//! values, histogram quantiles) out of a [`Metrics`] registry on a fixed
//! virtual-time cadence and appends them to one series per source. It is
//! the mechanical layer under `obs::telemetry`; it knows nothing about
//! health or SLOs.

use crate::json;
use crate::metrics::Metrics;
use nlrm_sim_core::time::{Duration, SimTime};
use std::collections::BTreeMap;

/// One aggregated point: `count` raw samples folded together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Virtual time of the newest raw sample in the aggregate.
    pub t: SimTime,
    /// Sum of the folded samples.
    pub sum: f64,
    /// Number of folded samples.
    pub count: u64,
    /// Smallest folded sample.
    pub min: f64,
    /// Largest folded sample.
    pub max: f64,
}

impl Point {
    /// A point holding a single raw sample.
    pub fn sample(t: SimTime, v: f64) -> Point {
        Point {
            t,
            sum: v,
            count: 1,
            min: v,
            max: v,
        }
    }

    /// Mean of the folded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold `other` (the newer aggregate) into `self`.
    fn absorb(&mut self, other: &Point) {
        self.t = self.t.max(other.t);
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn to_json(self) -> String {
        json::object(&[
            ("t_s", json::num(self.t.as_secs_f64())),
            ("sum", json::num(self.sum)),
            ("count", self.count.to_string()),
            ("min", json::num(self.min)),
            ("max", json::num(self.max)),
        ])
    }
}

/// A bounded ring of [`Point`]s with pairwise-merge downsampling.
#[derive(Debug, Clone)]
pub struct Series {
    capacity: usize,
    points: Vec<Point>,
    /// Raw samples each point absorbs before a new point opens; doubles on
    /// every compaction.
    stride: u64,
    /// How many times the ring has been compacted.
    compactions: u64,
    /// Raw samples pushed over the series' lifetime.
    pushed: u64,
}

impl Series {
    /// A series retaining at most `capacity` points (clamped to ≥ 2).
    pub fn new(capacity: usize) -> Series {
        Series {
            capacity: capacity.max(2),
            points: Vec::new(),
            stride: 1,
            compactions: 0,
            pushed: 0,
        }
    }

    /// Append one raw sample. Non-finite values are dropped (they would
    /// poison every aggregate they are folded into). Timestamps are
    /// expected non-decreasing; an out-of-order sample is folded into the
    /// newest point rather than reordering the ring.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.pushed += 1;
        let p = Point::sample(t, v);
        match self.points.last_mut() {
            Some(last) if last.count < self.stride || t < last.t => {
                last.absorb(&p);
            }
            _ => {
                if self.points.len() >= self.capacity {
                    self.compact();
                    // after compaction the (formerly unpaired) tail point
                    // may have room again under the doubled stride
                    if let Some(last) = self.points.last_mut() {
                        if last.count < self.stride {
                            last.absorb(&p);
                            return;
                        }
                    }
                }
                self.points.push(p);
            }
        }
    }

    /// Merge adjacent pairs: halves the ring, doubles the stride. Sum and
    /// count of every folded sample are preserved exactly.
    fn compact(&mut self) {
        let mut merged: Vec<Point> = Vec::with_capacity(self.capacity / 2 + 1);
        for chunk in self.points.chunks(2) {
            let mut p = chunk[0];
            if let Some(b) = chunk.get(1) {
                p.absorb(b);
            }
            merged.push(p);
        }
        self.points = merged;
        self.stride *= 2;
        self.compactions += 1;
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The ring capacity in points.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Raw samples each point currently absorbs (2^compactions).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// How many times the ring has been compacted.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Raw samples pushed over the series' lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Σ sum over all retained points (equals the sum of every finite
    /// sample ever pushed — downsampling never sheds mass).
    pub fn total_sum(&self) -> f64 {
        self.points.iter().map(|p| p.sum).sum()
    }

    /// Σ count over all retained points (equals [`Series::pushed`]).
    pub fn total_count(&self) -> u64 {
        self.points.iter().map(|p| p.count).sum()
    }

    /// The newest point, if any.
    pub fn last(&self) -> Option<&Point> {
        self.points.last()
    }

    /// Largest max over the retained points.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.max)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean over every folded sample.
    pub fn mean(&self) -> Option<f64> {
        let n = self.total_count();
        if n == 0 {
            None
        } else {
            Some(self.total_sum() / n as f64)
        }
    }

    /// Export as a JSON object with ring metadata and the point list.
    pub fn to_json(&self) -> String {
        let pts: Vec<String> = self.points.iter().map(|p| p.to_json()).collect();
        json::object(&[
            ("capacity", self.capacity.to_string()),
            ("stride", self.stride.to_string()),
            ("compactions", self.compactions.to_string()),
            ("pushed", self.pushed.to_string()),
            ("points", json::array(&pts)),
        ])
    }
}

/// What a sampler source reads out of the metrics registry each tick.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceKind {
    /// Increase of a counter since the previous tick (0 on the first).
    CounterDelta,
    /// Current gauge value.
    Gauge,
    /// A quantile of a histogram (`None` until it has observations).
    HistogramQuantile(f64),
}

/// One registered source: a metric name plus how to read it.
#[derive(Debug, Clone)]
struct Source {
    series: String,
    metric: String,
    kind: SourceKind,
}

/// Snapshots registered metrics into [`Series`] on a virtual-time cadence.
#[derive(Debug, Clone)]
pub struct Sampler {
    cadence: Duration,
    capacity: usize,
    sources: Vec<Source>,
    series: BTreeMap<String, Series>,
    prev_counters: BTreeMap<String, u64>,
    last_tick: Option<SimTime>,
    ticks: u64,
}

impl Sampler {
    /// A sampler ticking every `cadence` of virtual time, retaining
    /// `capacity` points per series.
    pub fn new(cadence: Duration, capacity: usize) -> Sampler {
        Sampler {
            cadence,
            capacity,
            sources: Vec::new(),
            series: BTreeMap::new(),
            prev_counters: BTreeMap::new(),
            last_tick: None,
            ticks: 0,
        }
    }

    fn track(&mut self, series: String, metric: &str, kind: SourceKind) {
        if self.series.contains_key(&series) {
            return; // already tracked
        }
        self.series
            .insert(series.clone(), Series::new(self.capacity));
        self.sources.push(Source {
            series,
            metric: metric.to_string(),
            kind,
        });
    }

    /// Track a counter as a per-tick delta series named after the metric.
    pub fn track_counter(&mut self, metric: &str) {
        self.track(metric.to_string(), metric, SourceKind::CounterDelta);
    }

    /// Track a gauge's value, series named after the metric.
    pub fn track_gauge(&mut self, metric: &str) {
        self.track(metric.to_string(), metric, SourceKind::Gauge);
    }

    /// Track a histogram quantile as `"{metric}_p{q*100}"`.
    pub fn track_quantile(&mut self, metric: &str, q: f64) {
        let q = q.clamp(0.0, 1.0);
        let series = format!("{metric}_p{:02}", (q * 100.0).round() as u32);
        self.track(series, metric, SourceKind::HistogramQuantile(q));
    }

    /// Has the cadence elapsed since the last sample?
    pub fn due(&self, now: SimTime) -> bool {
        match self.last_tick {
            None => true,
            Some(last) => now.since(last) >= self.cadence,
        }
    }

    /// Number of sampling ticks taken.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The configured cadence.
    pub fn cadence(&self) -> Duration {
        self.cadence
    }

    /// Take one sample of every source at `now`, unconditionally. Callers
    /// normally gate on [`Sampler::due`].
    pub fn sample(&mut self, now: SimTime, metrics: &Metrics) {
        self.last_tick = Some(now);
        self.ticks += 1;
        for src in &self.sources {
            let value = match src.kind {
                SourceKind::CounterDelta => {
                    let cur = metrics.counter_value(&src.metric);
                    let prev = self
                        .prev_counters
                        .insert(src.metric.clone(), cur)
                        .unwrap_or(0);
                    Some(cur.saturating_sub(prev) as f64)
                }
                SourceKind::Gauge => Some(metrics.gauge_value(&src.metric)),
                SourceKind::HistogramQuantile(q) => metrics
                    .histogram_snapshot(&src.metric)
                    .and_then(|h| h.quantile(q)),
            };
            if let Some(v) = value {
                if let Some(series) = self.series.get_mut(&src.series) {
                    series.push(now, v);
                }
            }
        }
    }

    /// The series named `name`, if tracked.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All tracked series names, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Export every series as one JSON object keyed by series name.
    pub fn to_json(&self) -> String {
        let pairs: Vec<(&str, String)> = self
            .series
            .iter()
            .map(|(k, s)| (k.as_str(), s.to_json()))
            .collect();
        json::object(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_preserves_sum_and_count_across_compaction() {
        let mut s = Series::new(8);
        let mut expect_sum = 0.0;
        for i in 0..1000u64 {
            s.push(SimTime::from_secs(i), i as f64);
            expect_sum += i as f64;
        }
        assert!(s.len() <= 8, "ring overflowed: {}", s.len());
        assert_eq!(s.total_count(), 1000);
        assert!((s.total_sum() - expect_sum).abs() < 1e-6 * expect_sum);
        assert!(s.compactions() > 0, "1000 pushes into 8 slots must compact");
        // timestamps stay monotone
        for w in s.points().windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn series_min_max_survive_merges() {
        let mut s = Series::new(4);
        for (i, v) in [5.0, -3.0, 100.0, 0.5, 7.0, 2.0, 9.0, -1.0]
            .iter()
            .enumerate()
        {
            s.push(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.max(), Some(100.0));
        let min = s
            .points()
            .iter()
            .map(|p| p.min)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, -3.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s = Series::new(4);
        s.push(SimTime::ZERO, f64::NAN);
        s.push(SimTime::ZERO, f64::INFINITY);
        s.push(SimTime::ZERO, 1.0);
        assert_eq!(s.total_count(), 1);
        assert_eq!(s.pushed(), 1);
    }

    #[test]
    fn sampler_reads_counters_as_deltas() {
        let m = Metrics::new();
        let mut sampler = Sampler::new(Duration::from_secs(10), 16);
        sampler.track_counter("reqs_total");
        m.add("reqs_total", 5);
        sampler.sample(SimTime::from_secs(10), &m);
        m.add("reqs_total", 3);
        sampler.sample(SimTime::from_secs(20), &m);
        let s = sampler.series("reqs_total").unwrap();
        let deltas: Vec<f64> = s.points().iter().map(|p| p.sum).collect();
        assert_eq!(deltas, vec![5.0, 3.0]);
    }

    #[test]
    fn sampler_cadence_gates_due() {
        let mut sampler = Sampler::new(Duration::from_secs(30), 16);
        sampler.track_gauge("g");
        let m = Metrics::new();
        assert!(sampler.due(SimTime::ZERO), "first sample is always due");
        sampler.sample(SimTime::from_secs(100), &m);
        assert!(!sampler.due(SimTime::from_secs(120)));
        assert!(sampler.due(SimTime::from_secs(130)));
    }

    #[test]
    fn sampler_quantile_series_waits_for_observations() {
        let m = Metrics::new();
        let mut sampler = Sampler::new(Duration::from_secs(1), 8);
        sampler.track_quantile("lat_secs", 0.99);
        sampler.sample(SimTime::from_secs(1), &m);
        assert!(sampler.series("lat_secs_p99").unwrap().is_empty());
        m.observe("lat_secs", &[1.0, 10.0], 0.5);
        sampler.sample(SimTime::from_secs(2), &m);
        assert_eq!(sampler.series("lat_secs_p99").unwrap().total_count(), 1);
    }

    #[test]
    fn exports_parse_as_json() {
        let m = Metrics::new();
        let mut sampler = Sampler::new(Duration::from_secs(1), 4);
        sampler.track_gauge("depth");
        for i in 0..20u64 {
            m.set("depth", i as f64);
            sampler.sample(SimTime::from_secs(i), &m);
        }
        let js = sampler.to_json();
        assert!(json::validate(&js).is_ok(), "{js}");
        assert!(js.contains("\"depth\""));
    }
}
