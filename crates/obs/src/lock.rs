//! Poison-tolerant locking.
//!
//! Observers are passive: a panic on an *instrumented* thread must never
//! cascade into unrelated threads that happen to share a journal, metrics
//! registry, or span store. `std::sync::Mutex` poisons itself when a holder
//! panics, and every later `lock().unwrap()` then panics too — exactly the
//! cascade we do not want from code whose whole job is to watch. All
//! observer-internal state is plain data (counters, rings, maps) with no
//! cross-field invariants that a mid-update panic could break mid-way, so
//! recovering the guard from a poisoned lock is sound here.

use std::sync::{Mutex, MutexGuard};

/// Lock `mutex`, recovering the guard if a previous holder panicked.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::panic::catch_unwind(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        });
        assert!(m.is_poisoned());
        let mut guard = lock(&m);
        *guard += 1;
        drop(guard);
        assert_eq!(*lock(&m), 8);
    }
}
