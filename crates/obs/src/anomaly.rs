//! EWMA and threshold anomaly detectors over derived health signals.
//!
//! Detectors watch one [`HealthSnapshot`]
//! field per telemetry tick and fire on the *rising edge* of an abnormal
//! condition — once per excursion, not once per tick — so a sustained fault
//! produces one typed journal event instead of a flood. The EWMA variant
//! learns a running mean/variance and flags values beyond `k` standard
//! deviations (with absolute and relative floors so a near-constant signal
//! with tiny variance cannot false-positive); the threshold variant is a
//! plain guarded comparison for signals with a priori bounds.

use crate::health::HealthSnapshot;
use crate::json;
use nlrm_sim_core::time::SimTime;

/// The taxonomy of detected anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Mean CPU load jumped far above its learned baseline.
    LoadSpike,
    /// The stale-node fraction crossed its ceiling (monitor data going bad).
    StalenessSurge,
    /// A queued job has waited past the starvation bound while the queue is
    /// non-empty.
    Starvation,
    /// Utilization collapsed to ~0 while work is queued (allocator wedged).
    UtilizationCollapse,
    /// Monitor per-round traffic jumped far above its learned baseline.
    TrafficBlowup,
}

impl AnomalyKind {
    /// Stable snake_case label used in events, counters, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::LoadSpike => "load_spike",
            AnomalyKind::StalenessSurge => "staleness_surge",
            AnomalyKind::Starvation => "starvation",
            AnomalyKind::UtilizationCollapse => "utilization_collapse",
            AnomalyKind::TrafficBlowup => "traffic_blowup",
        }
    }

    /// The registry metric the detector's health-snapshot signal is derived
    /// from — carried on `anomaly_detected` events so incidents can be
    /// joined against the time-series sampler without heuristics.
    pub fn metric_key(&self) -> &'static str {
        match self {
            AnomalyKind::LoadSpike => "cluster_mean_cpu_load",
            AnomalyKind::StalenessSurge => "loads_stale_fraction",
            AnomalyKind::Starvation => "broker_oldest_wait_secs",
            AnomalyKind::UtilizationCollapse => "health_utilization",
            AnomalyKind::TrafficBlowup => "monitor_round_pairs",
        }
    }
}

/// One fired anomaly: what, when, observed value, and the threshold it beat.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Which detector fired.
    pub kind: AnomalyKind,
    /// Virtual time of the firing tick.
    pub at: SimTime,
    /// The observed signal value.
    pub value: f64,
    /// The threshold the value exceeded.
    pub threshold: f64,
}

impl Anomaly {
    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        json::object(&[
            ("kind", json::string(self.kind.label())),
            ("at_s", json::num(self.at.as_secs_f64())),
            ("value", json::num(self.value)),
            ("threshold", json::num(self.threshold)),
        ])
    }
}

/// EWMA mean/variance baseline with k-sigma rising-edge detection.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    alpha: f64,
    k: f64,
    /// Ticks of baseline warm-up before the detector may fire.
    min_samples: u64,
    /// Absolute floor on the excess over the mean.
    abs_floor: f64,
    /// Relative floor on the excess, as a fraction of the mean.
    rel_margin: f64,
    mean: f64,
    var: f64,
    n: u64,
    active: bool,
}

impl EwmaDetector {
    /// A detector with smoothing `alpha`, sigma multiplier `k`, `min_samples`
    /// warm-up ticks, and the two false-positive floors.
    pub fn new(alpha: f64, k: f64, min_samples: u64, abs_floor: f64, rel_margin: f64) -> Self {
        EwmaDetector {
            alpha: alpha.clamp(0.0, 1.0),
            k,
            min_samples: min_samples.max(1),
            abs_floor,
            rel_margin,
            mean: 0.0,
            var: 0.0,
            n: 0,
            active: false,
        }
    }

    /// Feed one sample; `Some(threshold)` on the rising edge of an anomaly.
    /// The baseline only absorbs non-anomalous samples, so a sustained spike
    /// cannot teach the detector that the spike is normal.
    pub fn observe(&mut self, v: f64) -> Option<f64> {
        if !v.is_finite() {
            return None;
        }
        if self.n < self.min_samples {
            // warm-up: seed the baseline, never fire
            if self.n == 0 {
                self.mean = v;
            } else {
                self.update(v);
            }
            self.n += 1;
            return None;
        }
        let margin = (self.k * self.var.sqrt())
            .max(self.rel_margin * self.mean.abs())
            .max(self.abs_floor);
        let threshold = self.mean + margin;
        if v > threshold {
            let edge = !self.active;
            self.active = true;
            return edge.then_some(threshold);
        }
        self.active = false;
        self.update(v);
        self.n += 1;
        None
    }

    fn update(&mut self, v: f64) {
        let d = v - self.mean;
        self.mean += self.alpha * d;
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * d * d);
    }

    /// The learned baseline mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Fixed-threshold rising-edge detector with an optional guard.
#[derive(Debug, Clone)]
pub struct ThresholdDetector {
    threshold: f64,
    active: bool,
}

impl ThresholdDetector {
    /// Fires when the signal exceeds `threshold`.
    pub fn new(threshold: f64) -> Self {
        ThresholdDetector {
            threshold,
            active: false,
        }
    }

    /// Feed one sample (plus whether the guard condition holds);
    /// `Some(threshold)` on the rising edge.
    pub fn observe(&mut self, v: f64, guard: bool) -> Option<f64> {
        if guard && v > self.threshold {
            let edge = !self.active;
            self.active = true;
            return edge.then_some(self.threshold);
        }
        self.active = false;
        None
    }
}

/// The standard detector battery over [`HealthSnapshot`] fields.
#[derive(Debug, Clone)]
pub struct DetectorSet {
    load_spike: EwmaDetector,
    staleness: ThresholdDetector,
    starvation: ThresholdDetector,
    collapse: ThresholdDetector,
    traffic: EwmaDetector,
    /// Utilization must have been above this at least once before a
    /// collapse can fire (a cluster that never ran anything isn't wedged).
    util_seen: f64,
    /// The load gauge reads 0.0 until the first derivation publishes it;
    /// the spike detector only starts learning once a real value arrives,
    /// so the placeholder zeros cannot make the first real reading look
    /// like a spike.
    load_seen: bool,
}

/// Stale-fraction ceiling: more than 1/8 of nodes stale is a surge.
pub const STALE_FRACTION_CEILING: f64 = 0.125;
/// Queue wait past this many seconds with a non-empty queue is starvation.
pub const STARVATION_WAIT_SECS: f64 = 600.0;
/// Utilization below this while jobs queue is a collapse.
pub const UTILIZATION_FLOOR: f64 = 0.05;

impl Default for DetectorSet {
    fn default() -> Self {
        DetectorSet {
            // conservative: 6-sigma, 8-tick warm-up, and a floor of 1.0
            // load units / 50% of mean keeps steady-state noise silent
            load_spike: EwmaDetector::new(0.2, 6.0, 8, 1.0, 0.5),
            staleness: ThresholdDetector::new(STALE_FRACTION_CEILING),
            starvation: ThresholdDetector::new(STARVATION_WAIT_SECS),
            collapse: ThresholdDetector::new(0.0),
            traffic: EwmaDetector::new(0.2, 6.0, 8, 64.0, 1.0),
            util_seen: 0.0,
            load_seen: false,
        }
    }
}

impl DetectorSet {
    /// A fresh battery with the default tuning.
    pub fn new() -> Self {
        DetectorSet::default()
    }

    /// Feed one health snapshot; returns every anomaly whose rising edge is
    /// this tick.
    pub fn observe(&mut self, snap: &HealthSnapshot) -> Vec<Anomaly> {
        let mut out = Vec::new();
        let mut push = |kind, value, threshold: Option<f64>| {
            if let Some(threshold) = threshold {
                out.push(Anomaly {
                    kind,
                    at: snap.at,
                    value,
                    threshold,
                });
            }
        };
        if self.load_seen || snap.mean_cpu_load > 0.0 {
            self.load_seen = true;
            push(
                AnomalyKind::LoadSpike,
                snap.mean_cpu_load,
                self.load_spike.observe(snap.mean_cpu_load),
            );
        }
        push(
            AnomalyKind::StalenessSurge,
            snap.stale_fraction,
            self.staleness.observe(snap.stale_fraction, true),
        );
        push(
            AnomalyKind::Starvation,
            snap.oldest_wait_secs,
            self.starvation
                .observe(snap.oldest_wait_secs, snap.queue_depth > 0),
        );
        self.util_seen = self.util_seen.max(snap.utilization);
        // collapse: utilization *fell below* the floor, so invert the sense
        let collapsed_guard = snap.queue_depth > 0
            && self.util_seen >= UTILIZATION_FLOOR
            && snap.utilization < UTILIZATION_FLOOR;
        push(
            AnomalyKind::UtilizationCollapse,
            snap.utilization,
            self.collapse
                .observe(if collapsed_guard { 1.0 } else { 0.0 }, true)
                .map(|_| UTILIZATION_FLOOR),
        );
        push(
            AnomalyKind::TrafficBlowup,
            snap.round_pairs as f64,
            self.traffic.observe(snap.round_pairs as f64),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_s: u64) -> HealthSnapshot {
        HealthSnapshot {
            at: SimTime::from_secs(at_s),
            utilization: 0.5,
            fragmentation: 0.0,
            queue_depth: 0,
            queue_by_class: [0, 0, 0],
            oldest_wait_secs: 0.0,
            wait_p99_secs: None,
            stale_fraction: 0.0,
            mean_cpu_load: 1.0,
            round_pairs: 28,
            round_bytes: 1 << 20,
            gossip_round_bytes: 0,
        }
    }

    #[test]
    fn steady_signals_never_fire() {
        let mut d = DetectorSet::new();
        for i in 0..500 {
            let mut s = snap(i);
            // benign jitter around the baseline
            s.mean_cpu_load = 1.0 + 0.05 * ((i % 7) as f64 - 3.0);
            assert!(d.observe(&s).is_empty(), "false positive at tick {i}");
        }
    }

    #[test]
    fn load_spike_fires_once_per_excursion() {
        let mut d = DetectorSet::new();
        for i in 0..20 {
            d.observe(&snap(i));
        }
        let mut spike = snap(20);
        spike.mean_cpu_load = 50.0;
        let fired = d.observe(&spike);
        assert!(fired.iter().any(|a| a.kind == AnomalyKind::LoadSpike));
        // sustained spike: no re-fire
        let mut spike2 = snap(21);
        spike2.mean_cpu_load = 55.0;
        assert!(d.observe(&spike2).is_empty());
        // recovery then a new spike re-fires
        for i in 22..25 {
            d.observe(&snap(i));
        }
        let mut spike3 = snap(25);
        spike3.mean_cpu_load = 60.0;
        assert!(d
            .observe(&spike3)
            .iter()
            .any(|a| a.kind == AnomalyKind::LoadSpike));
    }

    #[test]
    fn staleness_surge_crosses_ceiling() {
        let mut d = DetectorSet::new();
        let mut s = snap(0);
        s.stale_fraction = 0.25; // 2 of 8 nodes
        let fired = d.observe(&s);
        let a = fired
            .iter()
            .find(|a| a.kind == AnomalyKind::StalenessSurge)
            .expect("staleness surge");
        assert_eq!(a.threshold, STALE_FRACTION_CEILING);
        assert_eq!(a.value, 0.25);
    }

    #[test]
    fn starvation_requires_queued_work() {
        let mut d = DetectorSet::new();
        let mut s = snap(0);
        s.oldest_wait_secs = 10_000.0;
        s.queue_depth = 0;
        assert!(d.observe(&s).is_empty(), "empty queue cannot starve");
        s.queue_depth = 1;
        s.at = SimTime::from_secs(1);
        assert!(d
            .observe(&s)
            .iter()
            .any(|a| a.kind == AnomalyKind::Starvation));
    }

    #[test]
    fn collapse_needs_prior_utilization() {
        let mut d = DetectorSet::new();
        let mut s = snap(0);
        s.utilization = 0.0;
        s.queue_depth = 3;
        assert!(
            d.observe(&s).is_empty(),
            "never-utilized cluster is not collapsed"
        );
        // run for a while, then wedge
        let mut busy = snap(1);
        busy.utilization = 0.8;
        d.observe(&busy);
        let mut wedged = snap(2);
        wedged.utilization = 0.0;
        wedged.queue_depth = 3;
        assert!(d
            .observe(&wedged)
            .iter()
            .any(|a| a.kind == AnomalyKind::UtilizationCollapse));
    }

    #[test]
    fn unpublished_load_gauge_does_not_seed_the_spike_baseline() {
        let mut d = DetectorSet::new();
        // the load gauge sits at its unset default for a long stretch…
        for i in 0..50 {
            let mut s = snap(i);
            s.mean_cpu_load = 0.0;
            assert!(d.observe(&s).is_empty());
        }
        // …then the first real derivation publishes a normal value: not
        // a spike, even though it dwarfs the placeholder zeros
        for i in 50..80 {
            let mut s = snap(i);
            s.mean_cpu_load = 1.5;
            assert!(
                d.observe(&s).is_empty(),
                "cold-start false positive at tick {i}"
            );
        }
    }

    #[test]
    fn traffic_blowup_on_pair_count_jump() {
        let mut d = DetectorSet::new();
        for i in 0..20 {
            d.observe(&snap(i)); // steady 28 pairs (8 nodes)
        }
        let mut s = snap(20);
        s.round_pairs = 4950; // 100 nodes
        assert!(d
            .observe(&s)
            .iter()
            .any(|a| a.kind == AnomalyKind::TrafficBlowup));
    }

    #[test]
    fn anomaly_json_is_valid() {
        let a = Anomaly {
            kind: AnomalyKind::StalenessSurge,
            at: SimTime::from_secs(7),
            value: 0.25,
            threshold: 0.125,
        };
        assert!(json::validate(&a.to_json()).is_ok());
        assert!(a.to_json().contains("staleness_surge"));
    }
}
