//! The scoped thread-local observer context.
//!
//! Instrumented code deep in the stack (`Loads::derive`, `select_best`, the
//! monitor runtime) has fixed signatures; threading an observer through them
//! would churn every caller. Instead, the observer follows the
//! `tracing`-dispatcher pattern: a scenario [`install`]s an [`Obs`] (a
//! journal and metrics pair) into a thread-local slot, instrumentation calls
//! the free functions in this module, and the returned [`ObsGuard`] restores
//! the previous observer on drop.
//!
//! With nothing installed, every emission is a single thread-local check —
//! cheap enough that benches which never install an observer (e.g.
//! `alloc_overhead`) are unaffected.

use crate::journal::{EventKind, Journal, Severity};
use crate::metrics::Metrics;
use crate::recorder::Recorder;
use crate::span::{SpanId, SpanStore, TraceId};
use crate::telemetry::Telemetry;
use nlrm_sim_core::time::SimTime;
use std::cell::RefCell;

/// A journal + metrics + span-store + telemetry + flight-recorder bundle:
/// the unit of observation for one scenario.
#[derive(Debug, Clone)]
pub struct Obs {
    /// The event journal.
    pub journal: Journal,
    /// The metrics registry.
    pub metrics: Metrics,
    /// The trace span store.
    pub spans: SpanStore,
    /// The continuous-telemetry loop (disabled until
    /// [`Telemetry::enable`]).
    pub telemetry: Telemetry,
    /// The incident flight recorder (disabled until
    /// [`Recorder::enable`]).
    pub recorder: Recorder,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::with_capacity_journal(Journal::default())
    }
}

impl Obs {
    /// A fresh observer with default-capacity journal and empty registry.
    pub fn new() -> Self {
        Obs::default()
    }

    /// A fresh observer whose journal retains at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Obs::with_capacity_journal(Journal::new(capacity))
    }

    /// Assemble the bundle around `journal`, wiring the cross-component
    /// taps: ring evictions bump `journal_evicted_total`, and every
    /// accepted event is digested by the (initially disabled) recorder.
    fn with_capacity_journal(journal: Journal) -> Self {
        let metrics = Metrics::new();
        let recorder = Recorder::new();
        journal.attach_eviction_counter(metrics.counter("journal_evicted_total"));
        journal.attach_recorder(recorder.clone());
        Obs {
            journal,
            metrics,
            spans: SpanStore::default(),
            telemetry: Telemetry::new(),
            recorder,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Obs>> = const { RefCell::new(None) };
}

/// Install `obs` as this thread's observer. The previous observer (if any)
/// is restored when the returned guard drops, so scopes nest.
#[must_use = "dropping the guard immediately uninstalls the observer"]
pub fn install(obs: &Obs) -> ObsGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(obs.clone()));
    ObsGuard { prev }
}

/// Uninstalls the observer installed by [`install`] on drop, restoring the
/// one that was active before.
#[derive(Debug)]
pub struct ObsGuard {
    prev: Option<Obs>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Is an observer installed on this thread?
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Run `f` against the installed observer, if any. The observer is cloned
/// out of the slot first, so `f` may itself install/emit without
/// re-entrancy panics.
pub fn with<F: FnOnce(&Obs)>(f: F) {
    let obs = CURRENT.with(|c| c.borrow().clone());
    if let Some(obs) = obs {
        f(&obs);
    }
}

/// Like [`with`], but `f` returns a value; `None` when no observer is
/// installed.
pub fn with_value<R, F: FnOnce(&Obs) -> R>(f: F) -> Option<R> {
    let obs = CURRENT.with(|c| c.borrow().clone());
    obs.map(|obs| f(&obs))
}

/// Record an event into the installed journal (no-op when inactive).
pub fn emit(severity: Severity, at: SimTime, kind: EventKind) {
    with(|obs| {
        obs.journal.record(severity, at, kind);
    });
}

/// Record an event with extra key/value fields (no-op when inactive).
pub fn emit_kv(severity: Severity, at: SimTime, kind: EventKind, fields: Vec<(String, String)>) {
    with(|obs| {
        obs.journal.record_kv(severity, at, kind, fields);
    });
}

/// Add 1 to the installed counter `name` (no-op when inactive).
pub fn inc(name: &str) {
    with(|obs| obs.metrics.inc(name));
}

/// Add `n` to the installed counter `name` (no-op when inactive).
pub fn add(name: &str, n: u64) {
    with(|obs| obs.metrics.add(name, n));
}

/// Set the installed gauge `name` to `v` (no-op when inactive).
pub fn set_gauge(name: &str, v: f64) {
    with(|obs| obs.metrics.set(name, v));
}

/// Record `v` into the installed histogram `name` (no-op when inactive).
pub fn observe(name: &str, bounds: &[f64], v: f64) {
    with(|obs| obs.metrics.observe(name, bounds, v));
}

/// Offer the installed telemetry loop a tick at virtual time `now` (no-op
/// when inactive or telemetry is disabled; cadence-gated internally, so
/// callers may invoke this on every event-loop iteration).
pub fn telemetry_tick(now: SimTime) {
    with(|obs| {
        obs.telemetry
            .tick(now, &obs.metrics, &obs.journal, &obs.spans, &obs.recorder)
    });
}

/// Is an observer installed *and* its flight recorder enabled? Input taps
/// (probe/gossip digest folds) check this before doing any work.
pub fn recording() -> bool {
    with_value(|obs| obs.recorder.is_enabled()).unwrap_or(false)
}

/// Capture one consumed input-stream round into the installed flight
/// recorder (no-op when inactive or the recorder is disabled).
pub fn record_stream(at: SimTime, kind: &str, count: u64, digest: u64) {
    with(|obs| obs.recorder.note_stream(at, kind, count, digest));
}

/// Open a span in the installed span store (`None` when inactive, the
/// store is full, or `parent` is unknown).
pub fn span_start(
    trace: TraceId,
    parent: Option<SpanId>,
    kind: &str,
    track: &str,
    at: SimTime,
) -> Option<SpanId> {
    with_value(|obs| obs.spans.start(trace, parent, kind, track, at)).flatten()
}

/// [`span_start`] with initial attributes (no-op when inactive).
pub fn span_start_kv(
    trace: TraceId,
    parent: Option<SpanId>,
    kind: &str,
    track: &str,
    at: SimTime,
    attrs: Vec<(String, String)>,
) -> Option<SpanId> {
    with_value(|obs| obs.spans.start_kv(trace, parent, kind, track, at, attrs)).flatten()
}

/// Close a span in the installed span store (no-op when inactive).
pub fn span_end(id: SpanId, at: SimTime) {
    with(|obs| {
        obs.spans.end(id, at);
    });
}

/// Record an already-finished span in the installed store (no-op when
/// inactive).
pub fn span_closed(
    trace: TraceId,
    parent: Option<SpanId>,
    kind: &str,
    track: &str,
    start: SimTime,
    end: SimTime,
    attrs: Vec<(String, String)>,
) -> Option<SpanId> {
    with_value(|obs| {
        obs.spans
            .closed(trace, parent, kind, track, start, end, attrs)
    })
    .flatten()
}

/// Append an attribute to a span in the installed store (no-op when
/// inactive).
pub fn span_annotate(id: SpanId, key: &str, value: impl Into<String>) {
    with(|obs| obs.spans.annotate(id, key, value.into()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick() -> EventKind {
        EventKind::DaemonTick {
            daemon: "livehosts".into(),
        }
    }

    #[test]
    fn emissions_are_noops_without_an_observer() {
        assert!(!is_active());
        emit(Severity::Info, SimTime::ZERO, tick());
        inc("x_total");
        observe("h", &[1.0], 0.5);
        assert!(!is_active());
    }

    #[test]
    fn guard_installs_and_restores() {
        let obs = Obs::new();
        {
            let _g = install(&obs);
            assert!(is_active());
            emit(Severity::Info, SimTime::from_secs(1), tick());
            inc("ticks_total");
            set_gauge("depth", 2.0);
            observe("lat", &[1.0, 10.0], 0.3);
        }
        assert!(!is_active());
        assert_eq!(obs.journal.len(), 1);
        assert_eq!(obs.metrics.counter_value("ticks_total"), 1);
        assert_eq!(obs.metrics.gauge_value("depth"), 2.0);
        assert_eq!(obs.metrics.histogram_snapshot("lat").unwrap().count(), 1);
    }

    #[test]
    fn scopes_nest_and_restore_outer() {
        let outer = Obs::new();
        let inner = Obs::new();
        let _g1 = install(&outer);
        {
            let _g2 = install(&inner);
            emit(Severity::Info, SimTime::ZERO, tick());
        }
        emit(Severity::Info, SimTime::ZERO, tick());
        assert_eq!(inner.journal.len(), 1);
        assert_eq!(outer.journal.len(), 1);
    }

    #[test]
    fn spans_record_through_the_context() {
        let obs = Obs::new();
        {
            let _g = install(&obs);
            let trace = TraceId::for_job(4);
            let root = span_start(trace, None, "job", "broker/jobs", SimTime::from_secs(1))
                .expect("observer installed");
            span_annotate(root, "job", "md16-0");
            let wait = span_closed(
                trace,
                Some(root),
                "queue_wait",
                "broker/queue",
                SimTime::from_secs(1),
                SimTime::from_secs(3),
                vec![],
            )
            .expect("observer installed");
            assert_ne!(root, wait);
            span_end(root, SimTime::from_secs(5));
        }
        assert_eq!(obs.spans.len(), 2);
        assert_eq!(obs.spans.open_count(), 0);
        assert_eq!(
            obs.spans.spans()[0].attrs,
            vec![("job".into(), "md16-0".into())]
        );
        // without an observer, span calls are inert
        assert!(span_start(TraceId::SYSTEM, None, "x", "x", SimTime::ZERO).is_none());
        assert_eq!(obs.spans.len(), 2);
    }

    #[test]
    fn with_clones_out_allowing_reentrant_emits() {
        let obs = Obs::new();
        let _g = install(&obs);
        with(|o| {
            // emitting from inside `with` must not deadlock or panic
            emit(Severity::Info, SimTime::ZERO, tick());
            o.metrics.inc("nested_total");
        });
        assert_eq!(obs.journal.len(), 1);
        assert_eq!(obs.metrics.counter_value("nested_total"), 1);
    }
}
