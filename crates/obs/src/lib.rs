//! # nlrm-obs
//!
//! The observability layer for the monitor→broker stack: PR 1 made the
//! system fault-tolerant, this crate makes that machinery *observable*.
//! Everything runs in virtual time and stays dependency-free beyond the
//! vendored shims, so it is usable from the innermost simulation loops.
//!
//! * [`journal`] — a bounded, severity-filtered ring of typed [`Event`]s
//!   (supervision, faults, staleness decisions, allocation lifecycle), each
//!   stamped with its [`SimTime`](nlrm_sim_core::time::SimTime), exportable
//!   as JSON lines or a human-readable timeline.
//! * [`metrics`] — a registry of counters, gauges, and fixed-bucket
//!   histograms behind cheap `Arc` handles, exported as JSON and
//!   Prometheus-style text.
//! * [`explain`] — allocation-decision explain traces: the top-k candidate
//!   groups with their compute/network cost components and a verdict on why
//!   the winner won (surfaced through `nlrm_core`'s `Diagnostics`).
//! * [`span`] — causal span tracing over virtual time: per-job trace trees
//!   ([`TraceId`]/[`SpanId`], parent links, key/value attributes) with
//!   enforced child-within-parent nesting, critical-path extraction
//!   ([`CriticalPath`]), Chrome trace-event export (loadable in Perfetto),
//!   and a per-trace text summary.
//! * [`ctx`] — a scoped, thread-local observer (the `tracing`-dispatcher
//!   pattern): install an [`Obs`] around a scenario and every instrumented
//!   layer (monitor runtime, central monitor, load derivation, broker, MPI
//!   executor) emits into it; with nothing installed, instrumentation is a
//!   single thread-local check.
//! * [`lock`] — poison-tolerant locking for all observer-internal state, so
//!   a panic on one instrumented thread cannot cascade through unrelated
//!   observers.
//! * [`progress`] — the shared structured progress logger for experiment
//!   binaries (`NLRM_QUIET` silences it).
//! * [`json`] — minimal JSON string escaping/formatting plus a validity
//!   checker (the vendored serde is a no-op shim, so all exporters
//!   hand-roll their JSON and tests prove it parses).
//! * [`timeseries`] — virtual-time metric sampling into bounded ring
//!   series with sum/count-preserving pairwise downsampling.
//! * [`health`] — per-tick derived cluster health (utilization,
//!   fragmentation, queue pressure, staleness, monitor traffic).
//! * [`slo`] — declarative service-level objectives with rolling-window
//!   attainment and error-budget burn.
//! * [`anomaly`] — EWMA/threshold rising-edge detectors over the derived
//!   health signals (load spike, staleness surge, starvation, utilization
//!   collapse, traffic blow-up).
//! * [`telemetry`] — the cadence-driven loop binding sampler, health, SLOs,
//!   and detectors behind one [`Telemetry`] handle on every [`Obs`].

pub mod anomaly;
pub mod ctx;
pub mod explain;
pub mod health;
pub mod journal;
pub mod json;
pub mod lock;
pub mod metrics;
pub mod progress;
pub mod rca;
pub mod recorder;
pub mod replay;
pub mod slo;
pub mod span;
pub mod telemetry;
pub mod timeseries;

pub use anomaly::{Anomaly, AnomalyKind, DetectorSet, EwmaDetector, ThresholdDetector};
pub use ctx::{install, Obs, ObsGuard};
pub use explain::{ExplainTrace, GroupExplain};
pub use health::{HealthSnapshot, HealthTracker};
pub use journal::{Event, EventKind, Journal, Severity};
pub use metrics::{Counter, Gauge, Histogram, Metrics};
pub use progress::Progress;
pub use rca::{Cause, CauseKind, EvidenceRef, RcaReport};
pub use recorder::{
    ArrivalRecord, DigestFold, EvidenceSnapshot, FaultRecord, JournalDigest, Record, RecordHeader,
    Recorder, StreamRecord, RECORD_VERSION,
};
pub use replay::{Divergence, DivergenceKind, ReplayReport};
pub use slo::{Objective, Slo, SloStatus, SloTracker};
pub use span::{CriticalPath, PathSegment, Span, SpanId, SpanStore, TraceId};
pub use telemetry::{Telemetry, TelemetryConfig};
pub use timeseries::{Point, Sampler, Series};
